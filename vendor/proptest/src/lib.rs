//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements exactly the API surface the workspace's property tests use:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, range and tuple strategies, `any`, `Just`, `prop_oneof!`,
//! `prop::collection::{vec, hash_map}`, and the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the case number and the
//!   generated inputs' `Debug` output instead of a minimized example.
//! * **Deterministic seeding.** Cases are generated from a fixed seed
//!   sequence, so every run explores the same inputs; there is no
//!   persistence (`proptest-regressions` files are ignored).

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Runner configuration. Only `cases` is honoured.
    #[derive(Copy, Clone, Debug)]
    pub struct Config {
        /// Number of successful (non-rejected) cases required per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; another case is generated.
        Reject(String),
    }

    /// Deterministic splitmix64 generator.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A value generator. The shim's strategies are pure functions of the
    /// RNG stream — no shrinking state.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Recursive strategies: `recurse` receives the strategy for the
        /// previous depth and returns the one-level-deeper strategy. At
        /// each level the leaf is mixed back in so generated trees have
        /// varied depth. `desired_size` and `expected_branch_size` are
        /// accepted for API compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                let leaf = leaf.clone();
                current = BoxedStrategy::from_fn(move |rng| {
                    if rng.below(4) == 0 {
                        leaf.new_value(rng)
                    } else {
                        deeper.new_value(rng)
                    }
                });
            }
            current
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let this = self;
            BoxedStrategy::from_fn(move |rng| this.new_value(rng))
        }
    }

    /// A cloneable type-erased strategy.
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> BoxedStrategy<T> {
        pub(crate) fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy { gen: Rc::new(f) }
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64;
                    (start as i128 + rng.below(span.saturating_add(1)) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
}

pub mod arbitrary {
    use crate::strategy::{BoxedStrategy, Strategy};
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The full-domain strategy for `T` (real proptest's `any::<T>()`).
    pub fn any<T: Arbitrary + 'static>() -> BoxedStrategy<T> {
        struct Any<T>(std::marker::PhantomData<T>);
        impl<T: Arbitrary> Strategy for Any<T> {
            type Value = T;
            fn new_value(&self, rng: &mut TestRng) -> T {
                T::arbitrary(rng)
            }
        }
        Any::<T>(std::marker::PhantomData).boxed()
    }
}

pub mod prop {
    pub mod collection {
        use std::collections::HashMap;
        use std::hash::Hash;
        use std::ops::Range;

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Generates `Vec`s with length uniform in `len` and elements from
        /// `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start).max(1) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.new_value(rng)).collect()
            }
        }

        /// Generates `HashMap`s with up to `len.end - 1` entries (duplicate
        /// keys collapse, so the realized size may be smaller).
        pub fn hash_map<K: Strategy, V: Strategy>(
            key: K,
            value: V,
            len: Range<usize>,
        ) -> HashMapStrategy<K, V> {
            HashMapStrategy { key, value, len }
        }

        /// See [`hash_map`].
        pub struct HashMapStrategy<K, V> {
            key: K,
            value: V,
            len: Range<usize>,
        }

        impl<K, V> Strategy for HashMapStrategy<K, V>
        where
            K: Strategy,
            V: Strategy,
            K::Value: Eq + Hash,
        {
            type Value = HashMap<K::Value, V::Value>;
            fn new_value(&self, rng: &mut TestRng) -> HashMap<K::Value, V::Value> {
                let span = (self.len.end - self.len.start).max(1) as u64;
                let n = self.len.start + rng.below(span) as usize;
                let mut map = HashMap::with_capacity(n);
                for _ in 0..n {
                    map.insert(self.key.new_value(rng), self.value.new_value(rng));
                }
                map
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fallible assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fallible equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fallible inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, "assertion failed: {:?} == {:?}", left, right);
    }};
}

/// Rejects the current case; the runner generates a replacement.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_owned(),
            ));
        }
    };
}

/// Declares property tests. Each body runs `config.cases` times with
/// freshly generated inputs; rejected cases (via `prop_assume!`) are
/// retried with new inputs, up to 16× the case budget.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut ran: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                while ran < config.cases {
                    assert!(
                        rejected <= config.cases.saturating_mul(16),
                        "too many rejected cases ({rejected}) in {}",
                        stringify!($name),
                    );
                    case += 1;
                    let mut rng = $crate::test_runner::TestRng::new(
                        case.wrapping_mul(0x2545_F491_4F6C_DD1D)
                            ^ (stringify!($name).len() as u64),
                    );
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => ran += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => rejected += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!("proptest case #{case} failed: {msg}"),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng() {
        let mut a = crate::test_runner::TestRng::new(7);
        let mut b = crate::test_runner::TestRng::new(7);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in 1u64..100) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..100).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u8..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn assume_rejects(x in 0u8..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u8..4).prop_map(|x| x as u32),
            Just(99u32),
        ]) {
            prop_assert!(v < 4 || v == 99);
        }
    }
}
