//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the API surface the workspace's benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `bench_function` /
//! `bench_with_input`, `Bencher::iter`, and [`black_box`].
//!
//! Measurement is simple and honest: each benchmark warms up for
//! `warm_up_time`, then runs `sample_size` samples sized to fill
//! `measurement_time`, and reports the median per-iteration time. There is
//! no statistical regression analysis, plotting, or result persistence.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: `name` or `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter, for groups whose benchmarks differ only by it.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] performs the timing.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Median per-iteration nanoseconds, filled by `iter`.
    result_ns: f64,
}

impl Bencher<'_> {
    /// Times `f`, storing the median per-iteration duration.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up: run until the warm-up budget elapses, measuring the
        // rough per-iteration cost to size samples.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Sample: `sample_size` samples, each sized to fill an equal share
        // of the measurement budget.
        let samples = self.config.sample_size.max(2);
        let budget = self.config.measurement_time.as_secs_f64() / samples as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).max(1);
        let mut sample_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            sample_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        self.result_ns = sample_ns[sample_ns.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[derive(Clone, Debug)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

/// The benchmark driver.
pub struct Criterion {
    config: Config,
    /// `(id, median per-iteration ns)` in completion order.
    results: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            config: Config {
                sample_size: 10,
                warm_up_time: Duration::from_millis(300),
                measurement_time: Duration::from_secs(1),
            },
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; command-line filtering is not
    /// implemented.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        self.run_one(id.into().id, f);
    }

    fn run_one(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            config: &self.config,
            result_ns: f64::NAN,
        };
        f(&mut b);
        let ns = b.result_ns;
        println!("{id:<60} time: {:>12}", format_ns(ns));
        self.results.push((id, ns));
    }

    /// Prints a closing summary of every benchmark run.
    pub fn final_summary(&self) {
        println!("\n{} benchmarks completed", self.results.len());
    }

    /// Median per-iteration nanoseconds of a completed benchmark, by id.
    /// Exposed so ablation benches can assert speedup ratios.
    pub fn result_ns(&self, id: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|(name, _)| name == id)
            .map(|&(_, ns)| ns)
    }
}

/// A named collection of benchmarks; ids are printed as `group/bench`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(full, f);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
        assert!(c.result_ns("g/spin").unwrap() > 0.0);
        assert!(c.result_ns("g/param/7").unwrap() > 0.0);
        assert!(c.result_ns("missing").is_none());
        c.final_summary();
    }
}
