//! The provided instrumentation techniques.

use isf_ir::{FuncId, Function, Inst, InstrOp, Module};

use crate::plan::{InsertAt, Insertion, Instrumentation};

/// The paper's first example (§4.2): every method entry examines the call
/// stack and counts the (caller, call-site, callee) edge. Deliberately
/// simple and expensive — the point of the framework is that it no longer
/// has to be fast.
#[derive(Copy, Clone, Debug, Default)]
pub struct CallEdgeInstrumentation;

impl Instrumentation for CallEdgeInstrumentation {
    fn name(&self) -> &'static str {
        "call-edge"
    }

    fn plan_function(&self, _func: FuncId, _f: &Function, _module: &Module) -> Vec<Insertion> {
        vec![Insertion {
            at: InsertAt::Entry,
            op: InstrOp::CallEdge,
        }]
    }
}

/// The paper's second example (§4.2): every `get_field`/`put_field` bumps a
/// per-(class, field) counter, feeding data-layout optimizations.
#[derive(Copy, Clone, Debug, Default)]
pub struct FieldAccessInstrumentation;

impl Instrumentation for FieldAccessInstrumentation {
    fn name(&self) -> &'static str {
        "field-access"
    }

    fn plan_function(&self, _func: FuncId, f: &Function, _module: &Module) -> Vec<Insertion> {
        let mut out = Vec::new();
        for (block, index, inst) in f.insts() {
            let op = match inst {
                Inst::GetField { obj, field, .. } => InstrOp::FieldAccess {
                    obj: *obj,
                    field: *field,
                    write: false,
                },
                Inst::SetField { obj, field, .. } => InstrOp::FieldAccess {
                    obj: *obj,
                    field: *field,
                    write: true,
                },
                _ => continue,
            };
            out.push(Insertion {
                at: InsertAt::Before { block, index },
                op,
            });
        }
        out
    }
}

/// Basic-block execution counting: one counter bump at the top of every
/// block.
#[derive(Copy, Clone, Debug, Default)]
pub struct BlockCountInstrumentation;

impl Instrumentation for BlockCountInstrumentation {
    fn name(&self) -> &'static str {
        "block-count"
    }

    fn plan_function(&self, _func: FuncId, f: &Function, _module: &Module) -> Vec<Insertion> {
        f.block_ids()
            .map(|block| Insertion {
                at: InsertAt::Before { block, index: 0 },
                op: InstrOp::BlockCount { block },
            })
            .collect()
    }
}

/// Intraprocedural edge profiling: one counter bump on every CFG edge.
/// Backedge events end up attached to the duplicated-to-checking transfer
/// edge under Full-Duplication, exactly as the paper prescribes (§2).
#[derive(Copy, Clone, Debug, Default)]
pub struct EdgeCountInstrumentation;

impl Instrumentation for EdgeCountInstrumentation {
    fn name(&self) -> &'static str {
        "edge-count"
    }

    fn plan_function(&self, _func: FuncId, f: &Function, _module: &Module) -> Vec<Insertion> {
        let mut out: Vec<Insertion> = f
            .edges()
            .map(|(from, to)| Insertion {
                at: InsertAt::OnEdge { from, to },
                op: InstrOp::EdgeCount { from, to },
            })
            .collect();
        // A conditional branch with both arms on one target yields the same
        // edge twice; one counter suffices.
        out.dedup();
        out
    }
}

/// Value profiling of incoming parameters at method entry (the paper's §4.3
/// suggestion: "parameter values that can be used to guide
/// specialization").
#[derive(Copy, Clone, Debug, Default)]
pub struct ValueProfileInstrumentation;

impl Instrumentation for ValueProfileInstrumentation {
    fn name(&self) -> &'static str {
        "value-profile"
    }

    fn plan_function(&self, _func: FuncId, f: &Function, _module: &Module) -> Vec<Insertion> {
        (0..f.arity())
            .map(|i| Insertion {
                at: InsertAt::Entry,
                op: InstrOp::ValueProfile {
                    local: isf_ir::LocalId::new(i as u32),
                    site: i as u32,
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ModulePlan;

    fn sample_module() -> Module {
        isf_frontend::compile(
            "class P { field x; field y; }
             fn get(p) { return p.x + p.y; }
             fn main() { var p = new P; p.x = 1; p.y = 2; print(get(p)); }",
        )
        .unwrap()
    }

    #[test]
    fn call_edge_plans_one_op_per_function() {
        let m = sample_module();
        let plan = ModulePlan::build(&m, &[&CallEdgeInstrumentation]);
        assert_eq!(plan.num_insertions(), m.num_functions());
        for (id, _) in m.functions() {
            assert_eq!(plan.for_function(id).len(), 1);
            assert_eq!(plan.for_function(id)[0].at, InsertAt::Entry);
        }
    }

    #[test]
    fn field_access_plans_one_op_per_access() {
        let m = sample_module();
        let plan = ModulePlan::build(&m, &[&FieldAccessInstrumentation]);
        // get: two reads; main: two writes.
        assert_eq!(plan.num_insertions(), 4);
        let get_id = m.function_by_name("get").unwrap();
        let reads = plan.for_function(get_id);
        assert!(reads
            .iter()
            .all(|i| matches!(i.op, InstrOp::FieldAccess { write: false, .. })));
        let writes = plan.for_function(m.main());
        assert!(writes
            .iter()
            .all(|i| matches!(i.op, InstrOp::FieldAccess { write: true, .. })));
    }

    #[test]
    fn block_count_covers_every_block() {
        let m = sample_module();
        let plan = ModulePlan::build(&m, &[&BlockCountInstrumentation]);
        let main = m.function(m.main());
        assert_eq!(plan.for_function(m.main()).len(), main.num_blocks());
    }

    #[test]
    fn edge_count_covers_every_edge() {
        let m = isf_frontend::compile(
            "fn main() { var i = 0; while (i < 4) { if (i % 2 == 0) { print(i); } i = i + 1; } }",
        )
        .unwrap();
        let plan = ModulePlan::build(&m, &[&EdgeCountInstrumentation]);
        let f = m.function(m.main());
        let unique_edges: std::collections::BTreeSet<_> = f.edges().collect();
        assert_eq!(plan.for_function(m.main()).len(), unique_edges.len());
    }

    #[test]
    fn value_profile_covers_parameters() {
        let m = sample_module();
        let plan = ModulePlan::build(&m, &[&ValueProfileInstrumentation]);
        let get_id = m.function_by_name("get").unwrap();
        assert_eq!(plan.for_function(get_id).len(), 1); // one parameter
        assert_eq!(plan.for_function(m.main()).len(), 0); // main takes none
    }
}
