//! Instrumentation planning: *what* to profile and *where*.
//!
//! A client picks one or more [`Instrumentation`]s; planning walks the
//! module and produces, per function, a list of [`Insertion`]s — pairs of a
//! program point ([`InsertAt`]) and an instrumentation operation
//! ([`isf_ir::InstrOp`]). The plan can then be realized two ways:
//!
//! * [`apply_exhaustive`] — insert every operation directly into the
//!   original code. This is the paper's Table 1 baseline: simple, correct,
//!   and 30%–200% overhead.
//! * the sampling transforms of `isf-core` — consume the same plan and
//!   place the operations in duplicated/guarded code so they execute only
//!   when sampled.
//!
//! Because both consumers take the identical plan, the framework delivers
//! on the paper's promise that "most instrumentation techniques can be
//! incorporated without modification": an instrumentation author writes one
//! `plan_function` and never thinks about overhead.
//!
//! Provided instrumentations:
//!
//! * [`CallEdgeInstrumentation`] — the paper's first example (§4.2).
//! * [`FieldAccessInstrumentation`] — the paper's second example (§4.2).
//! * [`BlockCountInstrumentation`], [`EdgeCountInstrumentation`],
//!   [`ValueProfileInstrumentation`] — the event-counting families the
//!   paper's §2 argues work unmodified in the framework.
//! * [`PathProfileInstrumentation`] — full Ball–Larus path profiling,
//!   the paper's flagship "expensive offline technique" made cheap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apply;
mod kinds;
mod path_profile;
mod plan;

pub use apply::{apply_exhaustive, insert_into_function};
pub use kinds::{
    BlockCountInstrumentation, CallEdgeInstrumentation, EdgeCountInstrumentation,
    FieldAccessInstrumentation, ValueProfileInstrumentation,
};
pub use path_profile::{PathProfileInstrumentation, MAX_PATHS};
pub use plan::{InsertAt, Insertion, Instrumentation, ModulePlan};
