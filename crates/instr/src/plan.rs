//! Program points, insertions and module-wide plans.

use isf_ir::{BlockId, FuncId, Function, InstrOp, Module};

/// A program point of the *original* (untransformed) function.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum InsertAt {
    /// The start of the function's entry block.
    Entry,
    /// Immediately before instruction `index` of `block`.
    Before {
        /// The block containing the instrumented instruction.
        block: BlockId,
        /// The instruction index within the block.
        index: usize,
    },
    /// On the CFG edge `from -> to` (the edge is split if necessary).
    OnEdge {
        /// Source block of the edge.
        from: BlockId,
        /// Target block of the edge.
        to: BlockId,
    },
}

/// One planned instrumentation operation at one program point.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Insertion {
    /// Where the operation goes.
    pub at: InsertAt,
    /// The operation.
    pub op: InstrOp,
}

/// A profiling technique: given a function, decide which operations to
/// insert where. Implementations never worry about overhead — that is the
/// framework's job (the paper's division of labour).
pub trait Instrumentation {
    /// A short name for reports ("call-edge", "field-access", ...).
    fn name(&self) -> &'static str;

    /// Plans the insertions for one function.
    fn plan_function(&self, func: FuncId, f: &Function, module: &Module) -> Vec<Insertion>;
}

/// The combined plan of one or more instrumentations over a whole module.
#[derive(Clone, Debug, Default)]
pub struct ModulePlan {
    /// Insertions per function, indexed by `FuncId`.
    insertions: Vec<Vec<Insertion>>,
}

impl ModulePlan {
    /// Plans `instrumentations` over every function of `module`.
    ///
    /// Multiple instrumentations compose by concatenation — the paper's
    /// §4.4 applies call-edge and field-access together in one run, and an
    /// adaptive system would "perform several forms of instrumentation
    /// while recompiling the method only once".
    pub fn build(module: &Module, instrumentations: &[&dyn Instrumentation]) -> Self {
        let insertions = module
            .functions()
            .map(|(id, f)| {
                instrumentations
                    .iter()
                    .flat_map(|i| i.plan_function(id, f, module))
                    .collect()
            })
            .collect();
        Self { insertions }
    }

    /// The insertions planned for `func`.
    pub fn for_function(&self, func: FuncId) -> &[Insertion] {
        self.insertions
            .get(func.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total number of planned operations.
    pub fn num_insertions(&self) -> usize {
        self.insertions.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no function has any planned operation.
    pub fn is_empty(&self) -> bool {
        self.insertions.iter().all(Vec::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct EntryOnly;

    impl Instrumentation for EntryOnly {
        fn name(&self) -> &'static str {
            "entry-only"
        }

        fn plan_function(&self, _: FuncId, _: &Function, _: &Module) -> Vec<Insertion> {
            vec![Insertion {
                at: InsertAt::Entry,
                op: InstrOp::CallEdge,
            }]
        }
    }

    #[test]
    fn plans_compose_by_concatenation() {
        let module = isf_frontend::compile("fn helper() {} fn main() { helper(); }").unwrap();
        let plan = ModulePlan::build(&module, &[&EntryOnly, &EntryOnly]);
        assert_eq!(plan.num_insertions(), 4); // 2 ops x 2 functions
        assert_eq!(plan.for_function(module.main()).len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn empty_plan() {
        let module = isf_frontend::compile("fn main() {}").unwrap();
        let plan = ModulePlan::build(&module, &[]);
        assert!(plan.is_empty());
        assert_eq!(plan.for_function(FuncId::new(7)), &[]);
    }
}
