//! Ball–Larus path profiling (Ball & Larus, MICRO'96 — reference \[11\] of
//! the paper).
//!
//! The paper's §2 argues that "any instrumentation designed to perform
//! event counting (such as intraprocedural edge or *path* profiling …)
//! will work effectively when inserted as-is into the duplicated code".
//! This module is that claim made executable.
//!
//! # Construction
//!
//! Standard Ball–Larus on the *duplicated-code DAG* (the CFG minus its
//! backedges), with the usual virtual edges: a virtual `ENTRY` node feeds
//! the function entry and every loop header; every `ret` block and every
//! backedge source feeds a virtual `EXIT`. `NumPaths` is computed in
//! topological order and each edge gets the increment that makes the sum
//! of increments along every `ENTRY → EXIT` path unique.
//!
//! Placement maps onto the plan vocabulary of this crate:
//!
//! * function entry → `PathStart(inc(ENTRY→entry))`;
//! * each loop header `h` → `PathEnd` (records a path that *flows into*
//!   the loop, if one is live) then `PathStart(inc(ENTRY→h))`, at the top
//!   of `h`;
//! * each DAG edge with a non-zero increment → `PathIncr` on that edge;
//! * each backedge → `PathIncr(inc(src→EXIT))` + `PathEnd` on the edge;
//! * each `ret` → `PathIncr(inc(block→EXIT))` + `PathEnd` before it.
//!
//! Because the `PathStart` at a header is the *first* instruction of the
//! header block, a sampled burst that enters duplicated code at `dup(h)`
//! starts a well-formed path immediately, and a burst that ends consumes
//! the register — the path register is an `Option` in the VM, so partial
//! paths are silently dropped rather than misrecorded. One sampled burst
//! under Full-Duplication is exactly one Ball–Larus path.
//!
//! Functions whose path count exceeds [`MAX_PATHS`] are left
//! uninstrumented, the standard practical fallback.
//!
//! No-Duplication guards each operation *individually*, so complete paths
//! almost never assemble under it — the paper's point that techniques
//! observing event sequences need a duplicating strategy.

use std::collections::BTreeSet;

use isf_ir::{cfg, loops, BlockId, FuncId, Function, InstrOp, Module, Term};

use crate::plan::{InsertAt, Insertion, Instrumentation};

/// Functions with more potential paths than this are not instrumented.
pub const MAX_PATHS: u64 = 1 << 31;

/// Intraprocedural Ball–Larus path profiling.
#[derive(Copy, Clone, Debug, Default)]
pub struct PathProfileInstrumentation;

impl Instrumentation for PathProfileInstrumentation {
    fn name(&self) -> &'static str {
        "path-profile"
    }

    fn plan_function(&self, _func: FuncId, f: &Function, _module: &Module) -> Vec<Insertion> {
        plan_paths(f).unwrap_or_default()
    }
}

/// Plans the Ball–Larus insertions, or `None` when the function exceeds
/// [`MAX_PATHS`].
fn plan_paths(f: &Function) -> Option<Vec<Insertion>> {
    let n = f.num_blocks();
    let backedges: BTreeSet<(BlockId, BlockId)> = loops::backedges(f).into_iter().collect();
    let headers: BTreeSet<BlockId> = backedges.iter().map(|&(_, h)| h).collect();
    let reachable = cfg::reachable(f);
    let postorder = cfg::postorder(f);

    // Deduplicated DAG successors per block, in branch order.
    let dag_succs = |b: BlockId| -> Vec<BlockId> {
        let mut seen = Vec::new();
        for s in f.block(b).successors() {
            if !backedges.contains(&(b, s)) && !seen.contains(&s) {
                seen.push(s);
            }
        }
        seen
    };
    // Number of virtual exit edges out of a block: one per distinct
    // backedge pair plus one if the block returns.
    let exit_edges = |b: BlockId| -> Vec<ExitEdge> {
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        for s in f.block(b).successors() {
            if backedges.contains(&(b, s)) && seen.insert(s) {
                out.push(ExitEdge::Backedge(s));
            }
        }
        if matches!(f.block(b).term(), Term::Ret(_)) {
            out.push(ExitEdge::Ret);
        }
        out
    };

    // NumPaths in topological order (postorder visits successors first;
    // backedges are excluded so the DAG restriction of the DFS is acyclic).
    let mut num_paths: Vec<u64> = vec![0; n];
    for &b in &postorder {
        let mut total: u64 = exit_edges(b).len() as u64;
        for s in dag_succs(b) {
            total = total.saturating_add(num_paths[s.index()]);
        }
        if total > MAX_PATHS {
            return None;
        }
        num_paths[b.index()] = total;
    }

    let mut insertions = Vec::new();
    let mut end_sites = 0u32;
    let mut next_end_site = || {
        let s = end_sites;
        end_sites += 1;
        s
    };

    // Virtual ENTRY edges: the function entry first, then each header in
    // id order. The running sum gives each start its base value.
    let mut entry_targets: Vec<BlockId> = vec![f.entry()];
    for &h in &headers {
        if h != f.entry() {
            entry_targets.push(h);
        }
    }
    let mut base: u64 = 0;
    for (i, &t) in entry_targets.iter().enumerate() {
        if !reachable[t.index()] {
            continue;
        }
        let value = u32::try_from(base).ok()?;
        if i == 0 && !headers.contains(&t) {
            insertions.push(Insertion {
                at: InsertAt::Before { block: t, index: 0 },
                op: InstrOp::PathStart { value },
            });
        } else {
            // A header (possibly the entry itself): close any path flowing
            // into the loop, then start the header's family.
            insertions.push(Insertion {
                at: InsertAt::Before { block: t, index: 0 },
                op: InstrOp::PathEnd {
                    site: next_end_site(),
                },
            });
            insertions.push(Insertion {
                at: InsertAt::Before { block: t, index: 0 },
                op: InstrOp::PathStart { value },
            });
        }
        base = base.saturating_add(num_paths[t.index()]);
        if base > MAX_PATHS {
            return None;
        }
    }

    // Edge increments: per block, the virtual out-edges in canonical order
    // (DAG successors in branch order, then exit edges).
    for b in f.block_ids() {
        if !reachable[b.index()] {
            continue;
        }
        let mut running: u64 = 0;
        for s in dag_succs(b) {
            if running > 0 {
                let delta = u32::try_from(running).ok()?;
                insertions.push(Insertion {
                    at: InsertAt::OnEdge { from: b, to: s },
                    op: InstrOp::PathIncr { delta },
                });
            }
            running = running.saturating_add(num_paths[s.index()]);
        }
        for exit in exit_edges(b) {
            match exit {
                ExitEdge::Backedge(h) => {
                    if running > 0 {
                        let delta = u32::try_from(running).ok()?;
                        insertions.push(Insertion {
                            at: InsertAt::OnEdge { from: b, to: h },
                            op: InstrOp::PathIncr { delta },
                        });
                    }
                    insertions.push(Insertion {
                        at: InsertAt::OnEdge { from: b, to: h },
                        op: InstrOp::PathEnd {
                            site: next_end_site(),
                        },
                    });
                }
                ExitEdge::Ret => {
                    let index = f.block(b).insts().len();
                    if running > 0 {
                        let delta = u32::try_from(running).ok()?;
                        insertions.push(Insertion {
                            at: InsertAt::Before { block: b, index },
                            op: InstrOp::PathIncr { delta },
                        });
                    }
                    insertions.push(Insertion {
                        at: InsertAt::Before { block: b, index },
                        op: InstrOp::PathEnd {
                            site: next_end_site(),
                        },
                    });
                }
            }
            running = running.saturating_add(1);
        }
    }

    Some(insertions)
}

enum ExitEdge {
    Backedge(BlockId),
    Ret,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ModulePlan;
    use isf_exec::{run, VmConfig};

    fn profile_of(src: &str) -> (isf_ir::Module, isf_exec::Outcome) {
        let mut m = isf_frontend::compile(src).unwrap();
        let plan = ModulePlan::build(&m, &[&PathProfileInstrumentation]);
        crate::apply::apply_exhaustive(&mut m, &plan);
        isf_ir::verify::verify_module(&m).unwrap();
        let o = run(&m, &VmConfig::default()).unwrap();
        (m, o)
    }

    #[test]
    fn straight_line_function_has_one_path() {
        let (m, o) = profile_of("fn main() { print(1); print(2); }");
        let main = m.main();
        let main_paths: Vec<_> = o
            .profile
            .paths()
            .keys()
            .filter(|(f, _, _)| *f == main)
            .collect();
        assert_eq!(main_paths.len(), 1);
        assert_eq!(o.profile.total_path_events(), 1);
    }

    #[test]
    fn diamond_paths_are_distinguished() {
        // Branch taken differently on alternate iterations of an outer
        // call, in a loop-free callee: two distinct path ids.
        let (m, o) = profile_of(
            "fn pick(x) { if (x % 2 == 0) { return x + 1; } return x - 1; }
             fn main() { var i = 0; while (i < 10) { print(pick(i)); i = i + 1; } }",
        );
        let pick = m.function_by_name("pick").unwrap();
        let pick_paths: Vec<(i64, u64)> = o
            .profile
            .paths()
            .iter()
            .filter(|((f, _, _), _)| *f == pick)
            .map(|(&(_, _, id), &c)| (id, c))
            .collect();
        assert_eq!(pick_paths.len(), 2, "two sides of the diamond");
        // Five executions of each side.
        assert!(pick_paths.iter().all(|&(_, c)| c == 5));
        // Distinct ids.
        assert_ne!(pick_paths[0].0, pick_paths[1].0);
    }

    #[test]
    fn nested_diamonds_get_unique_ids() {
        // Four loop-free paths; all must have distinct ids.
        let (m, o) = profile_of(
            "fn combo(x) {
                 var a = 0;
                 if (x % 2 == 0) { a = 1; } else { a = 2; }
                 if (x % 3 == 0) { a = a + 10; } else { a = a + 20; }
                 return a;
             }
             fn main() { var i = 0; while (i < 12) { print(combo(i)); i = i + 1; } }",
        );
        let combo = m.function_by_name("combo").unwrap();
        let ids: BTreeSet<i64> = o
            .profile
            .paths()
            .keys()
            .filter(|(f, _, _)| *f == combo)
            .map(|&(_, _, id)| id)
            .collect();
        assert_eq!(ids.len(), 4, "2x2 diamond paths, all distinguished");
    }

    #[test]
    fn loop_iterations_become_header_to_backedge_paths() {
        let (m, o) = profile_of(
            "fn main() {
                 var i = 0;
                 while (i < 8) {
                     if (i % 2 == 0) { print(i); }
                     i = i + 1;
                 }
             }",
        );
        let main = m.main();
        let total: u64 = o
            .profile
            .paths()
            .iter()
            .filter(|((f, _, _), _)| *f == main)
            .map(|(_, &c)| c)
            .sum();
        // 8 iteration paths + the entry path + the exit path ≈ 10 events;
        // exact composition depends on segment boundaries, but every
        // iteration must be observed.
        assert!(total >= 8, "only {total} path events");
        // Even and odd iterations take different paths.
        let distinct = o
            .profile
            .paths()
            .keys()
            .filter(|(f, _, _)| *f == main)
            .count();
        assert!(distinct >= 2);
    }
}
