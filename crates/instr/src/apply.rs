//! Exhaustive plan application (the paper's Table 1 baseline).

use isf_ir::{BlockId, Function, Inst, Module};

use crate::plan::{InsertAt, Insertion, ModulePlan};

/// Applies `insertions` directly to `f`, in place.
///
/// * `Entry` and `Before` points become instructions in the named blocks;
///   operations at the same point keep their plan order.
/// * `OnEdge` points split the edge (once per edge) and place the
///   operations in the split block.
///
/// # Panics
///
/// Panics if an insertion names a block, index or edge that does not exist.
pub fn insert_into_function(f: &mut Function, insertions: &[Insertion]) {
    // In-block insertions: gather per block, apply back-to-front so indices
    // stay valid.
    let mut per_block: Vec<Vec<(usize, isf_ir::InstrOp)>> = vec![Vec::new(); f.num_blocks()];
    let mut edges: Vec<((BlockId, BlockId), Vec<isf_ir::InstrOp>)> = Vec::new();
    for ins in insertions {
        match ins.at {
            InsertAt::Entry => per_block[f.entry().index()].push((0, ins.op)),
            InsertAt::Before { block, index } => {
                assert!(
                    index <= f.block(block).insts().len(),
                    "insertion index out of range"
                );
                per_block[block.index()].push((index, ins.op));
            }
            InsertAt::OnEdge { from, to } => {
                if let Some((_, ops)) = edges.iter_mut().find(|(e, _)| *e == (from, to)) {
                    ops.push(ins.op);
                } else {
                    edges.push(((from, to), vec![ins.op]));
                }
            }
        }
    }
    for (b, mut points) in per_block.into_iter().enumerate() {
        // Stable by index; reversed iteration keeps plan order per point.
        points.sort_by_key(|&(i, _)| i);
        let block = f.block_mut(BlockId::new(b as u32));
        for &(index, op) in points.iter().rev() {
            block.insts_mut().insert(index, Inst::Instr(op));
        }
    }
    for ((from, to), ops) in edges {
        let split = f.split_edge(from, to);
        let insts = f.block_mut(split).insts_mut();
        for op in ops {
            insts.push(Inst::Instr(op));
        }
    }
}

/// Applies a whole-module plan exhaustively — every operation executes on
/// every event, no sampling. This is how Table 1's 30%–200% overheads are
/// produced.
pub fn apply_exhaustive(module: &mut Module, plan: &ModulePlan) {
    let ids: Vec<_> = module.func_ids().collect();
    for id in ids {
        insert_into_function(module.function_mut(id), plan.for_function(id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::{
        BlockCountInstrumentation, CallEdgeInstrumentation, EdgeCountInstrumentation,
        FieldAccessInstrumentation,
    };
    use crate::plan::Instrumentation;
    use isf_exec::{run, VmConfig};

    const PROGRAM: &str = "
        class P { field x; }
        fn bump(p) { p.x = p.x + 1; return p.x; }
        fn main() {
            var p = new P; p.x = 0;
            var i = 0;
            while (i < 10) { bump(p); i = i + 1; }
            print(p.x);
        }";

    fn instrumented(kinds: &[&dyn Instrumentation]) -> Module {
        let mut m = isf_frontend::compile(PROGRAM).unwrap();
        let plan = ModulePlan::build(&m, kinds);
        apply_exhaustive(&mut m, &plan);
        isf_ir::verify::verify_module(&m).expect("instrumented module verifies");
        m
    }

    #[test]
    fn exhaustive_preserves_semantics() {
        let base = isf_frontend::compile(PROGRAM).unwrap();
        let inst = instrumented(&[
            &CallEdgeInstrumentation,
            &FieldAccessInstrumentation,
            &BlockCountInstrumentation,
            &EdgeCountInstrumentation,
        ]);
        let cfg = VmConfig::default();
        let a = run(&base, &cfg).unwrap();
        let b = run(&inst, &cfg).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.output, vec![10]);
    }

    #[test]
    fn exhaustive_call_edge_counts_are_exact() {
        let m = instrumented(&[&CallEdgeInstrumentation]);
        let o = run(&m, &VmConfig::default()).unwrap();
        // 10 calls to bump from main; main itself has no caller.
        assert_eq!(o.profile.total_call_edge_events(), 10);
        assert_eq!(o.profile.call_edges().len(), 1);
    }

    #[test]
    fn exhaustive_field_access_counts_are_exact() {
        let m = instrumented(&[&FieldAccessInstrumentation]);
        let o = run(&m, &VmConfig::default()).unwrap();
        // bump: read + write + read-for-return per call (3 * 10), plus
        // main's initial write and the final read for `print`.
        assert_eq!(o.profile.total_field_access_events(), 32);
        let writes: u64 = o.profile.field_writes().values().sum();
        assert_eq!(writes, 11);
    }

    #[test]
    fn exhaustive_instrumentation_costs_cycles() {
        let base = isf_frontend::compile(PROGRAM).unwrap();
        let inst = instrumented(&[&CallEdgeInstrumentation, &FieldAccessInstrumentation]);
        let cfg = VmConfig::default();
        let a = run(&base, &cfg).unwrap();
        let b = run(&inst, &cfg).unwrap();
        assert!(
            b.cycles > a.cycles,
            "instrumented code must be slower: {} vs {}",
            b.cycles,
            a.cycles
        );
    }

    #[test]
    fn edge_ops_count_traversals() {
        let m = instrumented(&[&EdgeCountInstrumentation]);
        let o = run(&m, &VmConfig::default()).unwrap();
        let f = m.function_by_name("main").unwrap();
        // The loop body edge executes once per iteration; find a 10-count.
        assert!(o
            .profile
            .edges()
            .iter()
            .any(|(&(func, _, _), &c)| func == f && c == 10));
    }

    #[test]
    fn block_counts_match_entries() {
        let m = instrumented(&[&BlockCountInstrumentation]);
        let o = run(&m, &VmConfig::default()).unwrap();
        let bump = m.function_by_name("bump").unwrap();
        let entry_count = o.profile.blocks()[&(bump, isf_ir::BlockId::new(0))];
        assert_eq!(entry_count, 10);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn bad_insertion_panics() {
        let mut m = isf_frontend::compile("fn main() {}").unwrap();
        let main = m.main();
        insert_into_function(
            m.function_mut(main),
            &[Insertion {
                at: InsertAt::Before {
                    block: BlockId::new(0),
                    index: 999,
                },
                op: isf_ir::InstrOp::CallEdge,
            }],
        );
    }
}
