//! Shared helpers for the Criterion benches.
//!
//! Each bench target regenerates one table or figure of the paper in
//! *wall-clock* terms: the experiment harness reports overheads on the
//! deterministic simulated clock; these benches double-check that real
//! time orders the same way (instrumented > framework > baseline, etc.).
//! Keep runs short — the shapes, not the absolute numbers, are the point.

use std::time::Duration;

use criterion::Criterion;

use isf_core::{instrument_module, Options, Strategy};
use isf_exec::{run, Outcome, Trigger, VmConfig};
use isf_instr::{CallEdgeInstrumentation, FieldAccessInstrumentation, Instrumentation, ModulePlan};
use isf_ir::Module;
use isf_workloads::Scale;

/// A short-measurement Criterion instance suitable for interpreter-bound
/// benches.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
        .configure_from_args()
}

/// Compiles a named benchmark at smoke scale.
///
/// # Panics
///
/// Panics if the name is unknown.
pub fn module(name: &str) -> Module {
    isf_workloads::by_name(name, Scale::Smoke)
        .unwrap_or_else(|| panic!("unknown workload `{name}`"))
        .compile()
}

/// Instruments `module` with the given kinds and strategy.
///
/// # Panics
///
/// Panics on invalid option combinations.
pub fn instrumented(module: &Module, kinds: &[&dyn Instrumentation], options: &Options) -> Module {
    let plan = ModulePlan::build(module, kinds);
    instrument_module(module, &plan, options)
        .expect("bench configurations are valid")
        .0
}

/// The paper's two example instrumentations.
pub fn both_kinds() -> Vec<&'static dyn Instrumentation> {
    vec![&CallEdgeInstrumentation, &FieldAccessInstrumentation]
}

/// Runs to completion under `trigger`.
///
/// # Panics
///
/// Panics if the program traps.
pub fn run_with(module: &Module, trigger: Trigger) -> Outcome {
    run(
        module,
        &VmConfig {
            trigger,
            ..VmConfig::default()
        },
    )
    .expect("benchmarks do not trap")
}

/// Shorthand for [`Options::new`].
pub fn opts(strategy: Strategy) -> Options {
    Options::new(strategy)
}
