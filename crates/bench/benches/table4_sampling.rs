//! Table 4 in wall-clock form: total sampling cost across sample
//! intervals, Full-Duplication vs No-Duplication, both instrumentations.

use criterion::{BenchmarkId, Criterion};
use isf_bench::{both_kinds, criterion, instrumented, module, opts, run_with};
use isf_core::Strategy;
use isf_exec::Trigger;

fn bench(c: &mut Criterion) {
    let base = module("jess");
    let full = instrumented(&base, &both_kinds(), &opts(Strategy::FullDuplication));
    let nodup = instrumented(&base, &both_kinds(), &opts(Strategy::NoDuplication));
    let mut g = c.benchmark_group("table4/jess");
    g.bench_function("baseline", |b| b.iter(|| run_with(&base, Trigger::Never)));
    for interval in [1u64, 10, 100, 1_000, 10_000] {
        g.bench_with_input(
            BenchmarkId::new("full_duplication", interval),
            &interval,
            |b, &i| b.iter(|| run_with(&full, Trigger::Counter { interval: i })),
        );
        g.bench_with_input(
            BenchmarkId::new("no_duplication", interval),
            &interval,
            |b, &i| b.iter(|| run_with(&nodup, Trigger::Counter { interval: i })),
        );
    }
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
