//! Table 5 in wall-clock form: counter-based vs timer-based triggers at a
//! matched sample rate (field-access, Full-Duplication).

use criterion::Criterion;
use isf_bench::{criterion, instrumented, module, opts, run_with};
use isf_core::Strategy;
use isf_exec::Trigger;
use isf_instr::FieldAccessInstrumentation;

fn bench(c: &mut Criterion) {
    let base = module("jack");
    let full = instrumented(
        &base,
        &[&FieldAccessInstrumentation],
        &opts(Strategy::FullDuplication),
    );
    // Match sample counts the way the harness does.
    let probe = run_with(&full, Trigger::Never);
    let interval = (probe.checks_executed / 120).max(3) | 1;
    let counter = run_with(&full, Trigger::Counter { interval });
    let period = (counter.cycles / counter.samples_taken.max(1)).max(1);

    let mut g = c.benchmark_group("table5/jack");
    g.bench_function("counter_trigger", |b| {
        b.iter(|| run_with(&full, Trigger::Counter { interval }))
    });
    g.bench_function("timer_trigger", |b| {
        b.iter(|| run_with(&full, Trigger::TimerBit { period }))
    });
    g.bench_function("randomized_trigger", |b| {
        b.iter(|| {
            run_with(
                &full,
                Trigger::CounterRandomized {
                    interval,
                    jitter: interval / 4,
                    seed: 42,
                },
            )
        })
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
