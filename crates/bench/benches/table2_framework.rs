//! Table 2 in wall-clock form: Full-Duplication framework overhead (no
//! samples taken) and the checks-only breakdown configurations.

use criterion::Criterion;
use isf_bench::{criterion, instrumented, module, opts, run_with};
use isf_core::Strategy;
use isf_exec::Trigger;

fn bench(c: &mut Criterion) {
    for name in ["compress", "db", "javac"] {
        let base = module(name);
        let full = instrumented(&base, &[], &opts(Strategy::FullDuplication));
        let backedges = instrumented(
            &base,
            &[],
            &opts(Strategy::ChecksOnly {
                entries: false,
                backedges: true,
            }),
        );
        let entries = instrumented(
            &base,
            &[],
            &opts(Strategy::ChecksOnly {
                entries: true,
                backedges: false,
            }),
        );
        let mut g = c.benchmark_group(format!("table2/{name}"));
        g.bench_function("baseline", |b| b.iter(|| run_with(&base, Trigger::Never)));
        g.bench_function("full_duplication_framework", |b| {
            b.iter(|| run_with(&full, Trigger::Never))
        });
        g.bench_function("backedge_checks_only", |b| {
            b.iter(|| run_with(&backedges, Trigger::Never))
        });
        g.bench_function("entry_checks_only", |b| {
            b.iter(|| run_with(&entries, Trigger::Never))
        });
        g.finish();
    }
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
