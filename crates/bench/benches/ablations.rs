//! Ablation benches for the design choices called out in DESIGN.md:
//! transform ("compile") time per strategy, trigger variants, and the
//! interpreter's baseline throughput.

use criterion::{BenchmarkId, Criterion};
use isf_bench::{both_kinds, criterion, instrumented, module, opts, run_with};
use isf_core::{instrument_module, Strategy};
use isf_exec::Trigger;
use isf_instr::ModulePlan;

fn transform_time(c: &mut Criterion) {
    let base = module("javac");
    let plan = ModulePlan::build(&base, &both_kinds());
    let mut g = c.benchmark_group("ablation/transform_time");
    for strategy in [
        Strategy::Exhaustive,
        Strategy::FullDuplication,
        Strategy::PartialDuplication,
        Strategy::NoDuplication,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(strategy), &strategy, |b, &s| {
            b.iter(|| instrument_module(&base, &plan, &opts(s)).unwrap())
        });
    }
    g.finish();
}

fn trigger_variants(c: &mut Criterion) {
    let base = module("pbob");
    let full = instrumented(&base, &both_kinds(), &opts(Strategy::FullDuplication));
    let mut g = c.benchmark_group("ablation/triggers");
    g.bench_function("global_counter", |b| {
        b.iter(|| run_with(&full, Trigger::Counter { interval: 101 }))
    });
    g.bench_function("per_thread_counter", |b| {
        b.iter(|| run_with(&full, Trigger::CounterPerThread { interval: 101 }))
    });
    g.bench_function("randomized_counter", |b| {
        b.iter(|| {
            run_with(
                &full,
                Trigger::CounterRandomized {
                    interval: 101,
                    jitter: 25,
                    seed: 7,
                },
            )
        })
    });
    g.bench_function("timer_bit", |b| {
        b.iter(|| run_with(&full, Trigger::TimerBit { period: 10_007 }))
    });
    g.finish();
}

fn optimize_then_instrument(c: &mut Criterion) {
    // Jalapeño instruments O2 code (paper §4.1); compare sampling overhead
    // on optimized vs unoptimized code.
    let w = isf_workloads::by_name("javac", isf_workloads::Scale::Smoke).unwrap();
    let plain = w.compile();
    let optimized = isf_frontend::compile_optimized(w.source()).unwrap();
    let plain_full = instrumented(&plain, &both_kinds(), &opts(Strategy::FullDuplication));
    let opt_full = instrumented(&optimized, &both_kinds(), &opts(Strategy::FullDuplication));
    let mut g = c.benchmark_group("ablation/optimizer");
    g.bench_function("baseline_unoptimized", |b| {
        b.iter(|| run_with(&plain, Trigger::Never))
    });
    g.bench_function("baseline_optimized", |b| {
        b.iter(|| run_with(&optimized, Trigger::Never))
    });
    g.bench_function("sampling_unoptimized", |b| {
        b.iter(|| run_with(&plain_full, Trigger::Counter { interval: 101 }))
    });
    g.bench_function("sampling_optimized", |b| {
        b.iter(|| run_with(&opt_full, Trigger::Counter { interval: 101 }))
    });
    g.finish();
}

fn selective_instrumentation(c: &mut Criterion) {
    use std::collections::HashSet;
    // The adaptive deployment: hot methods only vs everything.
    let base = module("jess");
    let plan = ModulePlan::build(&base, &both_kinds());
    let all = instrumented(&base, &both_kinds(), &opts(Strategy::FullDuplication));
    let scout = run_with(&all, Trigger::Counter { interval: 53 });
    let hot: HashSet<_> = isf_profile::hotness::functions_covering(&scout.profile, 0.9)
        .into_iter()
        .collect();
    let (selective, _) =
        isf_core::instrument_module_selective(&base, &plan, &opts(Strategy::FullDuplication), &hot)
            .unwrap();
    let mut g = c.benchmark_group("ablation/selective");
    g.bench_function("all_methods", |b| {
        b.iter(|| run_with(&all, Trigger::Counter { interval: 101 }))
    });
    g.bench_function("hot_methods_only", |b| {
        b.iter(|| run_with(&selective, Trigger::Counter { interval: 101 }))
    });
    g.finish();
}

fn interpreter_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/interpreter");
    for name in ["compress", "db", "opt_compiler"] {
        let base = module(name);
        g.bench_with_input(BenchmarkId::from_parameter(name), &base, |b, m| {
            b.iter(|| run_with(m, Trigger::Never))
        });
    }
    g.finish();
}

fn main() {
    let mut c = criterion();
    transform_time(&mut c);
    trigger_variants(&mut c);
    optimize_then_instrument(&mut c);
    selective_instrumentation(&mut c);
    interpreter_throughput(&mut c);
    c.final_summary();
}
