//! Figure 7 in wall-clock form: collecting the javac call-edge profile
//! exhaustively vs sampled (the figure's interval-1000 analogue).

use criterion::Criterion;
use isf_bench::{criterion, instrumented, module, opts, run_with};
use isf_core::Strategy;
use isf_exec::Trigger;
use isf_instr::CallEdgeInstrumentation;

fn bench(c: &mut Criterion) {
    let base = module("javac");
    let exhaustive = instrumented(
        &base,
        &[&CallEdgeInstrumentation],
        &opts(Strategy::Exhaustive),
    );
    let sampled = instrumented(
        &base,
        &[&CallEdgeInstrumentation],
        &opts(Strategy::FullDuplication),
    );
    let mut g = c.benchmark_group("fig7/javac");
    g.bench_function("perfect_profile", |b| {
        b.iter(|| run_with(&exhaustive, Trigger::Never))
    });
    g.bench_function("sampled_profile", |b| {
        b.iter(|| run_with(&sampled, Trigger::Counter { interval: 37 }))
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
