//! Table 1 in wall-clock form: exhaustive call-edge and field-access
//! instrumentation against the uninstrumented baseline, per benchmark.

use criterion::Criterion;
use isf_bench::{both_kinds, criterion, instrumented, module, opts, run_with};
use isf_core::Strategy;
use isf_exec::Trigger;
use isf_instr::{CallEdgeInstrumentation, FieldAccessInstrumentation};

fn bench(c: &mut Criterion) {
    for name in ["compress", "jess", "db", "opt_compiler"] {
        let base = module(name);
        let call = instrumented(
            &base,
            &[&CallEdgeInstrumentation],
            &opts(Strategy::Exhaustive),
        );
        let field = instrumented(
            &base,
            &[&FieldAccessInstrumentation],
            &opts(Strategy::Exhaustive),
        );
        let both = instrumented(&base, &both_kinds(), &opts(Strategy::Exhaustive));
        let mut g = c.benchmark_group(format!("table1/{name}"));
        g.bench_function("baseline", |b| b.iter(|| run_with(&base, Trigger::Never)));
        g.bench_function("exhaustive_call_edge", |b| {
            b.iter(|| run_with(&call, Trigger::Never))
        });
        g.bench_function("exhaustive_field_access", |b| {
            b.iter(|| run_with(&field, Trigger::Never))
        });
        g.bench_function("exhaustive_both", |b| {
            b.iter(|| run_with(&both, Trigger::Never))
        });
        g.finish();
    }
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
