//! Table 3 in wall-clock form: No-Duplication checking overhead for the
//! cheap-to-guard (call-edge) vs pointless-to-guard (field-access) cases.

use criterion::Criterion;
use isf_bench::{criterion, instrumented, module, opts, run_with};
use isf_core::Strategy;
use isf_exec::Trigger;
use isf_instr::{CallEdgeInstrumentation, FieldAccessInstrumentation};

fn bench(c: &mut Criterion) {
    for name in ["compress", "jess"] {
        let base = module(name);
        let call = instrumented(
            &base,
            &[&CallEdgeInstrumentation],
            &opts(Strategy::NoDuplication),
        );
        let field = instrumented(
            &base,
            &[&FieldAccessInstrumentation],
            &opts(Strategy::NoDuplication),
        );
        let mut g = c.benchmark_group(format!("table3/{name}"));
        g.bench_function("baseline", |b| b.iter(|| run_with(&base, Trigger::Never)));
        g.bench_function("nodup_call_edge_checks", |b| {
            b.iter(|| run_with(&call, Trigger::Never))
        });
        g.bench_function("nodup_field_access_checks", |b| {
            b.iter(|| run_with(&field, Trigger::Never))
        });
        g.finish();
    }
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
