//! Figure 8 in wall-clock form: the Jalapeño-specific yieldpoint
//! optimization against plain Full-Duplication, framework-only and
//! while sampling.

use criterion::Criterion;
use isf_bench::{both_kinds, criterion, instrumented, module, run_with};
use isf_core::{Options, Strategy};
use isf_exec::Trigger;

fn bench(c: &mut Criterion) {
    for name in ["compress", "mpegaudio"] {
        let base = module(name);
        let plain = instrumented(&base, &[], &Options::new(Strategy::FullDuplication));
        let opt = instrumented(
            &base,
            &[],
            &Options::new(Strategy::FullDuplication).with_yieldpoint_optimization(),
        );
        let opt_sampling = instrumented(
            &base,
            &both_kinds(),
            &Options::new(Strategy::FullDuplication).with_yieldpoint_optimization(),
        );
        let mut g = c.benchmark_group(format!("fig8/{name}"));
        g.bench_function("baseline", |b| b.iter(|| run_with(&base, Trigger::Never)));
        g.bench_function("framework_plain", |b| {
            b.iter(|| run_with(&plain, Trigger::Never))
        });
        g.bench_function("framework_yieldpoint_opt", |b| {
            b.iter(|| run_with(&opt, Trigger::Never))
        });
        g.bench_function("sampling_yieldpoint_opt_1000", |b| {
            b.iter(|| run_with(&opt_sampling, Trigger::Counter { interval: 1_000 }))
        });
        g.finish();
    }
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
