//! Ablation: superinstruction-fused dispatch vs the plain pre-decoded
//! engine vs the naive tree-walking reference.
//!
//! `run_prepared` executes a flattened, pre-resolved instruction arena
//! (costs folded, branch targets as indices, backedges pre-classified);
//! with fusion the hot multi-op sequences of that arena collapse into
//! single superinstructions with pre-summed costs, so the dispatch loop
//! turns fewer times per simulated instruction. `run_naive` re-reads the
//! structured IR and re-derives all of that on the fly, per run and per
//! instruction. All three produce identical outcomes — this bench
//! measures dispatch cost alone and asserts the two headline claims: the
//! unfused prepared engine is at least 1.5× the naive one, and fusion is
//! at least 1.25× on top of it, both on `compress`. The self-profiling
//! variant (`profiled`, the per-opcode `OpProfile` sink) must stay
//! within 5% of the untraced fused run.

use criterion::Criterion;
use isf_bench::{criterion, module};
use isf_exec::{
    run_naive, run_prepared, run_prepared_profiled, run_prepared_traced, FuseGuidance, FuseMode,
    OpProfile, PreparedModule, TraceBuffer, VmConfig,
};

fn dispatch(c: &mut Criterion) {
    let cfg = VmConfig::default();
    for name in ["compress", "mtrt", "db", "jess"] {
        let m = module(name);
        let fused = PreparedModule::prepare_with(&m, &cfg.cost, FuseMode::Fuse);
        let unfused = PreparedModule::prepare_with(&m, &cfg.cost, FuseMode::Off);
        c.bench_function(format!("interp_dispatch/fused/{name}"), |b| {
            b.iter(|| run_prepared(&fused, &cfg).unwrap())
        });
        // Profile-guided fusion (the harness's `--pgo` flow): warm the
        // statically-fused form under the profiled engine, distill the
        // profile into guidance, and re-prepare. Guided groups only ever
        // add coverage on top of the catalogue — catalogue matches win
        // ties in the block partitioner — so this row should sit at or
        // below the `fused` row, most visibly on call-dense benchmarks.
        let mut warmup = OpProfile::new();
        run_prepared_profiled(&fused, &cfg, &mut warmup).unwrap();
        let guidance = Box::new(FuseGuidance::from_profile(&warmup));
        let guided = PreparedModule::prepare_with(&m, &cfg.cost, FuseMode::Guided(guidance));
        c.bench_function(format!("interp_dispatch/guided/{name}"), |b| {
            b.iter(|| run_prepared(&guided, &cfg).unwrap())
        });
        // `prepared` is the pre-fusion engine (FuseMode::Off), keeping the
        // bench ID comparable with historical runs.
        c.bench_function(format!("interp_dispatch/prepared/{name}"), |b| {
            b.iter(|| run_prepared(&unfused, &cfg).unwrap())
        });
        c.bench_function(format!("interp_dispatch/naive/{name}"), |b| {
            b.iter(|| run_naive(&m, &cfg).unwrap())
        });
        // Re-preparing on every run (what `run` does, fusion included)
        // must still beat the naive engine; the decode-and-fuse pass is a
        // small fraction of a run.
        c.bench_function(format!("interp_dispatch/prepare_each_run/{name}"), |b| {
            b.iter(|| {
                let p = PreparedModule::prepare(&m, &cfg.cost);
                run_prepared(&p, &cfg).unwrap()
            })
        });
        // Live burst tracing: the generic-sink variant with a real buffer.
        // Uninstrumented modules take no samples, so this measures the
        // plumbing (the `S::ENABLED` branches), not record volume.
        c.bench_function(format!("interp_dispatch/traced/{name}"), |b| {
            b.iter(|| {
                let mut sink = TraceBuffer::new();
                run_prepared_traced(&fused, &cfg, &mut sink).unwrap()
            })
        });
        // Self-profiling: the per-opcode dispatch profile adds two array
        // bumps and a cycle delta per dispatch. The budget is 5% over the
        // untraced fused run — cheap enough to leave on in long soaks.
        c.bench_function(format!("interp_dispatch/profiled/{name}"), |b| {
            b.iter(|| {
                let mut profile = OpProfile::new();
                run_prepared_profiled(&fused, &cfg, &mut profile).unwrap()
            })
        });
    }
}

fn main() {
    let mut c = criterion();
    dispatch(&mut c);

    let fused = c
        .result_ns("interp_dispatch/fused/compress")
        .expect("fused/compress was measured");
    let fast = c
        .result_ns("interp_dispatch/prepared/compress")
        .expect("prepared/compress was measured");
    let slow = c
        .result_ns("interp_dispatch/naive/compress")
        .expect("naive/compress was measured");
    let speedup = slow / fast;
    println!("interp_dispatch: prepared dispatch is {speedup:.2}x the naive engine on compress");
    assert!(
        speedup >= 1.5,
        "prepared dispatch must be >= 1.5x faster than naive on compress, got {speedup:.2}x"
    );
    let fusion_speedup = fast / fused;
    println!(
        "interp_dispatch: fusion is {fusion_speedup:.2}x the unfused prepared engine on compress"
    );
    assert!(
        fusion_speedup >= 1.25,
        "fused dispatch must be >= 1.25x faster than unfused on compress, got {fusion_speedup:.2}x"
    );
    // The no-trace path is the zero-cost baseline: a live TraceBuffer on a
    // sample-free run should cost within noise of it (the recording sites
    // compile out entirely when the sink is NoTrace).
    let traced = c
        .result_ns("interp_dispatch/traced/compress")
        .expect("traced/compress was measured");
    println!(
        "interp_dispatch: live tracing is {:.3}x the fused prepared run on compress",
        traced / fused
    );
    // Per-opcode profiling must stay within 5% of the untraced fused run
    // on compress — the OpProfile sink is meant to be cheap enough to
    // enable on real experiment runs, not just microbenchmarks. The two
    // variants are timed interleaved and compared by their minima, so CPU
    // frequency drift between separately-measured criterion rows (which
    // can dwarf a 5% budget) cancels out of the ratio.
    let overhead = profiled_overhead();
    println!("interp_dispatch: per-opcode profiling is {overhead:.3}x the fused run on compress");
    assert!(
        overhead <= 1.05,
        "profiled dispatch must be <= 1.05x the untraced fused run on compress, got {overhead:.3}x"
    );
    c.final_summary();
}

/// Minimum-of-interleaved-rounds ratio of the profiled fused run to the
/// untraced fused run on `compress`. Minima over many alternated rounds
/// estimate each variant's noise floor under the same thermal and
/// frequency conditions; medians of rounds measured far apart do not.
fn profiled_overhead() -> f64 {
    let cfg = VmConfig::default();
    let m = module("compress");
    let fused = PreparedModule::prepare_with(&m, &cfg.cost, FuseMode::Fuse);
    // Warm both paths.
    run_prepared(&fused, &cfg).unwrap();
    run_prepared_profiled(&fused, &cfg, &mut OpProfile::new()).unwrap();
    let mut best_plain = f64::INFINITY;
    let mut best_profiled = f64::INFINITY;
    for _ in 0..60 {
        let start = std::time::Instant::now();
        criterion::black_box(run_prepared(&fused, &cfg).unwrap());
        best_plain = best_plain.min(start.elapsed().as_secs_f64());
        let start = std::time::Instant::now();
        let mut profile = OpProfile::new();
        criterion::black_box(run_prepared_profiled(&fused, &cfg, &mut profile).unwrap());
        best_profiled = best_profiled.min(start.elapsed().as_secs_f64());
    }
    best_profiled / best_plain
}
