//! Optimization passes over the IR.
//!
//! Jalapeño compiled everything at O2 before instrumenting (paper §4.1);
//! these passes are the reproduction's optimizer analogue. They are
//! *opt-in*: the experiment harness runs the benchmarks exactly as
//! lowered, and an ablation bench compares instrumenting optimized vs
//! unoptimized code.
//!
//! Provided passes:
//!
//! * [`fold_constants`] — per-block constant folding and copy propagation;
//!   branches on known conditions become jumps, enabling unreachable-code
//!   removal.
//! * [`simplify_cfg`] — jump threading through empty blocks, merging of
//!   single-predecessor/single-successor block pairs, and removal of
//!   unreachable blocks (with renumbering).
//! * [`eliminate_dead_code`] — liveness-driven removal of pure
//!   instructions whose results are never used. Memory operations, calls,
//!   division (may trap) and instrumentation are never removed.
//! * [`optimize`] — the standard bundle, iterated to a fixpoint.

use std::collections::HashMap;

use crate::cfg::{reachable, Predecessors};
use crate::function::Function;
use crate::ids::{BlockId, LocalId};
use crate::inst::{Const, Inst, Term};
use crate::BasicBlock;

/// Applies the full pass bundle until nothing changes (bounded by a small
/// iteration limit).
pub fn optimize(f: &mut Function) {
    for _ in 0..8 {
        let folded = fold_constants(f);
        let simplified = simplify_cfg(f);
        let killed = eliminate_dead_code(f);
        if folded == 0 && simplified == 0 && killed == 0 {
            break;
        }
    }
}

/// Per-block constant folding and copy propagation. Returns the number of
/// rewrites performed.
///
/// Locals are not SSA, so facts are tracked per block with a forward walk
/// and invalidated on reassignment — sound without any global analysis.
pub fn fold_constants(f: &mut Function) -> usize {
    let mut rewrites = 0;
    for b in 0..f.num_blocks() {
        let block = f.block_mut(BlockId::new(b as u32));
        // Known constant value per local, plus copy information.
        let mut consts: HashMap<LocalId, Const> = HashMap::new();
        let mut copies: HashMap<LocalId, LocalId> = HashMap::new();

        // Resolve a local through the copy chain to its root name.
        let resolve = |copies: &HashMap<LocalId, LocalId>, mut l: LocalId| -> LocalId {
            let mut hops = 0;
            while let Some(&src) = copies.get(&l) {
                l = src;
                hops += 1;
                if hops > 64 {
                    break; // defensive: copy chains are short in practice
                }
            }
            l
        };

        let kill = |consts: &mut HashMap<LocalId, Const>,
                    copies: &mut HashMap<LocalId, LocalId>,
                    dst: LocalId| {
            consts.remove(&dst);
            copies.remove(&dst);
            // Anything that was a copy of `dst` no longer is.
            copies.retain(|_, src| *src != dst);
        };

        for inst in block.insts_mut().iter_mut() {
            // First rewrite the instruction's operands/result if possible.
            match inst {
                Inst::Move { dst, src } => {
                    let root = resolve(&copies, *src);
                    if let Some(&c) = consts.get(&root) {
                        *inst = Inst::Const {
                            dst: *dst,
                            value: c,
                        };
                        rewrites += 1;
                        // Re-process as a Const below.
                    } else {
                        let d = *dst;
                        kill(&mut consts, &mut copies, d);
                        if root != d {
                            copies.insert(d, root);
                        }
                        continue;
                    }
                }
                Inst::Bin { op, dst, lhs, rhs } => {
                    let l = resolve(&copies, *lhs);
                    let r = resolve(&copies, *rhs);
                    *lhs = l;
                    *rhs = r;
                    if let (Some(&Const::I64(a)), Some(&Const::I64(b))) =
                        (consts.get(&l), consts.get(&r))
                    {
                        if let Some(v) = fold_bin(*op, a, b) {
                            *inst = Inst::Const {
                                dst: *dst,
                                value: v,
                            };
                            rewrites += 1;
                        }
                    }
                }
                Inst::Un { op, dst, src } => {
                    let s = resolve(&copies, *src);
                    *src = s;
                    match (consts.get(&s), op) {
                        (Some(&Const::I64(a)), crate::inst::UnOp::Neg) => {
                            *inst = Inst::Const {
                                dst: *dst,
                                value: Const::I64(a.wrapping_neg()),
                            };
                            rewrites += 1;
                        }
                        (Some(&Const::Bool(a)), crate::inst::UnOp::Not) => {
                            *inst = Inst::Const {
                                dst: *dst,
                                value: Const::Bool(!a),
                            };
                            rewrites += 1;
                        }
                        _ => {}
                    }
                }
                _ => {}
            }

            // Then update the fact tables from the (possibly rewritten)
            // instruction.
            match inst {
                Inst::Const { dst, value } => {
                    let d = *dst;
                    let v = *value;
                    kill(&mut consts, &mut copies, d);
                    consts.insert(d, v);
                }
                Inst::Move { .. } => unreachable!("moves handled above"),
                Inst::Un { dst, .. }
                | Inst::Bin { dst, .. }
                | Inst::New { dst, .. }
                | Inst::GetField { dst, .. }
                | Inst::NewArray { dst, .. }
                | Inst::ArrayGet { dst, .. }
                | Inst::ArrayLen { dst, .. }
                | Inst::Spawn { dst, .. } => {
                    let d = *dst;
                    kill(&mut consts, &mut copies, d);
                }
                Inst::Call { dst, .. } | Inst::CallMethod { dst, .. } => {
                    if let Some(d) = *dst {
                        kill(&mut consts, &mut copies, d);
                    }
                }
                Inst::SetField { .. }
                | Inst::ArraySet { .. }
                | Inst::Print { .. }
                | Inst::Join { .. }
                | Inst::Yield
                | Inst::Busy { .. }
                | Inst::Instr(_) => {}
            }
        }

        // Branch on a known condition becomes a jump.
        if let Term::Br { cond, t, f: fb } = *block.term() {
            let root = resolve(&copies, cond);
            if let Some(&Const::Bool(v)) = consts.get(&root) {
                block.set_term(Term::Jump(if v { t } else { fb }));
                rewrites += 1;
            }
        }
    }
    rewrites
}

fn fold_bin(op: crate::inst::BinOp, a: i64, b: i64) -> Option<Const> {
    use crate::inst::BinOp::*;
    Some(match op {
        Add => Const::I64(a.wrapping_add(b)),
        Sub => Const::I64(a.wrapping_sub(b)),
        Mul => Const::I64(a.wrapping_mul(b)),
        Div => {
            if b == 0 {
                return None; // keep the trapping instruction
            }
            Const::I64(a.wrapping_div(b))
        }
        Rem => {
            if b == 0 {
                return None;
            }
            Const::I64(a.wrapping_rem(b))
        }
        And => Const::I64(a & b),
        Or => Const::I64(a | b),
        Xor => Const::I64(a ^ b),
        Shl => Const::I64(a.wrapping_shl(b as u32)),
        Shr => Const::I64(a.wrapping_shr(b as u32)),
        Eq => Const::Bool(a == b),
        Ne => Const::Bool(a != b),
        Lt => Const::Bool(a < b),
        Le => Const::Bool(a <= b),
        Gt => Const::Bool(a > b),
        Ge => Const::Bool(a >= b),
    })
}

/// CFG simplification: jump threading through empty forwarding blocks,
/// merging single-entry/single-exit pairs, and unreachable-block removal
/// (with renumbering). Returns the number of changes.
///
/// Never touches `Check` terminators — sampling checks are placed by the
/// framework and must survive optimization.
pub fn simplify_cfg(f: &mut Function) -> usize {
    let mut changes = 0;

    // Jump threading: redirect edges through empty `jump`-only blocks.
    // The entry block is never bypassed (it must stay block 0).
    loop {
        let mut forward: Option<(BlockId, BlockId)> = None;
        for (id, b) in f.blocks() {
            if id == f.entry() || !b.insts().is_empty() {
                continue;
            }
            if let Term::Jump(t) = *b.term() {
                if t != id
                    && f.blocks()
                        .any(|(o, ob)| o != id && ob.successors().contains(&id))
                {
                    forward = Some((id, t));
                    break;
                }
            }
        }
        let Some((hollow, target)) = forward else {
            break;
        };
        let mut retargeted = 0;
        for b in 0..f.num_blocks() {
            let id = BlockId::new(b as u32);
            if id == hollow {
                continue;
            }
            retargeted += f.block_mut(id).term_mut().retarget(hollow, target);
        }
        if retargeted == 0 {
            break;
        }
        changes += retargeted;
    }

    // Merge b -> t when that is t's only incoming edge and b ends in a
    // plain jump.
    loop {
        let preds = Predecessors::compute(f);
        let mut merge: Option<(BlockId, BlockId)> = None;
        for (id, b) in f.blocks() {
            if let Term::Jump(t) = *b.term() {
                if t != id && t != f.entry() && preds.of(t).len() == 1 {
                    merge = Some((id, t));
                    break;
                }
            }
        }
        let Some((b, t)) = merge else { break };
        let absorbed = std::mem::replace(f.block_mut(t), BasicBlock::jump_to(t));
        let target_term = absorbed.term().clone();
        let mut absorbed_insts = absorbed.insts().to_vec();
        let merged = f.block_mut(b);
        merged.insts_mut().append(&mut absorbed_insts);
        merged.set_term(target_term);
        // `t` is now an unreachable self-loop; the removal step collects it.
        changes += 1;
    }

    // Unreachable-block removal with renumbering (entry keeps index 0).
    let live = reachable(f);
    if live.iter().any(|&r| !r) {
        let mut remap: Vec<Option<BlockId>> = vec![None; f.num_blocks()];
        let mut kept: Vec<BasicBlock> = Vec::new();
        for (i, is_live) in live.iter().enumerate() {
            if *is_live {
                remap[i] = Some(BlockId::new(kept.len() as u32));
                kept.push(f.block(BlockId::new(i as u32)).clone());
            }
        }
        // Remap all successor slots simultaneously: sequential
        // `retarget` calls would collide when one block's new index
        // equals another block's old index.
        for b in &mut kept {
            let map = |slot: &mut BlockId| {
                *slot = remap[slot.index()].expect("live blocks only target live blocks");
            };
            match b.term_mut() {
                Term::Jump(t) => map(t),
                Term::Br { t, f, .. } => {
                    map(t);
                    map(f);
                }
                Term::Ret(_) => {}
                Term::Check { sample, cont } => {
                    map(sample);
                    map(cont);
                }
            }
        }
        changes += f.num_blocks() - kept.len();
        *f = Function::new(
            f.name().to_owned(),
            f.arity(),
            f.num_locals(),
            kept,
            f.num_call_sites(),
        );
    }
    changes
}

/// Liveness-driven dead-code elimination. Removes only side-effect-free
/// instructions (constants, moves, pure arithmetic, array length) whose
/// destination is dead. Returns the number of instructions removed.
pub fn eliminate_dead_code(f: &mut Function) -> usize {
    let nb = f.num_blocks();
    let nl = f.num_locals();

    // use/def summaries per block (upward-exposed uses).
    let mut gen_sets: Vec<Vec<bool>> = Vec::with_capacity(nb);
    let mut kill_sets: Vec<Vec<bool>> = Vec::with_capacity(nb);
    for (_, b) in f.blocks() {
        let mut gen = vec![false; nl];
        let mut kill = vec![false; nl];
        let use_local = |l: LocalId, kill: &[bool], gen: &mut [bool]| {
            if !kill[l.index()] {
                gen[l.index()] = true;
            }
        };
        for inst in b.insts() {
            for l in inst_uses(inst) {
                use_local(l, &kill, &mut gen);
            }
            if let Some(d) = inst_def(inst) {
                kill[d.index()] = true;
            }
        }
        for l in term_uses(b.term()) {
            use_local(l, &kill, &mut gen);
        }
        gen_sets.push(gen);
        kill_sets.push(kill);
    }

    // live-out fixpoint.
    let mut live_out: Vec<Vec<bool>> = vec![vec![false; nl]; nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nb).rev() {
            let id = BlockId::new(b as u32);
            let mut out = vec![false; nl];
            for s in f.block(id).successors() {
                let si = s.index();
                for l in 0..nl {
                    // live-in(s) = gen(s) | (out(s) & !kill(s))
                    if gen_sets[si][l] || (live_out[si][l] && !kill_sets[si][l]) {
                        out[l] = true;
                    }
                }
            }
            if out != live_out[b] {
                live_out[b] = out;
                changed = true;
            }
        }
    }

    // Backward sweep per block, deleting pure dead instructions.
    let mut removed = 0;
    for (b, block_live_out) in live_out.iter().enumerate() {
        let id = BlockId::new(b as u32);
        let mut live = block_live_out.clone();
        for l in term_uses(f.block(id).term()) {
            live[l.index()] = true;
        }
        let insts = f.block_mut(id).insts_mut();
        let mut keep: Vec<bool> = vec![true; insts.len()];
        for (i, inst) in insts.iter().enumerate().rev() {
            let dead_dst = inst_def(inst).map(|d| !live[d.index()]).unwrap_or(false);
            if dead_dst && is_pure(inst) {
                keep[i] = false;
                removed += 1;
                continue; // uses of a removed instruction stay dead
            }
            if let Some(d) = inst_def(inst) {
                live[d.index()] = false;
            }
            for l in inst_uses(inst) {
                live[l.index()] = true;
            }
        }
        let mut it = keep.iter();
        insts.retain(|_| *it.next().expect("keep mask covers all instructions"));
    }
    removed
}

fn is_pure(inst: &Inst) -> bool {
    match inst {
        Inst::Const { .. } | Inst::Move { .. } | Inst::Un { .. } | Inst::ArrayLen { .. } => true,
        // Division can trap; everything else observes or mutates state.
        Inst::Bin { op, .. } => !matches!(op, crate::inst::BinOp::Div | crate::inst::BinOp::Rem),
        _ => false,
    }
}

fn inst_def(inst: &Inst) -> Option<LocalId> {
    match inst {
        Inst::Const { dst, .. }
        | Inst::Move { dst, .. }
        | Inst::Un { dst, .. }
        | Inst::Bin { dst, .. }
        | Inst::New { dst, .. }
        | Inst::GetField { dst, .. }
        | Inst::NewArray { dst, .. }
        | Inst::ArrayGet { dst, .. }
        | Inst::ArrayLen { dst, .. }
        | Inst::Spawn { dst, .. } => Some(*dst),
        Inst::Call { dst, .. } | Inst::CallMethod { dst, .. } => *dst,
        _ => None,
    }
}

fn inst_uses(inst: &Inst) -> Vec<LocalId> {
    match inst {
        Inst::Const { .. } | Inst::Yield | Inst::Busy { .. } => vec![],
        Inst::Move { src, .. } | Inst::Un { src, .. } => vec![*src],
        Inst::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
        Inst::New { .. } => vec![],
        Inst::GetField { obj, .. } => vec![*obj],
        Inst::SetField { obj, src, .. } => vec![*obj, *src],
        Inst::NewArray { len, .. } => vec![*len],
        Inst::ArrayGet { arr, idx, .. } => vec![*arr, *idx],
        Inst::ArraySet { arr, idx, src } => vec![*arr, *idx, *src],
        Inst::ArrayLen { arr, .. } => vec![*arr],
        Inst::Call { args, .. } => args.clone(),
        Inst::CallMethod { obj, args, .. } => {
            let mut v = vec![*obj];
            v.extend(args);
            v
        }
        Inst::Print { src } => vec![*src],
        Inst::Spawn { args, .. } => args.clone(),
        Inst::Join { thread } => vec![*thread],
        Inst::Instr(op) => match op {
            crate::inst::InstrOp::FieldAccess { obj, .. } => vec![*obj],
            crate::inst::InstrOp::ValueProfile { local, .. } => vec![*local],
            _ => vec![],
        },
    }
}

fn term_uses(term: &Term) -> Vec<LocalId> {
    match term {
        Term::Br { cond, .. } => vec![*cond],
        Term::Ret(Some(v)) => vec![*v],
        _ => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;

    fn two_plus_three() -> Function {
        let mut fb = FunctionBuilder::new("f", 0);
        let a = fb.new_local();
        let b = fb.new_local();
        let c = fb.new_local();
        fb.push(Inst::Const {
            dst: a,
            value: Const::I64(2),
        });
        fb.push(Inst::Const {
            dst: b,
            value: Const::I64(3),
        });
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: c,
            lhs: a,
            rhs: b,
        });
        fb.terminate(Term::Ret(Some(c)));
        fb.finish()
    }

    #[test]
    fn folds_constant_arithmetic() {
        let mut f = two_plus_three();
        assert!(fold_constants(&mut f) > 0);
        let last = f.block(f.entry()).insts().last().unwrap();
        assert_eq!(
            *last,
            Inst::Const {
                dst: LocalId::new(2),
                value: Const::I64(5)
            }
        );
    }

    #[test]
    fn optimize_shrinks_and_preserves_verification() {
        let mut f = two_plus_three();
        let before = f.num_insts();
        optimize(&mut f);
        assert!(f.num_insts() <= before);
        crate::verify::verify_function(&f, None).unwrap();
        // The returned value must still be computed.
        assert!(f
            .block(f.entry())
            .insts()
            .iter()
            .any(|i| inst_def(i) == Some(LocalId::new(2))));
    }

    #[test]
    fn known_branch_becomes_jump_and_dead_arm_is_removed() {
        let mut fb = FunctionBuilder::new("g", 0);
        let c = fb.new_local();
        let t = fb.new_block();
        let e = fb.new_block();
        fb.push(Inst::Const {
            dst: c,
            value: Const::Bool(true),
        });
        fb.terminate(Term::Br { cond: c, t, f: e });
        fb.switch_to(t);
        fb.terminate(Term::Ret(None));
        fb.switch_to(e);
        fb.push(Inst::Yield);
        fb.terminate(Term::Ret(None));
        let mut f = fb.finish();
        optimize(&mut f);
        crate::verify::verify_function(&f, None).unwrap();
        // The false arm disappears entirely.
        assert!(f
            .blocks()
            .all(|(_, b)| !b.insts().iter().any(Inst::is_yield)));
        assert!(f.num_blocks() <= 2);
    }

    #[test]
    fn dead_pure_code_removed_but_effects_kept() {
        let mut fb = FunctionBuilder::new("h", 1);
        let dead = fb.new_local();
        let printed = fb.new_local();
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: dead,
            lhs: fb.param(0),
            rhs: fb.param(0),
        });
        fb.push(Inst::Const {
            dst: printed,
            value: Const::I64(9),
        });
        fb.push(Inst::Print { src: printed });
        fb.terminate(Term::Ret(None));
        let mut f = fb.finish();
        let removed = eliminate_dead_code(&mut f);
        assert_eq!(removed, 1, "only the unused add is dead");
        assert!(f
            .block(f.entry())
            .insts()
            .iter()
            .any(|i| matches!(i, Inst::Print { .. })));
    }

    #[test]
    fn division_is_never_removed() {
        let mut fb = FunctionBuilder::new("d", 2);
        let q = fb.new_local();
        fb.push(Inst::Bin {
            op: BinOp::Div,
            dst: q,
            lhs: fb.param(0),
            rhs: fb.param(1), // possibly zero: must keep the trap
        });
        fb.terminate(Term::Ret(None));
        let mut f = fb.finish();
        assert_eq!(eliminate_dead_code(&mut f), 0);
        assert_eq!(f.num_insts(), 1);
    }

    #[test]
    fn copy_propagation_threads_through_moves() {
        let mut fb = FunctionBuilder::new("m", 0);
        let a = fb.new_local();
        let b = fb.new_local();
        let c = fb.new_local();
        fb.push(Inst::Const {
            dst: a,
            value: Const::I64(7),
        });
        fb.push(Inst::Move { dst: b, src: a });
        fb.push(Inst::Bin {
            op: BinOp::Mul,
            dst: c,
            lhs: b,
            rhs: b,
        });
        fb.terminate(Term::Ret(Some(c)));
        let mut f = fb.finish();
        fold_constants(&mut f);
        let last = f.block(f.entry()).insts().last().unwrap();
        assert_eq!(
            *last,
            Inst::Const {
                dst: LocalId::new(2),
                value: Const::I64(49)
            }
        );
    }

    #[test]
    fn renumbering_does_not_collide_block_names() {
        // Regression: a branch `br ? bb8 : bb6` where unreachable-block
        // removal renames bb8 -> bb6 and bb6 -> bb4 must not collapse both
        // arms onto one target (sequential retargeting did exactly that).
        let mut fb = FunctionBuilder::new("r", 1);
        let dead = fb.new_block(); // becomes unreachable after folding
        let header = fb.new_block();
        let exit = fb.new_block();
        let body = fb.new_block();
        let c = fb.new_local();
        fb.push(Inst::Const {
            dst: c,
            value: Const::Bool(false),
        });
        fb.terminate(Term::Br {
            cond: c,
            t: dead,
            f: header,
        });
        fb.switch_to(dead);
        fb.push(Inst::Print {
            src: LocalId::new(0),
        });
        fb.terminate(Term::Jump(header));
        fb.switch_to(header);
        fb.terminate(Term::Br {
            cond: LocalId::new(0),
            t: body,
            f: exit,
        });
        fb.switch_to(body);
        fb.push(Inst::Yield);
        fb.terminate(Term::Jump(header));
        fb.switch_to(exit);
        fb.terminate(Term::Ret(None));
        let mut f = fb.finish();
        optimize(&mut f);
        crate::verify::verify_function(&f, None).unwrap();
        // The loop must survive: some branch must still have two distinct
        // targets.
        let has_real_branch = f.blocks().any(|(_, b)| match b.term() {
            Term::Br { t, f: fa, .. } => t != fa,
            _ => false,
        });
        assert!(has_real_branch, "loop branch collapsed:\n{f}");
    }

    #[test]
    fn check_terminators_survive_simplification() {
        let mut fb = FunctionBuilder::new("s", 0);
        let sample = fb.new_block();
        let cont = fb.new_block();
        fb.terminate(Term::Check { sample, cont });
        fb.switch_to(sample);
        fb.push(Inst::Instr(crate::inst::InstrOp::CallEdge));
        fb.terminate(Term::Jump(cont));
        fb.switch_to(cont);
        fb.terminate(Term::Ret(None));
        let mut f = fb.finish();
        optimize(&mut f);
        assert!(
            f.blocks().any(|(_, b)| b.term().is_check()),
            "sampling checks must survive optimization"
        );
        assert_eq!(f.instrumentation_count(), 1);
    }
}
