//! Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

use crate::cfg::{reverse_postorder, Predecessors};
use crate::function::Function;
use crate::ids::BlockId;

/// The dominator tree of a function's reachable blocks.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator per block; entry maps to itself; unreachable
    /// blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    /// Position in reverse postorder, used for intersection; `usize::MAX`
    /// for unreachable blocks.
    rpo_pos: Vec<usize>,
    entry: BlockId,
}

impl DomTree {
    /// Computes the dominator tree of `f`.
    pub fn compute(f: &Function) -> Self {
        let rpo = reverse_postorder(f);
        let preds = Predecessors::compute(f);
        let mut rpo_pos = vec![usize::MAX; f.num_blocks()];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }
        let entry = f.entry();
        let mut idom: Vec<Option<BlockId>> = vec![None; f.num_blocks()];
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], rpo_pos: &[usize], a: BlockId, b: BlockId| {
            let (mut x, mut y) = (a, b);
            while x != y {
                while rpo_pos[x.index()] > rpo_pos[y.index()] {
                    x = idom[x.index()].expect("processed block");
                }
                while rpo_pos[y.index()] > rpo_pos[x.index()] {
                    y = idom[y.index()].expect("processed block");
                }
            }
            x
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in preds.of(b) {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable predecessor
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_pos, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        Self {
            idom,
            rpo_pos,
            entry,
        }
    }

    /// The immediate dominator of `b`, or `None` for the entry and
    /// unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            return None;
        }
        self.idom[b.index()]
    }

    /// Returns `true` if `a` dominates `b` (reflexively). Unreachable blocks
    /// dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_pos[a.index()] == usize::MAX || self.rpo_pos[b.index()] == usize::MAX {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = match self.idom[cur.index()] {
                Some(d) => d,
                None => return false,
            };
        }
    }

    /// Returns `true` if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_pos[b.index()] != usize::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BasicBlock;
    use crate::ids::LocalId;
    use crate::inst::Term;

    fn br(t: u32, f: u32) -> Term {
        Term::Br {
            cond: LocalId::new(0),
            t: BlockId::new(t),
            f: BlockId::new(f),
        }
    }

    /// Classic diamond: 0 -> {1,2} -> 3.
    fn diamond() -> Function {
        let blocks = vec![
            BasicBlock::new(vec![], br(1, 2)),
            BasicBlock::jump_to(BlockId::new(3)),
            BasicBlock::jump_to(BlockId::new(3)),
            BasicBlock::new(vec![], Term::Ret(None)),
        ];
        Function::new("diamond", 1, 1, blocks, 0)
    }

    #[test]
    fn diamond_idoms() {
        let f = diamond();
        let d = DomTree::compute(&f);
        assert_eq!(d.idom(BlockId::new(0)), None);
        assert_eq!(d.idom(BlockId::new(1)), Some(BlockId::new(0)));
        assert_eq!(d.idom(BlockId::new(2)), Some(BlockId::new(0)));
        // The join is dominated by the fork, not by either arm.
        assert_eq!(d.idom(BlockId::new(3)), Some(BlockId::new(0)));
        assert!(d.dominates(BlockId::new(0), BlockId::new(3)));
        assert!(!d.dominates(BlockId::new(1), BlockId::new(3)));
        assert!(d.dominates(BlockId::new(3), BlockId::new(3)));
    }

    #[test]
    fn loop_header_dominates_body() {
        // 0 -> 1(header) -> 2(body) -> 1 ; 1 -> 3(exit)
        let blocks = vec![
            BasicBlock::jump_to(BlockId::new(1)),
            BasicBlock::new(vec![], br(2, 3)),
            BasicBlock::jump_to(BlockId::new(1)),
            BasicBlock::new(vec![], Term::Ret(None)),
        ];
        let f = Function::new("loop", 1, 1, blocks, 0);
        let d = DomTree::compute(&f);
        assert!(d.dominates(BlockId::new(1), BlockId::new(2)));
        assert_eq!(d.idom(BlockId::new(3)), Some(BlockId::new(1)));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let blocks = vec![
            BasicBlock::new(vec![], Term::Ret(None)),
            BasicBlock::new(vec![], Term::Ret(None)),
        ];
        let f = Function::new("dead", 0, 0, blocks, 0);
        let d = DomTree::compute(&f);
        assert_eq!(d.idom(BlockId::new(1)), None);
        assert!(!d.is_reachable(BlockId::new(1)));
        assert!(!d.dominates(BlockId::new(0), BlockId::new(1)));
    }
}
