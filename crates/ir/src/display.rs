//! Textual IR dumps for debugging and golden tests.

use std::fmt;

use crate::function::Function;
use crate::inst::{Inst, Term};
use crate::module::Module;

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fn {}({} params, {} locals) {{",
            self.name(),
            self.arity(),
            self.num_locals()
        )?;
        for (id, b) in self.blocks() {
            writeln!(f, "{id}:")?;
            for inst in b.insts() {
                writeln!(f, "    {}", InstDisplay(inst))?;
            }
            writeln!(f, "    {}", TermDisplay(b.term()))?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, c) in self.classes() {
            write!(f, "class {} /* {id} */", c.name())?;
            if let Some(p) = c.parent() {
                write!(f, " : {}", self.class(p).name())?;
            }
            writeln!(
                f,
                " {{ {} fields, {} methods }}",
                c.num_fields(),
                c.methods().count()
            )?;
        }
        for (id, func) in self.functions() {
            writeln!(
                f,
                "// {id}{}",
                if id == self.main() { " (main)" } else { "" }
            )?;
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

struct InstDisplay<'a>(&'a Inst);

impl fmt::Display for InstDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Inst::Const { dst, value } => match value {
                crate::inst::Const::I64(v) => write!(f, "{dst} = const {v}"),
                crate::inst::Const::Bool(b) => write!(f, "{dst} = const {b}"),
                crate::inst::Const::Null => write!(f, "{dst} = const null"),
            },
            Inst::Move { dst, src } => write!(f, "{dst} = {src}"),
            Inst::Un { op, dst, src } => write!(f, "{dst} = {} {src}", un_mnemonic(*op)),
            Inst::Bin { op, dst, lhs, rhs } => {
                write!(f, "{dst} = {} {lhs}, {rhs}", bin_mnemonic(*op))
            }
            Inst::New { dst, class } => write!(f, "{dst} = new {class}"),
            Inst::GetField { dst, obj, field } => write!(f, "{dst} = {obj}.{field}"),
            Inst::SetField { obj, field, src } => write!(f, "{obj}.{field} = {src}"),
            Inst::NewArray { dst, len } => write!(f, "{dst} = new_array {len}"),
            Inst::ArrayGet { dst, arr, idx } => write!(f, "{dst} = {arr}[{idx}]"),
            Inst::ArraySet { arr, idx, src } => write!(f, "{arr}[{idx}] = {src}"),
            Inst::ArrayLen { dst, arr } => write!(f, "{dst} = len {arr}"),
            Inst::Call {
                dst,
                callee,
                args,
                site,
            } => {
                if let Some(d) = dst {
                    write!(f, "{d} = ")?;
                }
                write!(f, "call {callee}({}) @{site}", Args(args))
            }
            Inst::CallMethod {
                dst,
                obj,
                method,
                args,
                site,
            } => {
                if let Some(d) = dst {
                    write!(f, "{d} = ")?;
                }
                write!(f, "callmethod {obj}.{method}({}) @{site}", Args(args))
            }
            Inst::Print { src } => write!(f, "print {src}"),
            Inst::Spawn { dst, callee, args } => {
                write!(f, "{dst} = spawn {callee}({})", Args(args))
            }
            Inst::Join { thread } => write!(f, "join {thread}"),
            Inst::Yield => write!(f, "yieldpoint"),
            Inst::Busy { cycles } => write!(f, "busy {cycles}"),
            Inst::Instr(op) => match op {
                crate::inst::InstrOp::CallEdge => write!(f, "instr call_edge"),
                crate::inst::InstrOp::FieldAccess { obj, field, write } => write!(
                    f,
                    "instr field_access {} {obj}.{field}",
                    if *write { "write" } else { "read" }
                ),
                crate::inst::InstrOp::BlockCount { block } => {
                    write!(f, "instr block_count {block}")
                }
                crate::inst::InstrOp::EdgeCount { from, to } => {
                    write!(f, "instr edge_count {from} -> {to}")
                }
                crate::inst::InstrOp::ValueProfile { local, site } => {
                    write!(f, "instr value_profile {local} @{site}")
                }
                crate::inst::InstrOp::PathStart { value } => {
                    write!(f, "instr path_start {value}")
                }
                crate::inst::InstrOp::PathIncr { delta } => {
                    write!(f, "instr path_incr {delta}")
                }
                crate::inst::InstrOp::PathEnd { site } => write!(f, "instr path_end @{site}"),
            },
        }
    }
}

/// The textual mnemonic of a binary operator (shared with the parser).
pub(crate) fn bin_mnemonic(op: crate::inst::BinOp) -> &'static str {
    use crate::inst::BinOp::*;
    match op {
        Add => "add",
        Sub => "sub",
        Mul => "mul",
        Div => "div",
        Rem => "rem",
        And => "and",
        Or => "or",
        Xor => "xor",
        Shl => "shl",
        Shr => "shr",
        Eq => "eq",
        Ne => "ne",
        Lt => "lt",
        Le => "le",
        Gt => "gt",
        Ge => "ge",
    }
}

/// The textual mnemonic of a unary operator (shared with the parser).
pub(crate) fn un_mnemonic(op: crate::inst::UnOp) -> &'static str {
    match op {
        crate::inst::UnOp::Neg => "neg",
        crate::inst::UnOp::Not => "not",
    }
}

struct TermDisplay<'a>(&'a Term);

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Term::Jump(b) => write!(f, "jump {b}"),
            Term::Br { cond, t, f: fb } => write!(f, "br {cond} ? {t} : {fb}"),
            Term::Ret(Some(v)) => write!(f, "ret {v}"),
            Term::Ret(None) => write!(f, "ret"),
            Term::Check { sample, cont } => write!(f, "check ? {sample} : {cont}"),
        }
    }
}

struct Args<'a>(&'a [crate::ids::LocalId]);

impl fmt::Display for Args<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::ids::LocalId;
    use crate::inst::{BinOp, Const, Inst, Term};

    #[test]
    fn function_dump_contains_blocks_and_insts() {
        let mut fb = FunctionBuilder::new("f", 1);
        let d = fb.new_local();
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: d,
            lhs: LocalId::new(0),
            rhs: LocalId::new(0),
        });
        fb.push(Inst::Const {
            dst: d,
            value: Const::I64(3),
        });
        fb.terminate(Term::Ret(Some(d)));
        let text = fb.finish().to_string();
        assert!(text.contains("fn f(1 params"));
        assert!(text.contains("bb0:"));
        assert!(text.contains("%1 = add %0, %0"));
        assert!(text.contains("ret %1"));
    }

    #[test]
    fn check_terminator_renders() {
        let mut fb = FunctionBuilder::new("g", 0);
        let b1 = fb.new_block();
        let b2 = fb.new_block();
        fb.terminate(Term::Check {
            sample: b1,
            cont: b2,
        });
        fb.switch_to(b1);
        fb.terminate(Term::Ret(None));
        fb.switch_to(b2);
        fb.terminate(Term::Ret(None));
        let text = fb.finish().to_string();
        assert!(text.contains("check ? bb1 : bb2"));
    }
}
