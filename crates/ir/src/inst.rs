//! Instructions, terminators and instrumentation operations.

use crate::ids::{BlockId, CallSiteId, ClassId, FieldSym, FuncId, LocalId, MethodSym};

/// A compile-time constant.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Const {
    /// A 64-bit signed integer.
    I64(i64),
    /// A boolean.
    Bool(bool),
    /// The null reference.
    Null,
}

/// A unary operator.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Arithmetic negation of an integer.
    Neg,
    /// Logical negation of a boolean.
    Not,
}

/// A binary operator.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Integer division; division by zero traps.
    Div,
    /// Integer remainder; division by zero traps.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (modulo 64).
    Shl,
    /// Arithmetic right shift (modulo 64).
    Shr,
    /// Equality on any pair of values of the same kind.
    Eq,
    /// Inequality.
    Ne,
    /// Signed less-than on integers.
    Lt,
    /// Signed less-or-equal on integers.
    Le,
    /// Signed greater-than on integers.
    Gt,
    /// Signed greater-or-equal on integers.
    Ge,
}

impl BinOp {
    /// Returns `true` for the comparison operators, whose result is a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// An *instrumentation operation*: the unit of profiling work that the
/// sampling framework duplicates, guards and samples.
///
/// Keys stored inside an operation (call sites, fields, block/edge ids)
/// always refer to the **original** (pre-transformation) program, so the
/// profiles produced by exhaustive and sampled runs share one key space —
/// a prerequisite of the paper's overlap-percentage accuracy metric (§4.4).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum InstrOp {
    /// The paper's first example (§4.2): placed at a method entry, examines
    /// the call stack and increments a counter for the
    /// (caller, call-site, callee) triple. Deliberately expensive.
    CallEdge,
    /// The paper's second example (§4.2): placed next to a `GetField`or
    /// `SetField`, increments a per-(receiver class, field) counter.
    /// `write` distinguishes `put_field` from `get_field`.
    FieldAccess {
        /// Register holding the receiver object.
        obj: LocalId,
        /// The accessed field.
        field: FieldSym,
        /// `true` for a field store.
        write: bool,
    },
    /// Basic-block execution counting, keyed by the original block.
    BlockCount {
        /// The original block this operation was attached to.
        block: BlockId,
    },
    /// Intraprocedural edge profiling (Ball–Larus-style event counting),
    /// keyed by the original CFG edge. The paper notes backedge events are
    /// attached to the duplicated-to-checking transfer edge (§2).
    EdgeCount {
        /// Source block of the original edge.
        from: BlockId,
        /// Target block of the original edge.
        to: BlockId,
    },
    /// Value profiling of a register at a numbered site (Calder et al. \[16\],
    /// one of the offline techniques the paper aims to make affordable
    /// online).
    ValueProfile {
        /// Register whose runtime value is recorded.
        local: LocalId,
        /// Profiling site identifier (unique per function).
        site: u32,
    },
    /// Ball–Larus path profiling: reset the frame's path register to the
    /// start value of the path family beginning here (function entry or
    /// loop header).
    PathStart {
        /// Initial path-register value for this start node.
        value: u32,
    },
    /// Ball–Larus path profiling: add an edge increment to the frame's
    /// path register.
    PathIncr {
        /// The edge's Ball–Larus increment.
        delta: u32,
    },
    /// Ball–Larus path profiling: record the accumulated path id at a path
    /// end (loop backedge or function return) and invalidate the register
    /// until the next [`InstrOp::PathStart`].
    PathEnd {
        /// Path-end site identifier (unique per function).
        site: u32,
    },
}

impl InstrOp {
    /// A short human-readable tag used in textual IR dumps.
    pub fn tag(&self) -> &'static str {
        match self {
            InstrOp::CallEdge => "call_edge",
            InstrOp::FieldAccess { .. } => "field_access",
            InstrOp::BlockCount { .. } => "block_count",
            InstrOp::EdgeCount { .. } => "edge_count",
            InstrOp::ValueProfile { .. } => "value_profile",
            InstrOp::PathStart { .. } => "path_start",
            InstrOp::PathIncr { .. } => "path_incr",
            InstrOp::PathEnd { .. } => "path_end",
        }
    }
}

/// A non-terminating instruction.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// `dst = value`.
    Const {
        /// Destination register.
        dst: LocalId,
        /// The constant.
        value: Const,
    },
    /// `dst = src`.
    Move {
        /// Destination register.
        dst: LocalId,
        /// Source register.
        src: LocalId,
    },
    /// `dst = op src`.
    Un {
        /// The operator.
        op: UnOp,
        /// Destination register.
        dst: LocalId,
        /// Operand register.
        src: LocalId,
    },
    /// `dst = lhs op rhs`.
    Bin {
        /// The operator.
        op: BinOp,
        /// Destination register.
        dst: LocalId,
        /// Left operand.
        lhs: LocalId,
        /// Right operand.
        rhs: LocalId,
    },
    /// Allocates a new instance of `class` with all fields zeroed.
    New {
        /// Destination register.
        dst: LocalId,
        /// Class to instantiate.
        class: ClassId,
    },
    /// `dst = obj.field` (the analogue of `get_field`).
    GetField {
        /// Destination register.
        dst: LocalId,
        /// Receiver object.
        obj: LocalId,
        /// Field symbol, resolved against the receiver's class at runtime.
        field: FieldSym,
    },
    /// `obj.field = src` (the analogue of `put_field`).
    SetField {
        /// Receiver object.
        obj: LocalId,
        /// Field symbol.
        field: FieldSym,
        /// Value stored.
        src: LocalId,
    },
    /// Allocates an integer array of length `len`, zero-filled.
    NewArray {
        /// Destination register.
        dst: LocalId,
        /// Register holding the requested length.
        len: LocalId,
    },
    /// `dst = arr[idx]`; out-of-bounds traps.
    ArrayGet {
        /// Destination register.
        dst: LocalId,
        /// Array reference.
        arr: LocalId,
        /// Index register.
        idx: LocalId,
    },
    /// `arr[idx] = src`; out-of-bounds traps.
    ArraySet {
        /// Array reference.
        arr: LocalId,
        /// Index register.
        idx: LocalId,
        /// Value stored.
        src: LocalId,
    },
    /// `dst = arr.length`.
    ArrayLen {
        /// Destination register.
        dst: LocalId,
        /// Array reference.
        arr: LocalId,
    },
    /// Direct call of a module function.
    Call {
        /// Register receiving the return value, if used.
        dst: Option<LocalId>,
        /// The callee.
        callee: FuncId,
        /// Argument registers, copied into the callee's parameter locals.
        args: Vec<LocalId>,
        /// Call-site identifier (bytecode-offset analogue).
        site: CallSiteId,
    },
    /// Dynamically dispatched method call: the callee is looked up by
    /// `method` in the runtime class of `obj` (single inheritance).
    /// The receiver is passed as parameter 0.
    CallMethod {
        /// Register receiving the return value, if used.
        dst: Option<LocalId>,
        /// Receiver object.
        obj: LocalId,
        /// Method symbol resolved at runtime.
        method: MethodSym,
        /// Argument registers (excluding the receiver).
        args: Vec<LocalId>,
        /// Call-site identifier.
        site: CallSiteId,
    },
    /// Prints the value of a register followed by a newline to the VM's
    /// output buffer (used to check semantic equivalence of transformed
    /// code).
    Print {
        /// Register to print.
        src: LocalId,
    },
    /// Spawns a green thread running `callee(args)`; `dst` receives a
    /// thread handle.
    Spawn {
        /// Register receiving the thread handle.
        dst: LocalId,
        /// Thread entry function.
        callee: FuncId,
        /// Argument registers.
        args: Vec<LocalId>,
    },
    /// Blocks (cooperatively) until the thread held in `thread` terminates.
    Join {
        /// Register holding a thread handle.
        thread: LocalId,
    },
    /// A *yieldpoint* (paper §4.5): checks the scheduler's threadswitch bit
    /// and yields to the scheduler when set. The lowering pass places one on
    /// every method entry and backedge, exactly as Jalapeño does; the
    /// Jalapeño-specific sampling variant moves them into duplicated code.
    Yield,
    /// Simulates a long-latency operation (I/O, allocation burst) costing
    /// `cycles` on the simulated clock. Exists to reproduce the paper's
    /// timer-trigger mis-attribution pathology (§2.1, §4.6).
    Busy {
        /// Simulated cycle cost.
        cycles: u32,
    },
    /// An instrumentation operation. Inserted by `isf-instr`, relocated and
    /// guarded by the transforms in `isf-core`, executed by the profiling
    /// runtime in `isf-exec`.
    Instr(InstrOp),
}

impl Inst {
    /// Returns `true` if this is an instrumentation operation.
    pub fn is_instrumentation(&self) -> bool {
        matches!(self, Inst::Instr(_))
    }

    /// Returns `true` if this is a yieldpoint.
    pub fn is_yield(&self) -> bool {
        matches!(self, Inst::Yield)
    }
}

/// A block terminator. Every block has exactly one.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch on a boolean register.
    Br {
        /// Condition register.
        cond: LocalId,
        /// Target when true.
        t: BlockId,
        /// Target when false.
        f: BlockId,
    },
    /// Function return, with an optional value (absent means unit).
    Ret(Option<LocalId>),
    /// A counter-based check (paper Figure 3): asks the trigger whether the
    /// sample condition is true. If so control continues at `sample`
    /// (duplicated / instrumented code); otherwise at `cont`.
    ///
    /// The trigger bookkeeping (decrement, reset) is performed by the
    /// execution engine so that *all* checks in the program share one
    /// global counter, distributing samples across every sample point
    /// proportionally to execution frequency (§2.2).
    Check {
        /// Target when the sample condition is true.
        sample: BlockId,
        /// Target when the sample condition is false (the common case).
        cont: BlockId,
    },
}

impl Term {
    /// Successor blocks in branch order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Jump(b) => vec![*b],
            Term::Br { t, f, .. } => vec![*t, *f],
            Term::Ret(_) => vec![],
            Term::Check { sample, cont } => vec![*sample, *cont],
        }
    }

    /// Rewrites every successor equal to `from` into `to`. Returns how many
    /// edges were retargeted.
    pub fn retarget(&mut self, from: BlockId, to: BlockId) -> usize {
        let mut n = 0;
        let mut fix = |b: &mut BlockId| {
            if *b == from {
                *b = to;
                n += 1;
            }
        };
        match self {
            Term::Jump(b) => fix(b),
            Term::Br { t, f, .. } => {
                fix(t);
                fix(f);
            }
            Term::Ret(_) => {}
            Term::Check { sample, cont } => {
                fix(sample);
                fix(cont);
            }
        }
        n
    }

    /// Returns `true` for [`Term::Check`].
    pub fn is_check(&self) -> bool {
        matches!(self, Term::Check { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successors_in_branch_order() {
        let t = Term::Br {
            cond: LocalId::new(0),
            t: BlockId::new(1),
            f: BlockId::new(2),
        };
        assert_eq!(t.successors(), vec![BlockId::new(1), BlockId::new(2)]);
        assert_eq!(Term::Ret(None).successors(), vec![]);
    }

    #[test]
    fn retarget_rewrites_all_matching_edges() {
        let mut t = Term::Br {
            cond: LocalId::new(0),
            t: BlockId::new(3),
            f: BlockId::new(3),
        };
        assert_eq!(t.retarget(BlockId::new(3), BlockId::new(9)), 2);
        assert_eq!(t.successors(), vec![BlockId::new(9), BlockId::new(9)]);
        assert_eq!(t.retarget(BlockId::new(3), BlockId::new(1)), 0);
    }

    #[test]
    fn check_terminator_identified() {
        let t = Term::Check {
            sample: BlockId::new(1),
            cont: BlockId::new(2),
        };
        assert!(t.is_check());
        assert!(!Term::Jump(BlockId::new(0)).is_check());
    }

    #[test]
    fn instr_op_classification() {
        assert!(Inst::Instr(InstrOp::CallEdge).is_instrumentation());
        assert!(!Inst::Yield.is_instrumentation());
        assert!(Inst::Yield.is_yield());
        assert_eq!(InstrOp::CallEdge.tag(), "call_edge");
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }
}
