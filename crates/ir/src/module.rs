//! Modules: the unit of compilation and execution.

use std::collections::HashMap;

use crate::function::Function;
use crate::ids::{ClassId, FieldSym, FuncId, MethodSym};

/// A class declaration with single inheritance.
///
/// Layout and method tables are *flattened*: they include everything
/// inherited from ancestors, so the runtime never walks the superclass
/// chain.
#[derive(Clone, Debug)]
pub struct Class {
    name: String,
    parent: Option<ClassId>,
    /// Flattened field layout, ancestors first, in declaration order.
    layout: Vec<FieldSym>,
    /// Field symbol to slot index in an instance.
    offsets: HashMap<FieldSym, usize>,
    /// Flattened dispatch table: method symbol to implementing function.
    methods: HashMap<MethodSym, FuncId>,
}

impl Class {
    /// The class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The direct superclass, if any.
    pub fn parent(&self) -> Option<ClassId> {
        self.parent
    }

    /// Number of field slots in an instance (including inherited fields).
    pub fn num_fields(&self) -> usize {
        self.layout.len()
    }

    /// Flattened field layout, ancestors first.
    pub fn layout(&self) -> &[FieldSym] {
        &self.layout
    }

    /// Slot index of `field`, or `None` if the class has no such field.
    pub fn field_offset(&self, field: FieldSym) -> Option<usize> {
        self.offsets.get(&field).copied()
    }

    /// The function implementing `method` for this class, following
    /// inheritance and overrides.
    pub fn resolve_method(&self, method: MethodSym) -> Option<FuncId> {
        self.methods.get(&method).copied()
    }

    /// All (method, implementation) pairs, in unspecified order.
    pub fn methods(&self) -> impl Iterator<Item = (MethodSym, FuncId)> + '_ {
        self.methods.iter().map(|(m, f)| (*m, *f))
    }
}

/// A complete program: functions, classes, interned symbols and a
/// designated `main` function.
#[derive(Clone, Debug)]
pub struct Module {
    functions: Vec<Function>,
    classes: Vec<Class>,
    field_names: Vec<String>,
    method_names: Vec<String>,
    main: FuncId,
}

impl Module {
    pub(crate) fn from_parts(
        functions: Vec<Function>,
        classes: Vec<Class>,
        field_names: Vec<String>,
        method_names: Vec<String>,
        main: FuncId,
    ) -> Self {
        Self {
            functions,
            classes,
            field_names,
            method_names,
            main,
        }
    }

    /// The entry-point function.
    pub fn main(&self) -> FuncId {
        self.main
    }

    /// Number of functions.
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// All function ids, in index order.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.functions.len() as u32).map(FuncId::new)
    }

    /// Returns the function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Iterates over `(id, function)` pairs.
    pub fn functions(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId::new(i as u32), f))
    }

    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name() == name)
            .map(|i| FuncId::new(i as u32))
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Returns the class with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// Iterates over `(id, class)` pairs.
    pub fn classes(&self) -> impl Iterator<Item = (ClassId, &Class)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassId::new(i as u32), c))
    }

    /// Looks a class up by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name() == name)
            .map(|i| ClassId::new(i as u32))
    }

    /// The interned name of a field symbol.
    pub fn field_name(&self, sym: FieldSym) -> &str {
        &self.field_names[sym.index()]
    }

    /// The interned name of a method symbol.
    pub fn method_name(&self, sym: MethodSym) -> &str {
        &self.method_names[sym.index()]
    }

    /// Number of interned field symbols.
    pub fn num_field_syms(&self) -> usize {
        self.field_names.len()
    }

    /// Number of interned method symbols.
    pub fn num_method_syms(&self) -> usize {
        self.method_names.len()
    }

    /// Total instruction count across all functions (a crude program-size
    /// measure used by the space-overhead experiment, Table 2).
    pub fn num_insts(&self) -> usize {
        self.functions.iter().map(Function::num_insts).sum()
    }
}

pub(crate) fn build_class(
    name: String,
    parent: Option<(ClassId, &Class)>,
    own_fields: &[FieldSym],
    own_methods: &[(MethodSym, FuncId)],
) -> Class {
    let (parent_id, mut layout, mut offsets, mut methods) = match parent {
        Some((id, p)) => (
            Some(id),
            p.layout.clone(),
            p.offsets.clone(),
            p.methods.clone(),
        ),
        None => (None, Vec::new(), HashMap::new(), HashMap::new()),
    };
    for &f in own_fields {
        if let std::collections::hash_map::Entry::Vacant(e) = offsets.entry(f) {
            e.insert(layout.len());
            layout.push(f);
        }
    }
    for &(m, func) in own_methods {
        methods.insert(m, func); // overrides shadow inherited entries
    }
    Class {
        name,
        parent: parent_id,
        layout,
        offsets,
        methods,
    }
}
