//! Builders for functions and modules (API guideline C-BUILDER).

use std::collections::HashMap;

use crate::block::BasicBlock;
use crate::function::Function;
use crate::ids::{BlockId, CallSiteId, ClassId, FieldSym, FuncId, LocalId, MethodSym};
use crate::inst::{Inst, Term};
use crate::module::{build_class, Class, Module};

/// Incrementally constructs a [`Function`].
///
/// The builder maintains a *current block*; [`push`](Self::push) appends to
/// it and [`terminate`](Self::terminate) seals it. Sealed blocks can be
/// revisited with [`switch_to`](Self::switch_to) only if still open.
///
/// Call instructions pushed through [`push`](Self::push) get their [`CallSiteId`]
/// assigned automatically, in push order, mirroring bytecode offsets.
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    arity: usize,
    num_locals: usize,
    blocks: Vec<(Vec<Inst>, Option<Term>)>,
    current: BlockId,
    next_site: u32,
}

impl FunctionBuilder {
    /// Starts building a function with `arity` parameters. Parameters occupy
    /// locals `0..arity`; the entry block is created and made current.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        Self {
            name: name.into(),
            arity,
            num_locals: arity,
            blocks: vec![(Vec::new(), None)],
            current: BlockId::new(0),
            next_site: 0,
        }
    }

    /// The local holding parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= arity`.
    pub fn param(&self, i: usize) -> LocalId {
        assert!(i < self.arity, "parameter index out of range");
        LocalId::new(i as u32)
    }

    /// Allocates a fresh virtual register.
    pub fn new_local(&mut self) -> LocalId {
        let l = LocalId::new(self.num_locals as u32);
        self.num_locals += 1;
        l
    }

    /// Creates a new, empty, unterminated block (does not switch to it).
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId::new(self.blocks.len() as u32);
        self.blocks.push((Vec::new(), None));
        id
    }

    /// Makes `block` the current insertion point.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            self.blocks[block.index()].1.is_none(),
            "cannot append to a terminated block"
        );
        self.current = block;
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Appends an instruction to the current block. Call instructions get a
    /// fresh call-site id; the id the instruction carried is ignored.
    ///
    /// Returns the builder for chaining.
    ///
    /// # Panics
    ///
    /// Panics if the current block is terminated.
    pub fn push(&mut self, mut inst: Inst) -> &mut Self {
        match &mut inst {
            Inst::Call { site, .. } | Inst::CallMethod { site, .. } => {
                *site = CallSiteId::new(self.next_site);
                self.next_site += 1;
            }
            _ => {}
        }
        let (insts, term) = &mut self.blocks[self.current.index()];
        assert!(term.is_none(), "cannot append to a terminated block");
        insts.push(inst);
        self
    }

    /// Seals the current block with `term`.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn terminate(&mut self, term: Term) {
        let slot = &mut self.blocks[self.current.index()].1;
        assert!(slot.is_none(), "block already terminated");
        *slot = Some(term);
    }

    /// Returns `true` if the current block already has a terminator.
    pub fn is_terminated(&self) -> bool {
        self.blocks[self.current.index()].1.is_some()
    }

    /// Finishes the function.
    ///
    /// Any block left unterminated gets an implicit `ret` (unit), which is
    /// convenient for front-end lowering of functions that fall off the end.
    pub fn finish(self) -> Function {
        let blocks = self
            .blocks
            .into_iter()
            .map(|(insts, term)| BasicBlock::new(insts, term.unwrap_or(Term::Ret(None))))
            .collect();
        Function::new(
            self.name,
            self.arity,
            self.num_locals,
            blocks,
            self.next_site,
        )
    }
}

/// Incrementally constructs a [`Module`]: interns field/method names,
/// registers classes and functions.
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    functions: Vec<Function>,
    classes: Vec<Class>,
    field_names: Vec<String>,
    field_index: HashMap<String, FieldSym>,
    method_names: Vec<String>,
    method_index: HashMap<String, MethodSym>,
}

impl ModuleBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a field name.
    pub fn intern_field(&mut self, name: &str) -> FieldSym {
        if let Some(&s) = self.field_index.get(name) {
            return s;
        }
        let s = FieldSym::new(self.field_names.len() as u32);
        self.field_names.push(name.to_owned());
        self.field_index.insert(name.to_owned(), s);
        s
    }

    /// Interns a method name.
    pub fn intern_method(&mut self, name: &str) -> MethodSym {
        if let Some(&s) = self.method_index.get(name) {
            return s;
        }
        let s = MethodSym::new(self.method_names.len() as u32);
        self.method_names.push(name.to_owned());
        self.method_index.insert(name.to_owned(), s);
        s
    }

    /// Adds a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId::new(self.functions.len() as u32);
        self.functions.push(f);
        id
    }

    /// Reserves a function id for a forward reference; the definition must
    /// be supplied later via [`define_function`](Self::define_function).
    pub fn declare_function(&mut self, name: &str, arity: usize) -> FuncId {
        let placeholder = FunctionBuilder::new(name, arity).finish();
        self.add_function(placeholder)
    }

    /// Replaces the body of a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn define_function(&mut self, id: FuncId, f: Function) {
        self.functions[id.index()] = f;
    }

    /// Registers a class. `parent` must already be registered. Field and
    /// method symbols must come from this builder's interner.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range.
    pub fn add_class(
        &mut self,
        name: &str,
        parent: Option<ClassId>,
        fields: &[FieldSym],
        methods: &[(MethodSym, FuncId)],
    ) -> ClassId {
        let parent_ref = parent.map(|p| (p, &self.classes[p.index()]));
        let class = build_class(name.to_owned(), parent_ref, fields, methods);
        let id = ClassId::new(self.classes.len() as u32);
        self.classes.push(class);
        id
    }

    /// Finishes the module with `main` as the entry point.
    ///
    /// # Panics
    ///
    /// Panics if `main` is out of range.
    pub fn finish(self, main: FuncId) -> Module {
        assert!(main.index() < self.functions.len(), "main out of range");
        Module::from_parts(
            self.functions,
            self.classes,
            self.field_names,
            self.method_names,
            main,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Const};

    #[test]
    fn call_sites_assigned_in_push_order() {
        let mut mb = ModuleBuilder::new();
        let callee = {
            let mut fb = FunctionBuilder::new("callee", 0);
            fb.terminate(Term::Ret(None));
            mb.add_function(fb.finish())
        };
        let mut fb = FunctionBuilder::new("caller", 0);
        fb.push(Inst::Call {
            dst: None,
            callee,
            args: vec![],
            site: CallSiteId::new(99),
        });
        fb.push(Inst::Call {
            dst: None,
            callee,
            args: vec![],
            site: CallSiteId::new(99),
        });
        fb.terminate(Term::Ret(None));
        let f = fb.finish();
        assert_eq!(f.num_call_sites(), 2);
        let sites: Vec<_> = f
            .insts()
            .filter_map(|(_, _, i)| match i {
                Inst::Call { site, .. } => Some(*site),
                _ => None,
            })
            .collect();
        assert_eq!(sites, vec![CallSiteId::new(0), CallSiteId::new(1)]);
    }

    #[test]
    fn unterminated_blocks_get_implicit_ret() {
        let mut fb = FunctionBuilder::new("f", 0);
        let l = fb.new_local();
        fb.push(Inst::Const {
            dst: l,
            value: Const::I64(1),
        });
        let f = fb.finish();
        assert_eq!(f.block(f.entry()).term(), &Term::Ret(None));
    }

    #[test]
    #[should_panic(expected = "terminated")]
    fn pushing_after_terminate_panics() {
        let mut fb = FunctionBuilder::new("f", 0);
        fb.terminate(Term::Ret(None));
        fb.push(Inst::Yield);
    }

    #[test]
    fn interning_is_idempotent() {
        let mut mb = ModuleBuilder::new();
        let a = mb.intern_field("x");
        let b = mb.intern_field("x");
        let c = mb.intern_field("y");
        assert_eq!(a, b);
        assert_ne!(a, c);
        let m1 = mb.intern_method("run");
        assert_eq!(mb.intern_method("run"), m1);
    }

    #[test]
    fn class_inheritance_flattens_layout_and_overrides() {
        let mut mb = ModuleBuilder::new();
        let x = mb.intern_field("x");
        let y = mb.intern_field("y");
        let run = mb.intern_method("run");
        let base_run = {
            let mut fb = FunctionBuilder::new("Base::run", 1);
            fb.terminate(Term::Ret(None));
            mb.add_function(fb.finish())
        };
        let derived_run = {
            let mut fb = FunctionBuilder::new("Derived::run", 1);
            fb.terminate(Term::Ret(None));
            mb.add_function(fb.finish())
        };
        let base = mb.add_class("Base", None, &[x], &[(run, base_run)]);
        let derived = mb.add_class("Derived", Some(base), &[y], &[(run, derived_run)]);
        let m = mb.finish(base_run);
        let d = m.class(derived);
        assert_eq!(d.num_fields(), 2);
        assert_eq!(d.field_offset(x), Some(0));
        assert_eq!(d.field_offset(y), Some(1));
        assert_eq!(d.resolve_method(run), Some(derived_run));
        assert_eq!(m.class(base).resolve_method(run), Some(base_run));
        assert_eq!(m.class_by_name("Derived"), Some(derived));
    }

    #[test]
    fn forward_declarations() {
        let mut mb = ModuleBuilder::new();
        let id = mb.declare_function("later", 2);
        let mut fb = FunctionBuilder::new("later", 2);
        let d = fb.new_local();
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: d,
            lhs: fb.param(0),
            rhs: fb.param(1),
        });
        fb.terminate(Term::Ret(Some(d)));
        mb.define_function(id, fb.finish());
        let m = mb.finish(id);
        assert_eq!(m.function(id).num_insts(), 1);
        assert_eq!(m.function_by_name("later"), Some(id));
    }
}
