//! Mid-level intermediate representation for the ISF virtual machine.
//!
//! This crate plays the role of Jalapeño's low-level IR (LIR) in the PLDI'01
//! paper *"A Framework for Reducing the Cost of Instrumented Code"* (Arnold &
//! Ryder): it is the representation on which the instrumentation-sampling
//! transforms of `isf-core` operate, late in the compilation pipeline.
//!
//! The IR is a conventional register-based, basic-block CFG form:
//!
//! * a [`Module`] holds [`Function`]s, [`Class`] declarations and interned
//!   field/method symbols;
//! * a [`Function`] is a vector of [`BasicBlock`]s, each a straight-line run
//!   of [`Inst`]s ended by a single [`Term`]inator;
//! * values live in virtual registers ([`LocalId`]); there is no SSA —
//!   the sampling transforms only rewrite control flow, never data flow,
//!   so plain registers keep block duplication a pure block-level copy.
//!
//! Two instruction families matter to the sampling framework and are
//! therefore first-class here rather than in a client crate:
//!
//! * [`Inst::Instr`] — an *instrumentation operation* ([`InstrOp`]), the unit
//!   of profiling work the framework samples;
//! * [`Term::Check`] — a *counter-based check* (paper §2.2, Figure 3), a
//!   conditional branch on the trigger's sample condition.
//!
//! Analyses needed by the transforms live in [`cfg`], [`dom`] and [`loops`]
//! (reverse postorder, dominator tree, backedge detection). [`verify`]
//! provides a structural verifier run by tests after every transform.
//!
//! # Example
//!
//! ```
//! use isf_ir::{ModuleBuilder, FunctionBuilder, Inst, Term, Const, BinOp};
//!
//! // fn add1(x) { return x + 1; }
//! let mut mb = ModuleBuilder::new();
//! let mut fb = FunctionBuilder::new("add1", 1);
//! let x = fb.param(0);
//! let one = fb.new_local();
//! let sum = fb.new_local();
//! fb.push(Inst::Const { dst: one, value: Const::I64(1) });
//! fb.push(Inst::Bin { op: BinOp::Add, dst: sum, lhs: x, rhs: one });
//! fb.terminate(Term::Ret(Some(sum)));
//! let f = mb.add_function(fb.finish());
//! let module = mb.finish(f);
//! assert_eq!(module.function(f).name(), "add1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod builder;
pub mod cfg;
mod display;
pub mod dom;
mod function;
mod ids;
mod inst;
pub mod loops;
mod module;
pub mod parse;
pub mod passes;
pub mod size;
pub mod verify;

pub use block::BasicBlock;
pub use builder::{FunctionBuilder, ModuleBuilder};
pub use function::Function;
pub use ids::{BlockId, CallSiteId, ClassId, FieldSym, FuncId, LocalId, MethodSym, ThreadId};
pub use inst::{BinOp, Const, Inst, InstrOp, Term, UnOp};
pub use module::{Class, Module};
