//! Control-flow graph utilities: predecessors, traversal orders,
//! reachability.

use crate::function::Function;
use crate::ids::BlockId;

/// Predecessor lists for every block of a function.
///
/// A block appears once per incoming *edge*, so a two-armed branch with both
/// arms on the same target contributes two entries.
#[derive(Clone, Debug)]
pub struct Predecessors {
    preds: Vec<Vec<BlockId>>,
}

impl Predecessors {
    /// Computes predecessor lists for `f`.
    pub fn compute(f: &Function) -> Self {
        let mut preds = vec![Vec::new(); f.num_blocks()];
        for (from, to) in f.edges() {
            preds[to.index()].push(from);
        }
        Self { preds }
    }

    /// Predecessors of `b` (one entry per incoming edge).
    pub fn of(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }
}

/// Blocks reachable from the entry.
pub fn reachable(f: &Function) -> Vec<bool> {
    let mut seen = vec![false; f.num_blocks()];
    let mut stack = vec![f.entry()];
    seen[f.entry().index()] = true;
    while let Some(b) = stack.pop() {
        for s in f.block(b).successors() {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Postorder over the blocks reachable from the entry (iterative DFS,
/// successors visited in branch order).
pub fn postorder(f: &Function) -> Vec<BlockId> {
    let mut order = Vec::with_capacity(f.num_blocks());
    let mut seen = vec![false; f.num_blocks()];
    // (block, next successor index)
    let mut stack: Vec<(BlockId, usize)> = vec![(f.entry(), 0)];
    seen[f.entry().index()] = true;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = f.block(b).successors();
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            order.push(b);
            stack.pop();
        }
    }
    order
}

/// Reverse postorder over the blocks reachable from the entry. The entry is
/// always first.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let mut order = postorder(f);
    order.reverse();
    order
}

/// Edges `u -> v` where `v` is an ancestor of `u` on the DFS tree
/// ("retreating edges"). On reducible CFGs these coincide with the natural
/// backedges of [`crate::loops`]; on irreducible graphs they are a
/// conservative superset, which is what check placement needs to bound the
/// work between checks (paper §2, Property 1).
pub fn retreating_edges(f: &Function) -> Vec<(BlockId, BlockId)> {
    #[derive(Copy, Clone, PartialEq)]
    enum State {
        Unvisited,
        OnStack,
        Done,
    }
    let mut state = vec![State::Unvisited; f.num_blocks()];
    let mut edges = Vec::new();
    let mut stack: Vec<(BlockId, usize)> = vec![(f.entry(), 0)];
    state[f.entry().index()] = State::OnStack;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = f.block(b).successors();
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            match state[s.index()] {
                State::Unvisited => {
                    state[s.index()] = State::OnStack;
                    stack.push((s, 0));
                }
                State::OnStack => edges.push((b, s)),
                State::Done => {}
            }
        } else {
            state[b.index()] = State::Done;
            stack.pop();
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BasicBlock;
    use crate::ids::LocalId;
    use crate::inst::Term;

    /// bb0 -> bb1 -> bb2 -> bb1 (loop), bb2 -> bb3 (exit)
    fn looped() -> Function {
        let blocks = vec![
            BasicBlock::jump_to(BlockId::new(1)),
            BasicBlock::jump_to(BlockId::new(2)),
            BasicBlock::new(
                vec![],
                Term::Br {
                    cond: LocalId::new(0),
                    t: BlockId::new(1),
                    f: BlockId::new(3),
                },
            ),
            BasicBlock::new(vec![], Term::Ret(None)),
        ];
        Function::new("looped", 1, 1, blocks, 0)
    }

    #[test]
    fn preds_count_edges() {
        let f = looped();
        let p = Predecessors::compute(&f);
        assert_eq!(p.of(BlockId::new(1)), &[BlockId::new(0), BlockId::new(2)]);
        assert_eq!(p.of(BlockId::new(0)), &[] as &[BlockId]);
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_edges() {
        let f = looped();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], f.entry());
        assert_eq!(rpo.len(), 4);
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(BlockId::new(1)) < pos(BlockId::new(2)));
        assert!(pos(BlockId::new(2)) < pos(BlockId::new(3)));
    }

    #[test]
    fn retreating_edge_found() {
        let f = looped();
        assert_eq!(
            retreating_edges(&f),
            vec![(BlockId::new(2), BlockId::new(1))]
        );
    }

    #[test]
    fn unreachable_blocks_excluded() {
        let blocks = vec![
            BasicBlock::new(vec![], Term::Ret(None)),
            BasicBlock::new(vec![], Term::Ret(None)), // unreachable
        ];
        let f = Function::new("dead", 0, 0, blocks, 0);
        assert_eq!(reachable(&f), vec![true, false]);
        assert_eq!(postorder(&f).len(), 1);
    }

    #[test]
    fn self_loop_is_retreating() {
        let blocks = vec![
            BasicBlock::new(
                vec![],
                Term::Br {
                    cond: LocalId::new(0),
                    t: BlockId::new(0),
                    f: BlockId::new(1),
                },
            ),
            BasicBlock::new(vec![], Term::Ret(None)),
        ];
        let f = Function::new("selfloop", 1, 1, blocks, 0);
        assert_eq!(
            retreating_edges(&f),
            vec![(BlockId::new(0), BlockId::new(0))]
        );
    }
}
