//! Functions: CFGs of basic blocks plus register bookkeeping.

use crate::block::BasicBlock;
use crate::ids::{BlockId, LocalId};
use crate::inst::{Inst, Term};

/// A function: a named CFG with `arity` parameters passed in locals
/// `0..arity` and `num_locals` virtual registers in total.
///
/// Block 0 is always the entry block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Function {
    name: String,
    arity: usize,
    num_locals: usize,
    blocks: Vec<BasicBlock>,
    num_call_sites: u32,
}

impl Function {
    /// Creates a function from parts. `blocks` must be non-empty; block 0 is
    /// the entry.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty or `num_locals < arity`.
    pub fn new(
        name: impl Into<String>,
        arity: usize,
        num_locals: usize,
        blocks: Vec<BasicBlock>,
        num_call_sites: u32,
    ) -> Self {
        assert!(!blocks.is_empty(), "a function needs at least one block");
        assert!(num_locals >= arity, "locals must include the parameters");
        Self {
            name: name.into(),
            arity,
            num_locals,
            blocks,
            num_call_sites,
        }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of parameters.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Total number of virtual registers (including parameters).
    pub fn num_locals(&self) -> usize {
        self.num_locals
    }

    /// Number of call sites assigned so far (sites are `0..num_call_sites`).
    pub fn num_call_sites(&self) -> u32 {
        self.num_call_sites
    }

    /// The entry block id (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId::new(0)
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// All block ids, in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId::new)
    }

    /// Returns the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// Iterates over `(id, block)` pairs.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::new(i as u32), b))
    }

    /// Appends a block, returning its id.
    pub fn add_block(&mut self, block: BasicBlock) -> BlockId {
        let id = BlockId::new(self.blocks.len() as u32);
        self.blocks.push(block);
        id
    }

    /// Allocates a fresh virtual register.
    pub fn new_local(&mut self) -> LocalId {
        let id = LocalId::new(self.num_locals as u32);
        self.num_locals += 1;
        id
    }

    /// Splits the CFG edge `from -> to` by inserting a fresh empty block
    /// `S` with `from -> S -> to`, returning `S`.
    ///
    /// If the terminator of `from` mentions `to` several times (e.g. both
    /// arms of a branch), **all** of those edges are routed through the
    /// single new block.
    ///
    /// # Panics
    ///
    /// Panics if there is no `from -> to` edge.
    pub fn split_edge(&mut self, from: BlockId, to: BlockId) -> BlockId {
        let split = self.add_block(BasicBlock::jump_to(to));
        let n = self.blocks[from.index()].term_mut().retarget(to, split);
        assert!(n > 0, "no edge {from} -> {to} to split");
        split
    }

    /// Total number of instructions (excluding terminators).
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts().len()).sum()
    }

    /// Total number of instrumentation operations in the body.
    pub fn instrumentation_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrumentation_count()).sum()
    }

    /// Iterates over every instruction with its position.
    pub fn insts(&self) -> impl Iterator<Item = (BlockId, usize, &Inst)> {
        self.blocks().flat_map(|(id, b)| {
            b.insts()
                .iter()
                .enumerate()
                .map(move |(i, inst)| (id, i, inst))
        })
    }

    /// Iterates over all CFG edges `(from, to)` in branch order, including
    /// duplicates when a terminator mentions the same target twice.
    pub fn edges(&self) -> impl Iterator<Item = (BlockId, BlockId)> + '_ {
        self.blocks()
            .flat_map(|(id, b)| b.successors().into_iter().map(move |s| (id, s)))
    }

    /// Replaces the terminator of `block`, returning the old one.
    pub fn set_term(&mut self, block: BlockId, term: Term) -> Term {
        self.blocks[block.index()].set_term(term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LocalId;
    use crate::inst::Const;

    fn diamond() -> Function {
        // bb0: br %0 -> bb1, bb2 ; bb1: jump bb3 ; bb2: jump bb3 ; bb3: ret
        let blocks = vec![
            BasicBlock::new(
                vec![],
                Term::Br {
                    cond: LocalId::new(0),
                    t: BlockId::new(1),
                    f: BlockId::new(2),
                },
            ),
            BasicBlock::jump_to(BlockId::new(3)),
            BasicBlock::jump_to(BlockId::new(3)),
            BasicBlock::new(vec![], Term::Ret(None)),
        ];
        Function::new("diamond", 1, 1, blocks, 0)
    }

    #[test]
    fn split_edge_inserts_trampoline() {
        let mut f = diamond();
        let s = f.split_edge(BlockId::new(1), BlockId::new(3));
        assert_eq!(f.block(BlockId::new(1)).successors(), vec![s]);
        assert_eq!(f.block(s).successors(), vec![BlockId::new(3)]);
        // The other incoming edge is untouched.
        assert_eq!(f.block(BlockId::new(2)).successors(), vec![BlockId::new(3)]);
    }

    #[test]
    #[should_panic(expected = "no edge")]
    fn split_missing_edge_panics() {
        let mut f = diamond();
        f.split_edge(BlockId::new(1), BlockId::new(0));
    }

    #[test]
    fn edge_iteration_includes_duplicates() {
        let blocks = vec![BasicBlock::new(
            vec![],
            Term::Br {
                cond: LocalId::new(0),
                t: BlockId::new(0),
                f: BlockId::new(0),
            },
        )];
        let f = Function::new("self_loop", 1, 1, blocks, 0);
        assert_eq!(f.edges().count(), 2);
    }

    #[test]
    fn local_allocation_extends_frame() {
        let mut f = diamond();
        let before = f.num_locals();
        let l = f.new_local();
        assert_eq!(l.index(), before);
        assert_eq!(f.num_locals(), before + 1);
    }

    #[test]
    fn inst_iteration_in_order() {
        let mut f = diamond();
        f.block_mut(BlockId::new(1)).insts_mut().push(Inst::Const {
            dst: LocalId::new(0),
            value: Const::I64(7),
        });
        let all: Vec<_> = f.insts().collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, BlockId::new(1));
        assert_eq!(f.num_insts(), 1);
    }
}
