//! Backedge detection and natural loops.
//!
//! The sampling framework places checks "on all method entries and backward
//! branches" (paper §2). On the IR level, *backward branch* means a CFG
//! backedge. [`backedges`] returns the union of dominance-based natural
//! backedges and DFS retreating edges: on reducible CFGs (everything the
//! front end produces) the two coincide; on hand-built irreducible graphs
//! the union conservatively keeps the bounded-execution guarantee behind
//! Property 1.

use std::collections::BTreeSet;

use crate::cfg::{retreating_edges, Predecessors};
use crate::dom::DomTree;
use crate::function::Function;
use crate::ids::BlockId;

/// A natural loop: the header plus every block that can reach a backedge
/// source without leaving the loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header.
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: BTreeSet<BlockId>,
}

/// Returns the backedges of `f` as deduplicated `(source, header)` pairs in
/// deterministic order: the union of natural backedges (target dominates
/// source) and DFS retreating edges.
pub fn backedges(f: &Function) -> Vec<(BlockId, BlockId)> {
    let dom = DomTree::compute(f);
    let mut set: BTreeSet<(BlockId, BlockId)> = BTreeSet::new();
    for (from, to) in f.edges() {
        if dom.is_reachable(from) && dom.dominates(to, from) {
            set.insert((from, to));
        }
    }
    for e in retreating_edges(f) {
        set.insert(e);
    }
    set.into_iter().collect()
}

/// Computes the natural loop of each dominance-based backedge, merging
/// loops that share a header.
pub fn natural_loops(f: &Function) -> Vec<NaturalLoop> {
    let dom = DomTree::compute(f);
    let preds = Predecessors::compute(f);
    let mut loops: Vec<NaturalLoop> = Vec::new();
    for (src, header) in backedges(f) {
        if !dom.dominates(header, src) {
            continue; // retreating-only edge of an irreducible region
        }
        let mut blocks = BTreeSet::new();
        blocks.insert(header);
        let mut stack = vec![src];
        while let Some(b) = stack.pop() {
            if blocks.insert(b) {
                for &p in preds.of(b) {
                    stack.push(p);
                }
            }
        }
        if let Some(existing) = loops.iter_mut().find(|l| l.header == header) {
            existing.blocks.extend(blocks);
        } else {
            loops.push(NaturalLoop { header, blocks });
        }
    }
    loops
}

/// Returns `true` if every retreating edge is also a natural backedge,
/// i.e. the CFG is reducible.
pub fn is_reducible(f: &Function) -> bool {
    let dom = DomTree::compute(f);
    retreating_edges(f)
        .into_iter()
        .all(|(from, to)| dom.dominates(to, from))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BasicBlock;
    use crate::ids::LocalId;
    use crate::inst::Term;

    fn br(t: u32, f: u32) -> Term {
        Term::Br {
            cond: LocalId::new(0),
            t: BlockId::new(t),
            f: BlockId::new(f),
        }
    }

    /// 0 -> 1(h) -> 2 -> 1 ; 1 -> 3
    fn simple_loop() -> Function {
        let blocks = vec![
            BasicBlock::jump_to(BlockId::new(1)),
            BasicBlock::new(vec![], br(2, 3)),
            BasicBlock::jump_to(BlockId::new(1)),
            BasicBlock::new(vec![], Term::Ret(None)),
        ];
        Function::new("loop", 1, 1, blocks, 0)
    }

    #[test]
    fn finds_single_backedge() {
        let f = simple_loop();
        assert_eq!(backedges(&f), vec![(BlockId::new(2), BlockId::new(1))]);
        assert!(is_reducible(&f));
    }

    #[test]
    fn natural_loop_membership() {
        let f = simple_loop();
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, BlockId::new(1));
        assert_eq!(
            loops[0].blocks,
            [BlockId::new(1), BlockId::new(2)].into_iter().collect()
        );
    }

    #[test]
    fn nested_loops_have_two_backedges() {
        // 0 -> 1(outer h) -> 2(inner h) -> 3 -> 2 ; 3 -> 1 ; 1 -> 4
        let blocks = vec![
            BasicBlock::jump_to(BlockId::new(1)),
            BasicBlock::new(vec![], br(2, 4)),
            BasicBlock::jump_to(BlockId::new(3)),
            BasicBlock::new(vec![], br(2, 1)),
            BasicBlock::new(vec![], Term::Ret(None)),
        ];
        let f = Function::new("nested", 1, 1, blocks, 0);
        let be = backedges(&f);
        assert_eq!(
            be,
            vec![
                (BlockId::new(3), BlockId::new(1)),
                (BlockId::new(3), BlockId::new(2)),
            ]
        );
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 2);
        let outer = loops.iter().find(|l| l.header == BlockId::new(1)).unwrap();
        assert!(outer.blocks.contains(&BlockId::new(3)));
    }

    #[test]
    fn irreducible_graph_detected() {
        // 0 branches into the middle of a cycle 1 <-> 2: classic irreducible.
        let blocks = vec![
            BasicBlock::new(vec![], br(1, 2)),
            BasicBlock::jump_to(BlockId::new(2)),
            BasicBlock::jump_to(BlockId::new(1)),
        ];
        let f = Function::new("irreducible", 1, 1, blocks, 0);
        assert!(!is_reducible(&f));
        // Retreating edge still reported so checks can bound the cycle.
        assert_eq!(backedges(&f).len(), 1);
    }

    #[test]
    fn straight_line_has_no_backedges() {
        let blocks = vec![
            BasicBlock::jump_to(BlockId::new(1)),
            BasicBlock::new(vec![], Term::Ret(None)),
        ];
        let f = Function::new("straight", 0, 0, blocks, 0);
        assert!(backedges(&f).is_empty());
        assert!(natural_loops(&f).is_empty());
    }
}
