//! Basic blocks.

use crate::ids::BlockId;
use crate::inst::{Inst, Term};

/// A basic block: a straight-line sequence of [`Inst`]s ended by one
/// [`Term`]inator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BasicBlock {
    insts: Vec<Inst>,
    term: Term,
}

impl BasicBlock {
    /// Creates a block with the given body and terminator.
    pub fn new(insts: Vec<Inst>, term: Term) -> Self {
        Self { insts, term }
    }

    /// Creates an empty block that jumps to `target`.
    pub fn jump_to(target: BlockId) -> Self {
        Self::new(Vec::new(), Term::Jump(target))
    }

    /// The instructions of the block, in execution order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Mutable access to the instructions.
    pub fn insts_mut(&mut self) -> &mut Vec<Inst> {
        &mut self.insts
    }

    /// The terminator.
    pub fn term(&self) -> &Term {
        &self.term
    }

    /// Mutable access to the terminator.
    pub fn term_mut(&mut self) -> &mut Term {
        &mut self.term
    }

    /// Replaces the terminator, returning the old one.
    pub fn set_term(&mut self, term: Term) -> Term {
        std::mem::replace(&mut self.term, term)
    }

    /// Successor blocks, in branch order.
    pub fn successors(&self) -> Vec<BlockId> {
        self.term.successors()
    }

    /// Returns `true` if the block contains at least one instrumentation
    /// operation. This is the *instrumented node* predicate of the paper's
    /// Partial-Duplication algorithm (§3.1).
    pub fn is_instrumented(&self) -> bool {
        self.insts.iter().any(Inst::is_instrumentation)
    }

    /// Number of instrumentation operations in the block.
    pub fn instrumentation_count(&self) -> usize {
        self.insts.iter().filter(|i| i.is_instrumentation()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LocalId;
    use crate::inst::{Const, InstrOp};

    #[test]
    fn instrumented_predicate() {
        let mut b = BasicBlock::jump_to(BlockId::new(0));
        assert!(!b.is_instrumented());
        b.insts_mut().push(Inst::Const {
            dst: LocalId::new(0),
            value: Const::I64(1),
        });
        assert!(!b.is_instrumented());
        b.insts_mut().push(Inst::Instr(InstrOp::CallEdge));
        assert!(b.is_instrumented());
        assert_eq!(b.instrumentation_count(), 1);
    }

    #[test]
    fn set_term_returns_previous() {
        let mut b = BasicBlock::jump_to(BlockId::new(4));
        let old = b.set_term(Term::Ret(None));
        assert_eq!(old, Term::Jump(BlockId::new(4)));
        assert_eq!(b.successors(), vec![]);
    }
}
