//! Parser for the textual IR form produced by the [`Display`] impl of
//! [`Function`] — the usual compiler-developer loop of dumping a function,
//! editing it, and reading it back, plus exact round-trip testing of every
//! transform.
//!
//! The grammar is exactly what `Display` emits; see the module tests and
//! the round-trip property tests in the integration crate. Module-level
//! text is *not* parseable (class tables and interned symbol names are
//! elided from dumps); this is a function-level facility.
//!
//! [`Display`]: std::fmt::Display

use std::error::Error;
use std::fmt;

use crate::block::BasicBlock;
use crate::function::Function;
use crate::ids::{BlockId, CallSiteId, ClassId, FieldSym, FuncId, LocalId, MethodSym};
use crate::inst::{BinOp, Const, Inst, InstrOp, Term, UnOp};

/// A textual-IR parse error with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseIrError {
    /// 1-based line of the offending text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseIrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ir parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseIrError {}

/// Parses one function from its textual form.
///
/// # Errors
///
/// Returns the first syntax error with its line number. The result is
/// structurally faithful but not verified — run
/// [`crate::verify::verify_function`] if the text came from an untrusted
/// editor session.
pub fn parse_function(text: &str) -> Result<Function, ParseIrError> {
    Parser::new(text).parse()
}

struct Parser<'t> {
    lines: Vec<(usize, &'t str)>,
    at: usize,
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseIrError> {
    Err(ParseIrError {
        line,
        message: message.into(),
    })
}

impl<'t> Parser<'t> {
    fn new(text: &'t str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Self { lines, at: 0 }
    }

    fn next_line(&mut self) -> Option<(usize, &'t str)> {
        let l = self.lines.get(self.at).copied();
        self.at += 1;
        l
    }

    fn parse(&mut self) -> Result<Function, ParseIrError> {
        let (ln, header) = self.next_line().ok_or_else(|| ParseIrError {
            line: 0,
            message: "empty input".into(),
        })?;
        let (name, arity, num_locals) = parse_header(ln, header)?;

        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut current: Option<(Vec<Inst>, Option<Term>)> = None;
        let mut max_site: Option<u32> = None;
        let finish_block = |cur: &mut Option<(Vec<Inst>, Option<Term>)>,
                            ln: usize|
         -> Result<BasicBlock, ParseIrError> {
            match cur.take() {
                Some((insts, Some(term))) => Ok(BasicBlock::new(insts, term)),
                Some((_, None)) => err(ln, "block has no terminator"),
                None => err(ln, "content outside of a block"),
            }
        };

        loop {
            let Some((ln, line)) = self.next_line() else {
                return err(usize::MAX, "missing closing `}`");
            };
            if line == "}" {
                if current.is_some() {
                    blocks.push(finish_block(&mut current, ln)?);
                }
                break;
            }
            if let Some(label) = line.strip_suffix(':') {
                if current.is_some() {
                    blocks.push(finish_block(&mut current, ln)?);
                }
                let expected = format!("bb{}", blocks.len());
                if label != expected {
                    return err(ln, format!("expected label `{expected}`, found `{label}`"));
                }
                current = Some((Vec::new(), None));
                continue;
            }
            let Some((_, term)) = current.as_mut() else {
                return err(ln, "instruction outside of a block");
            };
            if term.is_some() {
                return err(ln, "instruction after the block terminator");
            }
            if let Some(t) = parse_term(line) {
                *term = Some(t);
                continue;
            }
            let inst = parse_inst(ln, line)?;
            if let Inst::Call { site, .. } | Inst::CallMethod { site, .. } = &inst {
                max_site = Some(max_site.map_or(site.0, |m: u32| m.max(site.0)));
            }
            current.as_mut().expect("checked above").0.push(inst);
        }
        if blocks.is_empty() {
            return err(usize::MAX, "function has no blocks");
        }
        Ok(Function::new(
            name,
            arity,
            num_locals,
            blocks,
            max_site.map_or(0, |m| m + 1),
        ))
    }
}

fn parse_header(ln: usize, line: &str) -> Result<(String, usize, usize), ParseIrError> {
    // fn NAME(N params, M locals) {
    let rest = line.strip_prefix("fn ").ok_or_else(|| ParseIrError {
        line: ln,
        message: "expected `fn <name>(...) {`".into(),
    })?;
    let open = rest.rfind('(').ok_or_else(|| ParseIrError {
        line: ln,
        message: "missing `(` in header".into(),
    })?;
    let name = rest[..open].to_owned();
    let tail = &rest[open + 1..];
    let close = tail.find(')').ok_or_else(|| ParseIrError {
        line: ln,
        message: "missing `)` in header".into(),
    })?;
    let mut parts = tail[..close].split(',');
    let arity = parse_counted(ln, parts.next(), "params")?;
    let num_locals = parse_counted(ln, parts.next(), "locals")?;
    if !tail[close + 1..].trim_start().starts_with('{') {
        return err(ln, "missing `{` after header");
    }
    Ok((name, arity, num_locals))
}

fn parse_counted(ln: usize, part: Option<&str>, unit: &str) -> Result<usize, ParseIrError> {
    let part = part.ok_or_else(|| ParseIrError {
        line: ln,
        message: format!("missing `{unit}` count"),
    })?;
    let part = part.trim();
    let number = part
        .strip_suffix(unit)
        .ok_or_else(|| ParseIrError {
            line: ln,
            message: format!("expected `<n> {unit}`, found `{part}`"),
        })?
        .trim();
    number.parse().map_err(|_| ParseIrError {
        line: ln,
        message: format!("bad {unit} count `{number}`"),
    })
}

fn parse_term(line: &str) -> Option<Term> {
    let mut words = line.split_whitespace();
    match words.next()? {
        "jump" => Some(Term::Jump(block_id(words.next()?)?)),
        "br" => {
            // br %c ? bbA : bbB
            let cond = local(words.next()?)?;
            if words.next()? != "?" {
                return None;
            }
            let t = block_id(words.next()?)?;
            if words.next()? != ":" {
                return None;
            }
            let f = block_id(words.next()?)?;
            Some(Term::Br { cond, t, f })
        }
        "ret" => match words.next() {
            None => Some(Term::Ret(None)),
            Some(v) => Some(Term::Ret(Some(local(v)?))),
        },
        "check" => {
            if words.next()? != "?" {
                return None;
            }
            let sample = block_id(words.next()?)?;
            if words.next()? != ":" {
                return None;
            }
            let cont = block_id(words.next()?)?;
            Some(Term::Check { sample, cont })
        }
        _ => None,
    }
}

fn parse_inst(ln: usize, line: &str) -> Result<Inst, ParseIrError> {
    // Keyword-led, no-destination forms first.
    let mut words = line.split_whitespace();
    let first = words.next().unwrap_or_default();
    match first {
        "yieldpoint" => return Ok(Inst::Yield),
        "print" => {
            let src = expect_local(ln, words.next())?;
            return Ok(Inst::Print { src });
        }
        "join" => {
            let thread = expect_local(ln, words.next())?;
            return Ok(Inst::Join { thread });
        }
        "busy" => {
            let cycles = expect_number(ln, words.next())?;
            return Ok(Inst::Busy { cycles });
        }
        "instr" => return parse_instr_op(ln, line),
        "call" | "callmethod" => return parse_call(ln, line, None),
        _ => {}
    }

    // Assignment forms: LHS = RHS.
    let eq = line.find(" = ").ok_or_else(|| ParseIrError {
        line: ln,
        message: format!("unrecognized instruction `{line}`"),
    })?;
    let lhs = line[..eq].trim();
    let rhs = line[eq + 3..].trim();

    // Store forms: %o.fieldN = %s and %a[%i] = %s.
    if let Some((obj, field)) = split_field_ref(lhs) {
        let src = expect_local(ln, Some(rhs))?;
        return Ok(Inst::SetField { obj, field, src });
    }
    if let Some((arr, idx)) = split_index_ref(lhs) {
        let src = expect_local(ln, Some(rhs))?;
        return Ok(Inst::ArraySet { arr, idx, src });
    }

    let dst = expect_local(ln, Some(lhs))?;
    // RHS dispatch.
    if let Some((obj, field)) = split_field_ref(rhs) {
        return Ok(Inst::GetField { dst, obj, field });
    }
    if let Some((arr, idx)) = split_index_ref(rhs) {
        return Ok(Inst::ArrayGet { dst, arr, idx });
    }
    if let Some(src) = local(rhs) {
        return Ok(Inst::Move { dst, src });
    }
    let mut words = rhs.split_whitespace();
    let head = words.next().unwrap_or_default();
    match head {
        "const" => {
            let v = words.next().ok_or_else(|| ParseIrError {
                line: ln,
                message: "missing constant".into(),
            })?;
            let value = match v {
                "true" => Const::Bool(true),
                "false" => Const::Bool(false),
                "null" => Const::Null,
                n => Const::I64(n.parse().map_err(|_| ParseIrError {
                    line: ln,
                    message: format!("bad constant `{n}`"),
                })?),
            };
            Ok(Inst::Const { dst, value })
        }
        "neg" | "not" => {
            let src = expect_local(ln, words.next())?;
            let op = if head == "neg" { UnOp::Neg } else { UnOp::Not };
            Ok(Inst::Un { op, dst, src })
        }
        "new" => {
            let class = tagged_id(ln, words.next(), "class")?;
            Ok(Inst::New {
                dst,
                class: ClassId::new(class),
            })
        }
        "new_array" => {
            let len = expect_local(ln, words.next())?;
            Ok(Inst::NewArray { dst, len })
        }
        "len" => {
            let arr = expect_local(ln, words.next())?;
            Ok(Inst::ArrayLen { dst, arr })
        }
        "call" | "callmethod" => parse_call(ln, rhs, Some(dst)),
        "spawn" => {
            // spawn fnN(args)
            let call_text = rhs.strip_prefix("spawn ").unwrap_or(rhs);
            let (callee, args) = parse_target_and_args(ln, call_text)?;
            Ok(Inst::Spawn {
                dst,
                callee: FuncId::new(callee),
                args,
            })
        }
        op => {
            let bin = bin_op(op).ok_or_else(|| ParseIrError {
                line: ln,
                message: format!("unrecognized operation `{op}`"),
            })?;
            // op %a, %b
            let a = expect_local(ln, words.next().map(|w| w.trim_end_matches(',')))?;
            let b = expect_local(ln, words.next())?;
            Ok(Inst::Bin {
                op: bin,
                dst,
                lhs: a,
                rhs: b,
            })
        }
    }
}

/// Parses `call fnN(args) @siteK` / `callmethod %o.methodN(args) @siteK`.
fn parse_call(ln: usize, text: &str, dst: Option<LocalId>) -> Result<Inst, ParseIrError> {
    let (kw, rest) = text.split_once(' ').ok_or_else(|| ParseIrError {
        line: ln,
        message: "malformed call".into(),
    })?;
    let at = rest.rfind(" @site").ok_or_else(|| ParseIrError {
        line: ln,
        message: "missing `@site` on call".into(),
    })?;
    let site: u32 = rest[at + " @site".len()..]
        .parse()
        .map_err(|_| ParseIrError {
            line: ln,
            message: "bad call-site id".into(),
        })?;
    let call_text = &rest[..at];
    match kw {
        "call" => {
            let (callee, args) = parse_target_and_args(ln, call_text)?;
            Ok(Inst::Call {
                dst,
                callee: FuncId::new(callee),
                args,
                site: CallSiteId::new(site),
            })
        }
        "callmethod" => {
            // %o.methodN(args)
            let dot = call_text.find('.').ok_or_else(|| ParseIrError {
                line: ln,
                message: "malformed method call".into(),
            })?;
            let obj = expect_local(ln, Some(&call_text[..dot]))?;
            let open = call_text.find('(').ok_or_else(|| ParseIrError {
                line: ln,
                message: "missing `(`".into(),
            })?;
            let method =
                parse_tagged(&call_text[dot + 1..open], "method").ok_or_else(|| ParseIrError {
                    line: ln,
                    message: "malformed method symbol".into(),
                })?;
            let args = parse_args(ln, &call_text[open..])?;
            Ok(Inst::CallMethod {
                dst,
                obj,
                method: MethodSym::new(method),
                args,
                site: CallSiteId::new(site),
            })
        }
        other => err(ln, format!("unrecognized call keyword `{other}`")),
    }
}

/// Parses `fnN(args)` into the callee id and arguments.
fn parse_target_and_args(ln: usize, text: &str) -> Result<(u32, Vec<LocalId>), ParseIrError> {
    let open = text.find('(').ok_or_else(|| ParseIrError {
        line: ln,
        message: "missing `(`".into(),
    })?;
    let callee = parse_tagged(&text[..open], "fn").ok_or_else(|| ParseIrError {
        line: ln,
        message: format!("bad callee `{}`", &text[..open]),
    })?;
    Ok((callee, parse_args(ln, &text[open..])?))
}

fn parse_args(ln: usize, text: &str) -> Result<Vec<LocalId>, ParseIrError> {
    let inner = text
        .strip_prefix('(')
        .and_then(|t| t.strip_suffix(')'))
        .ok_or_else(|| ParseIrError {
            line: ln,
            message: "malformed argument list".into(),
        })?;
    if inner.trim().is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|a| expect_local(ln, Some(a.trim())))
        .collect()
}

fn parse_instr_op(ln: usize, line: &str) -> Result<Inst, ParseIrError> {
    let mut words = line.split_whitespace().skip(1);
    let kind = words.next().unwrap_or_default();
    let op = match kind {
        "call_edge" => InstrOp::CallEdge,
        "field_access" => {
            let mode = words.next().unwrap_or_default();
            let write = match mode {
                "read" => false,
                "write" => true,
                other => return err(ln, format!("bad access mode `{other}`")),
            };
            let place = words.next().unwrap_or_default();
            let (obj, field) = split_field_ref(place).ok_or_else(|| ParseIrError {
                line: ln,
                message: format!("bad field reference `{place}`"),
            })?;
            InstrOp::FieldAccess { obj, field, write }
        }
        "block_count" => InstrOp::BlockCount {
            block: BlockId::new(tagged_id(ln, words.next(), "bb")?),
        },
        "edge_count" => {
            let from = BlockId::new(tagged_id(ln, words.next(), "bb")?);
            if words.next() != Some("->") {
                return err(ln, "expected `->` in edge_count");
            }
            let to = BlockId::new(tagged_id(ln, words.next(), "bb")?);
            InstrOp::EdgeCount { from, to }
        }
        "value_profile" => {
            let local = expect_local(ln, words.next())?;
            let site = site_number(ln, words.next())?;
            InstrOp::ValueProfile { local, site }
        }
        "path_start" => InstrOp::PathStart {
            value: expect_number(ln, words.next())?,
        },
        "path_incr" => InstrOp::PathIncr {
            delta: expect_number(ln, words.next())?,
        },
        "path_end" => InstrOp::PathEnd {
            site: site_number(ln, words.next())?,
        },
        other => return err(ln, format!("unknown instrumentation `{other}`")),
    };
    Ok(Inst::Instr(op))
}

// --- Token helpers. -----------------------------------------------------

fn parse_tagged(text: &str, prefix: &str) -> Option<u32> {
    text.strip_prefix(prefix)?.parse().ok()
}

fn tagged_id(ln: usize, word: Option<&str>, prefix: &str) -> Result<u32, ParseIrError> {
    word.and_then(|w| parse_tagged(w, prefix))
        .ok_or_else(|| ParseIrError {
            line: ln,
            message: format!("expected `{prefix}<n>`"),
        })
}

fn block_id(text: &str) -> Option<BlockId> {
    parse_tagged(text, "bb").map(BlockId::new)
}

fn local(text: &str) -> Option<LocalId> {
    parse_tagged(text, "%").map(LocalId::new)
}

fn expect_local(ln: usize, word: Option<&str>) -> Result<LocalId, ParseIrError> {
    word.and_then(local).ok_or_else(|| ParseIrError {
        line: ln,
        message: format!("expected `%<n>`, found `{}`", word.unwrap_or("<eol>")),
    })
}

fn expect_number(ln: usize, word: Option<&str>) -> Result<u32, ParseIrError> {
    word.and_then(|w| w.parse().ok())
        .ok_or_else(|| ParseIrError {
            line: ln,
            message: "expected a number".into(),
        })
}

fn site_number(ln: usize, word: Option<&str>) -> Result<u32, ParseIrError> {
    word.and_then(|w| w.strip_prefix('@'))
        .and_then(|w| w.strip_prefix("site").or(Some(w)))
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| ParseIrError {
            line: ln,
            message: "expected `@<n>`".into(),
        })
}

/// Splits `%o.fieldN` into its parts; also accepts any `.tagN` suffix for
/// the field position.
fn split_field_ref(text: &str) -> Option<(LocalId, FieldSym)> {
    let dot = text.find('.')?;
    let obj = local(&text[..dot])?;
    let field = parse_tagged(&text[dot + 1..], "field")?;
    Some((obj, FieldSym::new(field)))
}

/// Splits `%a[%i]` into its parts.
fn split_index_ref(text: &str) -> Option<(LocalId, LocalId)> {
    let open = text.find('[')?;
    let arr = local(&text[..open])?;
    let idx = local(text[open + 1..].strip_suffix(']')?)?;
    Some((arr, idx))
}

fn bin_op(m: &str) -> Option<BinOp> {
    use BinOp::*;
    Some(match m {
        "add" => Add,
        "sub" => Sub,
        "mul" => Mul,
        "div" => Div,
        "rem" => Rem,
        "and" => And,
        "or" => Or,
        "xor" => Xor,
        "shl" => Shl,
        "shr" => Shr,
        "eq" => Eq,
        "ne" => Ne,
        "lt" => Lt,
        "le" => Le,
        "gt" => Gt,
        "ge" => Ge,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    fn roundtrip(f: &Function) {
        let text = f.to_string();
        let parsed = parse_function(&text).unwrap_or_else(|e| panic!("{e}\n--- text ---\n{text}"));
        assert_eq!(parsed.to_string(), text, "round-trip changed the function");
        assert_eq!(parsed.arity(), f.arity());
        assert_eq!(parsed.num_locals(), f.num_locals());
        assert_eq!(parsed.num_blocks(), f.num_blocks());
    }

    #[test]
    fn parses_handwritten_function() {
        let text = "fn demo(1 params, 4 locals) {
bb0:
    %1 = const 41
    %2 = add %0, %1
    %3 = eq %2, %1
    br %3 ? bb1 : bb2
bb1:
    print %2
    ret %2
bb2:
    ret
}";
        let f = parse_function(text).unwrap();
        assert_eq!(f.name(), "demo");
        assert_eq!(f.num_blocks(), 3);
        crate::verify::verify_function(&f, None).unwrap();
        assert_eq!(f.to_string(), text);
    }

    #[test]
    fn roundtrips_every_instruction_kind() {
        let mut fb = FunctionBuilder::new("Kitchen::sink", 2);
        let a = fb.param(0);
        let b = fb.param(1);
        let d = fb.new_local();
        fb.push(Inst::Const {
            dst: d,
            value: Const::I64(-7),
        });
        fb.push(Inst::Const {
            dst: d,
            value: Const::Bool(true),
        });
        fb.push(Inst::Const {
            dst: d,
            value: Const::Null,
        });
        fb.push(Inst::Move { dst: d, src: a });
        fb.push(Inst::Un {
            op: UnOp::Neg,
            dst: d,
            src: a,
        });
        fb.push(Inst::Bin {
            op: BinOp::Shr,
            dst: d,
            lhs: a,
            rhs: b,
        });
        fb.push(Inst::New {
            dst: d,
            class: ClassId::new(3),
        });
        fb.push(Inst::GetField {
            dst: d,
            obj: a,
            field: FieldSym::new(2),
        });
        fb.push(Inst::SetField {
            obj: a,
            field: FieldSym::new(2),
            src: b,
        });
        fb.push(Inst::NewArray { dst: d, len: a });
        fb.push(Inst::ArrayGet {
            dst: d,
            arr: a,
            idx: b,
        });
        fb.push(Inst::ArraySet {
            arr: a,
            idx: b,
            src: d,
        });
        fb.push(Inst::ArrayLen { dst: d, arr: a });
        fb.push(Inst::Call {
            dst: Some(d),
            callee: FuncId::new(4),
            args: vec![a, b],
            site: CallSiteId::new(0),
        });
        fb.push(Inst::Call {
            dst: None,
            callee: FuncId::new(4),
            args: vec![],
            site: CallSiteId::new(0),
        });
        fb.push(Inst::CallMethod {
            dst: Some(d),
            obj: a,
            method: MethodSym::new(1),
            args: vec![b],
            site: CallSiteId::new(0),
        });
        fb.push(Inst::Print { src: d });
        fb.push(Inst::Spawn {
            dst: d,
            callee: FuncId::new(4),
            args: vec![a],
        });
        fb.push(Inst::Join { thread: d });
        fb.push(Inst::Yield);
        fb.push(Inst::Busy { cycles: 250 });
        fb.push(Inst::Instr(InstrOp::CallEdge));
        fb.push(Inst::Instr(InstrOp::FieldAccess {
            obj: a,
            field: FieldSym::new(2),
            write: true,
        }));
        fb.push(Inst::Instr(InstrOp::FieldAccess {
            obj: a,
            field: FieldSym::new(2),
            write: false,
        }));
        fb.push(Inst::Instr(InstrOp::BlockCount {
            block: BlockId::new(0),
        }));
        fb.push(Inst::Instr(InstrOp::EdgeCount {
            from: BlockId::new(0),
            to: BlockId::new(1),
        }));
        fb.push(Inst::Instr(InstrOp::ValueProfile { local: a, site: 3 }));
        fb.push(Inst::Instr(InstrOp::PathStart { value: 5 }));
        fb.push(Inst::Instr(InstrOp::PathIncr { delta: 9 }));
        fb.push(Inst::Instr(InstrOp::PathEnd { site: 2 }));
        let b1 = fb.new_block();
        let b2 = fb.new_block();
        let b3 = fb.new_block();
        fb.terminate(Term::Br {
            cond: d,
            t: b1,
            f: b2,
        });
        fb.switch_to(b1);
        fb.terminate(Term::Check {
            sample: b2,
            cont: b3,
        });
        fb.switch_to(b2);
        fb.terminate(Term::Jump(b3));
        fb.switch_to(b3);
        fb.terminate(Term::Ret(Some(d)));
        roundtrip(&fb.finish());
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        let e = parse_function("fn f(0 params, 0 locals) {\nbb0:\n    frobnicate\n    ret\n}")
            .unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));

        let e = parse_function("fn f(0 params, 0 locals) {\nbb0:\n}").unwrap_err();
        assert!(e.message.contains("terminator"));

        let e = parse_function("not a function").unwrap_err();
        assert!(e.message.contains("fn"));
    }

    #[test]
    fn rejects_out_of_order_labels() {
        let e = parse_function("fn f(0 params, 0 locals) {\nbb1:\n    ret\n}").unwrap_err();
        assert!(e.message.contains("expected label `bb0`"));
    }
}
