//! Structural IR verifier.
//!
//! Run after the front end and after every sampling transform; the
//! transforms may only produce well-formed CFGs.

use std::error::Error;
use std::fmt;

use crate::function::Function;
use crate::ids::FuncId;
use crate::inst::Inst;
use crate::module::Module;

/// A structural verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// The offending function, if the error is function-local.
    pub func: Option<FuncId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.func {
            Some(id) => write!(f, "verification failed in {id}: {}", self.message),
            None => write!(f, "verification failed: {}", self.message),
        }
    }
}

impl Error for VerifyError {}

fn err(func: Option<FuncId>, message: impl Into<String>) -> VerifyError {
    VerifyError {
        func,
        message: message.into(),
    }
}

/// Verifies a single function: block targets in range, locals in range,
/// call-site ids within the declared range.
///
/// # Errors
///
/// Returns the first structural violation found.
pub fn verify_function(f: &Function, id: Option<FuncId>) -> Result<(), VerifyError> {
    let nb = f.num_blocks() as u32;
    let nl = f.num_locals() as u32;
    let check_local = |l: crate::ids::LocalId| -> Result<(), VerifyError> {
        if l.0 >= nl {
            Err(err(id, format!("local {l} out of range (have {nl})")))
        } else {
            Ok(())
        }
    };
    for (bid, block) in f.blocks() {
        for succ in block.successors() {
            if succ.0 >= nb {
                return Err(err(id, format!("{bid} targets missing block {succ}")));
            }
        }
        for inst in block.insts() {
            match inst {
                Inst::Const { dst, .. } => check_local(*dst)?,
                Inst::Move { dst, src } => {
                    check_local(*dst)?;
                    check_local(*src)?;
                }
                Inst::Un { dst, src, .. } => {
                    check_local(*dst)?;
                    check_local(*src)?;
                }
                Inst::Bin { dst, lhs, rhs, .. } => {
                    check_local(*dst)?;
                    check_local(*lhs)?;
                    check_local(*rhs)?;
                }
                Inst::New { dst, .. } => check_local(*dst)?,
                Inst::GetField { dst, obj, .. } => {
                    check_local(*dst)?;
                    check_local(*obj)?;
                }
                Inst::SetField { obj, src, .. } => {
                    check_local(*obj)?;
                    check_local(*src)?;
                }
                Inst::NewArray { dst, len } => {
                    check_local(*dst)?;
                    check_local(*len)?;
                }
                Inst::ArrayGet { dst, arr, idx } => {
                    check_local(*dst)?;
                    check_local(*arr)?;
                    check_local(*idx)?;
                }
                Inst::ArraySet { arr, idx, src } => {
                    check_local(*arr)?;
                    check_local(*idx)?;
                    check_local(*src)?;
                }
                Inst::ArrayLen { dst, arr } => {
                    check_local(*dst)?;
                    check_local(*arr)?;
                }
                Inst::Call {
                    dst, args, site, ..
                }
                | Inst::CallMethod {
                    dst, args, site, ..
                } => {
                    if let Some(d) = dst {
                        check_local(*d)?;
                    }
                    for a in args {
                        check_local(*a)?;
                    }
                    if site.0 >= f.num_call_sites() {
                        return Err(err(id, format!("call site {site} out of range")));
                    }
                    if let Inst::CallMethod { obj, .. } = inst {
                        check_local(*obj)?;
                    }
                }
                Inst::Print { src } => check_local(*src)?,
                Inst::Spawn { dst, args, .. } => {
                    check_local(*dst)?;
                    for a in args {
                        check_local(*a)?;
                    }
                }
                Inst::Join { thread } => check_local(*thread)?,
                Inst::Yield | Inst::Busy { .. } | Inst::Instr(_) => {}
            }
        }
    }
    Ok(())
}

/// Verifies a whole module: every function individually, plus cross-function
/// facts (callee ids and arities, class/field/method symbols in range).
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    let nf = m.num_functions() as u32;
    let nc = m.num_classes() as u32;
    let nfs = m.num_field_syms() as u32;
    let nms = m.num_method_syms() as u32;
    for (id, f) in m.functions() {
        verify_function(f, Some(id))?;
        for (_, _, inst) in f.insts() {
            match inst {
                Inst::Call { callee, args, .. } | Inst::Spawn { callee, args, .. } => {
                    if callee.0 >= nf {
                        return Err(err(Some(id), format!("missing callee {callee}")));
                    }
                    let callee_arity = m.function(*callee).arity();
                    if args.len() != callee_arity {
                        return Err(err(
                            Some(id),
                            format!(
                                "call to {} passes {} args, expects {}",
                                m.function(*callee).name(),
                                args.len(),
                                callee_arity
                            ),
                        ));
                    }
                }
                Inst::CallMethod { method, .. } if method.0 >= nms => {
                    return Err(err(Some(id), format!("missing method symbol {method}")));
                }
                Inst::New { class, .. } if class.0 >= nc => {
                    return Err(err(Some(id), format!("missing class {class}")));
                }
                Inst::GetField { field, .. } | Inst::SetField { field, .. } if field.0 >= nfs => {
                    return Err(err(Some(id), format!("missing field symbol {field}")));
                }
                _ => {}
            }
        }
    }
    if m.main().0 >= nf {
        return Err(err(None, "main function out of range"));
    }
    if m.function(m.main()).arity() != 0 {
        return Err(err(Some(m.main()), "main must take no parameters"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ModuleBuilder};
    use crate::ids::{BlockId, CallSiteId, LocalId};
    use crate::inst::{Const, Term};
    use crate::BasicBlock;

    fn empty_main(mb: &mut ModuleBuilder) -> FuncId {
        let mut fb = FunctionBuilder::new("main", 0);
        fb.terminate(Term::Ret(None));
        mb.add_function(fb.finish())
    }

    #[test]
    fn accepts_well_formed_module() {
        let mut mb = ModuleBuilder::new();
        let main = empty_main(&mut mb);
        let m = mb.finish(main);
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn rejects_dangling_block_target() {
        let blocks = vec![BasicBlock::jump_to(BlockId::new(5))];
        let f = Function::new("bad", 0, 0, blocks, 0);
        let e = verify_function(&f, None).unwrap_err();
        assert!(e.message.contains("missing block"));
    }

    #[test]
    fn rejects_out_of_range_local() {
        let blocks = vec![BasicBlock::new(
            vec![Inst::Const {
                dst: LocalId::new(3),
                value: Const::I64(0),
            }],
            Term::Ret(None),
        )];
        let f = Function::new("bad", 0, 1, blocks, 0);
        assert!(verify_function(&f, None).is_err());
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut mb = ModuleBuilder::new();
        let callee = {
            let mut fb = FunctionBuilder::new("two_args", 2);
            fb.terminate(Term::Ret(None));
            mb.add_function(fb.finish())
        };
        let main = {
            let mut fb = FunctionBuilder::new("main", 0);
            fb.push(Inst::Call {
                dst: None,
                callee,
                args: vec![],
                site: CallSiteId::new(0),
            });
            fb.terminate(Term::Ret(None));
            mb.add_function(fb.finish())
        };
        let m = mb.finish(main);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("expects 2"));
    }

    #[test]
    fn rejects_main_with_parameters() {
        let mut mb = ModuleBuilder::new();
        let mut fb = FunctionBuilder::new("main", 1);
        fb.terminate(Term::Ret(None));
        let main = mb.add_function(fb.finish());
        let m = mb.finish(main);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn error_displays_function() {
        let e = err(Some(FuncId::new(3)), "boom");
        assert_eq!(e.to_string(), "verification failed in fn3: boom");
    }
}
