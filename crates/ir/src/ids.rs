//! Index newtypes identifying IR entities.
//!
//! All IDs are plain `u32` indices into the owning arena (`Module` for
//! functions/classes/symbols, `Function` for blocks). Newtypes keep the
//! different index spaces from being confused at compile time
//! (API guideline C-NEWTYPE).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// A function within a [`crate::Module`].
    FuncId,
    "fn"
);
id_type!(
    /// A basic block within a [`crate::Function`].
    BlockId,
    "bb"
);
id_type!(
    /// A virtual register within a [`crate::Function`].
    LocalId,
    "%"
);
id_type!(
    /// A class declaration within a [`crate::Module`].
    ClassId,
    "class"
);
id_type!(
    /// An interned field name (the analogue of a resolved field reference in
    /// bytecode). Field-access profiles are keyed by the *runtime receiver
    /// class* paired with this symbol.
    FieldSym,
    "field"
);
id_type!(
    /// An interned method name, used for dynamic dispatch.
    MethodSym,
    "method"
);
id_type!(
    /// A call site within a function — the analogue of the bytecode offset
    /// that the paper's call-edge instrumentation records. Unique per call
    /// instruction of a function, assigned by [`crate::FunctionBuilder`].
    CallSiteId,
    "site"
);
id_type!(
    /// A green thread in the execution engine.
    ThreadId,
    "thread"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let b = BlockId::new(7);
        assert_eq!(b.index(), 7);
        assert_eq!(b.to_string(), "bb7");
        assert_eq!(LocalId::new(3).to_string(), "%3");
        assert_eq!(FuncId::default(), FuncId::new(0));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(BlockId::new(1) < BlockId::new(2));
        let mut v = vec![FuncId::new(2), FuncId::new(0), FuncId::new(1)];
        v.sort();
        assert_eq!(v, vec![FuncId::new(0), FuncId::new(1), FuncId::new(2)]);
    }

    #[test]
    fn usize_conversion() {
        let id = ClassId::new(9);
        let as_usize: usize = id.into();
        assert_eq!(as_usize, 9);
    }
}
