//! Code-size estimation.
//!
//! Table 2 of the paper reports the "Maximum Space Increase" of
//! Full-Duplication as the summed size of the final optimized code for all
//! methods. We model machine-code size with a fixed byte estimate per IR
//! instruction/terminator, roughly proportional to what a simple code
//! generator would emit.

use crate::function::Function;
use crate::inst::{Inst, Term};
use crate::module::Module;

/// Estimated machine-code bytes for one instruction.
pub fn inst_bytes(inst: &Inst) -> usize {
    match inst {
        Inst::Const { .. } | Inst::Move { .. } => 4,
        Inst::Un { .. } => 4,
        Inst::Bin { .. } => 4,
        Inst::New { .. } => 16,
        Inst::GetField { .. } | Inst::SetField { .. } => 8,
        Inst::NewArray { .. } => 16,
        Inst::ArrayGet { .. } | Inst::ArraySet { .. } => 12, // bounds check included
        Inst::ArrayLen { .. } => 4,
        Inst::Call { args, .. } => 12 + 4 * args.len(),
        Inst::CallMethod { args, .. } => 20 + 4 * args.len(), // dispatch lookup
        Inst::Print { .. } => 8,
        Inst::Spawn { args, .. } => 24 + 4 * args.len(),
        Inst::Join { .. } => 12,
        Inst::Yield => 12, // load bit, test, conditional branch
        Inst::Busy { .. } => 8,
        Inst::Instr(op) => match op {
            // Stack walk + hash update.
            crate::inst::InstrOp::CallEdge => 48,
            // Two loads, an increment, and a store (paper §4.3).
            crate::inst::InstrOp::FieldAccess { .. } => 16,
            crate::inst::InstrOp::BlockCount { .. } => 12,
            crate::inst::InstrOp::EdgeCount { .. } => 12,
            crate::inst::InstrOp::ValueProfile { .. } => 24,
            // Path register manipulation compiles to one or two ALU ops;
            // recording hashes the accumulated id.
            crate::inst::InstrOp::PathStart { .. } => 4,
            crate::inst::InstrOp::PathIncr { .. } => 4,
            crate::inst::InstrOp::PathEnd { .. } => 16,
        },
    }
}

/// Estimated machine-code bytes for one terminator.
pub fn term_bytes(term: &Term) -> usize {
    match term {
        Term::Jump(_) => 4,
        Term::Br { .. } => 8,
        Term::Ret(_) => 4,
        // Load counter, decrement, compare, branch, store (paper Figure 3).
        Term::Check { .. } => 20,
    }
}

/// Estimated code size of a function in bytes.
pub fn function_bytes(f: &Function) -> usize {
    f.blocks()
        .map(|(_, b)| b.insts().iter().map(inst_bytes).sum::<usize>() + term_bytes(b.term()))
        .sum()
}

/// Estimated code size of a whole module in bytes.
pub fn module_bytes(m: &Module) -> usize {
    m.functions().map(|(_, f)| function_bytes(f)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{Const, InstrOp};

    #[test]
    fn size_grows_with_instructions() {
        let mut fb = FunctionBuilder::new("f", 0);
        let base = function_bytes(&FunctionBuilder::new("g", 0).finish());
        let l = fb.new_local();
        fb.push(Inst::Const {
            dst: l,
            value: Const::I64(1),
        });
        fb.push(Inst::Instr(InstrOp::CallEdge));
        let sized = function_bytes(&fb.finish());
        assert!(sized > base);
        assert_eq!(sized - base, 4 + 48);
    }

    #[test]
    fn check_terminator_costs_more_than_jump() {
        assert!(
            term_bytes(&Term::Check {
                sample: crate::ids::BlockId::new(0),
                cont: crate::ids::BlockId::new(0),
            }) > term_bytes(&Term::Jump(crate::ids::BlockId::new(0)))
        );
    }
}
