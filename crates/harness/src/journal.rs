//! Crash-safe cell journal: the durability layer behind `--journal` /
//! `--resume`.
//!
//! A journal is an append-only JSONL file. Its first line is a *header*
//! record naming every input that determines cell results — crate
//! version, scale, experiment list, budgets, fault injection, the VM
//! configuration — folded into an FNV-1a fingerprint (the same hash
//! machinery fault injection uses). Each finished cell then becomes one
//! fsync'd `journal-cell` line carrying the cell's raw metrics, its
//! classified failure (if any), an experiment-specific result payload,
//! and the phase sections the cell contributed. Because every cell is a
//! pure function of the header inputs, a journaled result can be replayed
//! verbatim on `--resume` and the resumed stdout/JSONL stream is
//! byte-identical to an uninterrupted run's.
//!
//! Robustness contract:
//!
//! - the header is written atomically (temp file + rename), so a crash
//!   during journal creation never leaves a half-written header;
//! - each cell line is one `write_all` + `sync_data`, so a crash can only
//!   damage the *final* line, and only by truncating it — resume drops an
//!   unterminated tail and keeps the surviving prefix;
//! - any other damage (a terminated line that does not parse, a missing
//!   or malformed header) is refused outright with a diagnostic, as is a
//!   fingerprint mismatch — a stale journal is never silently reused.
//!
//! The module also owns the interrupt *drain* flag: signal handlers call
//! [`request_drain`], workers stop claiming new cells, in-flight cells
//! finish and are journaled, and the process exits with
//! [`RESUMABLE_EXIT`] so callers can distinguish "interrupted but
//! resumable" from failure.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use isf_obs::{emit, json, log, Json};

/// Exit code of a run interrupted by SIGINT/SIGTERM after draining: the
/// run is incomplete but every finished cell is journaled, so rerunning
/// with `--resume` completes it. 75 is `EX_TEMPFAIL` — "try again".
pub const RESUMABLE_EXIT: i32 = 75;

/// The journal format identifier written in the header record.
pub const SCHEMA: &str = "isf-journal/1";

// ---------------------------------------------------------------------
// FNV-1a — shared with fault injection's deterministic roll.
// ---------------------------------------------------------------------

/// FNV-1a offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a hash state.
pub(crate) fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// The journal key of a cell: the run fingerprint folded with the cell
/// label, so a key only matches when both the run inputs and the cell
/// identity do.
pub(crate) fn cell_key(fingerprint: u64, label: &str) -> u64 {
    fnv1a(fnv1a(fingerprint, label.as_bytes()), &[0x00])
}

// ---------------------------------------------------------------------
// Run inputs and their fingerprint.
// ---------------------------------------------------------------------

/// Everything that determines cell results: change any field and every
/// journaled result is potentially invalid, so the fingerprint — and with
/// it the whole journal — changes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunInputs {
    /// The harness crate version (results may change between releases).
    pub version: String,
    /// Workload scale name (`smoke`, `dev`, `paper`).
    pub scale: String,
    /// The expanded experiment list, in run order.
    pub experiments: Vec<String>,
    /// Per-cell simulated-cycle cap (0 = uncapped).
    pub cell_budget: u64,
    /// Bounded retry count for panicked cells.
    pub retries: u64,
    /// Fault-injection probability as `f64` bits (0 = off).
    pub fault_prob_bits: u64,
    /// Fault-injection seed.
    pub fault_seed: u64,
    /// `Debug` rendering of the base VM configuration (cost model,
    /// execution limits).
    pub vm_config: String,
}

impl RunInputs {
    /// The FNV-1a fingerprint over every field, with separators so field
    /// boundaries cannot alias.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, SCHEMA.as_bytes());
        let field = |h: u64, bytes: &[u8]| fnv1a(fnv1a(h, bytes), &[0xff]);
        h = field(h, self.version.as_bytes());
        h = field(h, self.scale.as_bytes());
        for e in &self.experiments {
            h = field(h, e.as_bytes());
        }
        h = field(h, &self.cell_budget.to_le_bytes());
        h = field(h, &self.retries.to_le_bytes());
        h = field(h, &self.fault_prob_bits.to_le_bytes());
        h = field(h, &self.fault_seed.to_le_bytes());
        h = field(h, self.vm_config.as_bytes());
        h
    }

    /// The `journal-meta` header record: the fingerprint plus every input
    /// in the clear, so a stale journal can be diagnosed field by field.
    fn header_record(&self) -> Json {
        Json::obj([
            ("type", "journal-meta".into()),
            ("schema", SCHEMA.into()),
            ("fingerprint", format!("{:016x}", self.fingerprint()).into()),
            ("version", self.version.as_str().into()),
            ("scale", self.scale.as_str().into()),
            (
                "experiments",
                Json::Arr(
                    self.experiments
                        .iter()
                        .map(|e| Json::Str(e.clone()))
                        .collect(),
                ),
            ),
            ("cell_budget", self.cell_budget.into()),
            ("retries", self.retries.into()),
            ("fault_prob_bits", self.fault_prob_bits.into()),
            ("fault_seed", self.fault_seed.into()),
            ("vm_config", self.vm_config.as_str().into()),
        ])
    }

    /// Human-readable list of fields on which `self` and a journal header
    /// disagree, for the stale-journal diagnostic.
    fn diff_header(&self, header: &Json) -> Vec<String> {
        let mut diffs = Vec::new();
        let mut check = |name: &str, ours: String, theirs: Option<String>| {
            let theirs = theirs.unwrap_or_else(|| "<missing>".to_owned());
            if theirs != ours {
                diffs.push(format!("{name}: journal has {theirs}, this run has {ours}"));
            }
        };
        let s = |v: &Json| v.as_str().map(str::to_owned);
        let n = |v: &Json| v.as_u64().map(|n| n.to_string());
        check(
            "version",
            self.version.clone(),
            header.get("version").and_then(s),
        );
        check("scale", self.scale.clone(), header.get("scale").and_then(s));
        check(
            "experiments",
            self.experiments.join(","),
            header.get("experiments").and_then(Json::as_arr).map(|a| {
                a.iter()
                    .filter_map(Json::as_str)
                    .collect::<Vec<_>>()
                    .join(",")
            }),
        );
        check(
            "cell_budget",
            self.cell_budget.to_string(),
            header.get("cell_budget").and_then(n),
        );
        check(
            "retries",
            self.retries.to_string(),
            header.get("retries").and_then(n),
        );
        check(
            "fault_prob_bits",
            self.fault_prob_bits.to_string(),
            header.get("fault_prob_bits").and_then(n),
        );
        check(
            "fault_seed",
            self.fault_seed.to_string(),
            header.get("fault_seed").and_then(n),
        );
        check(
            "vm_config",
            self.vm_config.clone(),
            header.get("vm_config").and_then(s),
        );
        diffs
    }
}

// ---------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------

/// Why a journal could not be created or resumed from.
#[derive(Debug)]
pub enum JournalError {
    /// Reading or writing the journal file failed.
    Io(String),
    /// The journal's contents are damaged beyond the tolerated truncated
    /// final line.
    Corrupt(String),
    /// The journal was written by a run with different key inputs and
    /// must not be reused.
    Stale(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(m) => write!(f, "journal I/O error: {m}"),
            JournalError::Corrupt(m) => write!(f, "corrupt journal: {m}"),
            JournalError::Stale(m) => write!(f, "stale journal: {m}"),
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(context: &str, path: &Path, e: &std::io::Error) -> JournalError {
    JournalError::Io(format!("{context} {}: {e}", path.display()))
}

// ---------------------------------------------------------------------
// Journal state.
// ---------------------------------------------------------------------

/// One journaled cell, parsed back for replay. The `cell` and `error`
/// records hold *raw* (unredacted) values; redaction is re-applied at
/// emission time on the main thread, exactly as for a freshly run cell.
#[derive(Clone, Debug)]
pub(crate) struct ReplayCell {
    /// The cell's raw metrics record (`type: cell`, wall fields raw).
    pub cell: Json,
    /// The cell's failure record (`type: error`), if it failed.
    pub error: Option<Json>,
    /// The experiment-specific result payload, if the cell succeeded.
    pub payload: Option<Json>,
    /// Phase sections the cell contributed: `(name, count, wall_ns)`.
    pub phases: Vec<(String, u64, u64)>,
}

struct JournalState {
    fingerprint: u64,
    path: PathBuf,
    file: Mutex<File>,
    replay: HashMap<String, Arc<ReplayCell>>,
}

static JOURNAL: Mutex<Option<Arc<JournalState>>> = Mutex::new(None);
static DRAIN: AtomicBool = AtomicBool::new(false);

fn active_state() -> Option<Arc<JournalState>> {
    JOURNAL
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .as_ref()
        .map(Arc::clone)
}

/// Whether a journal is currently attached to the process.
pub fn is_active() -> bool {
    active_state().is_some()
}

/// Detaches the journal and clears the drain flag. Called at the end of a
/// run and by tests that attach journals.
pub fn deactivate() {
    *JOURNAL.lock().unwrap_or_else(|p| p.into_inner()) = None;
    DRAIN.store(false, Ordering::SeqCst);
}

/// Flags a graceful drain: workers stop claiming new cells, in-flight
/// cells finish and are journaled, and the run exits [`RESUMABLE_EXIT`].
/// The only work the signal handler does — an atomic store is
/// async-signal-safe.
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Whether a graceful drain has been requested.
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}

// ---------------------------------------------------------------------
// Creating and resuming journals.
// ---------------------------------------------------------------------

/// Starts a fresh journal at `path`, replacing any existing file. The
/// header is written to a temporary sibling and renamed into place, so an
/// interrupted start never leaves a journal with a torn header.
///
/// # Errors
///
/// [`JournalError::Io`] if the header cannot be written.
pub fn start_fresh(path: &Path, inputs: &RunInputs) -> Result<(), JournalError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut file = File::create(&tmp).map_err(|e| io_err("cannot create", &tmp, &e))?;
    let header = format!("{}\n", inputs.header_record());
    file.write_all(header.as_bytes())
        .and_then(|()| file.sync_data())
        .map_err(|e| io_err("cannot write header to", &tmp, &e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err("cannot rename journal into", path, &e))?;
    // Best-effort directory sync so the rename itself is durable.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        let _ = File::open(dir).and_then(|d| d.sync_all());
    }
    install(JournalState {
        fingerprint: inputs.fingerprint(),
        path: path.to_owned(),
        file: Mutex::new(file),
        replay: HashMap::new(),
    });
    Ok(())
}

/// Opens an existing journal at `path` for resumption: validates the
/// header against `inputs`, parses every journaled cell, drops a
/// truncated final line (restoring the file to its valid prefix), and
/// attaches the journal so new cells append after the survivors. Returns
/// the number of replayable cells.
///
/// # Errors
///
/// [`JournalError::Io`] if the file cannot be read; [`JournalError::Stale`]
/// if the header fingerprint does not match `inputs` (the diagnostic names
/// each differing field); [`JournalError::Corrupt`] for damage beyond a
/// truncated final line.
pub fn open_resume(path: &Path, inputs: &RunInputs) -> Result<usize, JournalError> {
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .map_err(|e| io_err("cannot open", path, &e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| io_err("cannot read", path, &e))?;
    let parsed = parse_journal(&bytes, inputs)?;
    if parsed.valid_len < bytes.len() {
        log::debug(&format!(
            "[journal] dropping {} bytes of truncated tail from {}",
            bytes.len() - parsed.valid_len,
            path.display()
        ));
        file.set_len(parsed.valid_len as u64)
            .map_err(|e| io_err("cannot truncate", path, &e))?;
    }
    file.seek(SeekFrom::Start(parsed.valid_len as u64))
        .map_err(|e| io_err("cannot seek", path, &e))?;
    let cells = parsed.cells.len();
    install(JournalState {
        fingerprint: inputs.fingerprint(),
        path: path.to_owned(),
        file: Mutex::new(file),
        replay: parsed.cells,
    });
    Ok(cells)
}

fn install(state: JournalState) {
    *JOURNAL.lock().unwrap_or_else(|p| p.into_inner()) = Some(Arc::new(state));
}

/// A parsed journal: the replayable cells keyed by label, and the byte
/// length of the valid prefix (everything before a truncated final line).
#[derive(Debug)]
struct ParsedJournal {
    cells: HashMap<String, Arc<ReplayCell>>,
    valid_len: usize,
}

/// Parses journal bytes, validating the header against `inputs`. Pure, so
/// the truncation proptest can exercise it on arbitrary prefixes.
fn parse_journal(bytes: &[u8], inputs: &RunInputs) -> Result<ParsedJournal, JournalError> {
    let fingerprint = inputs.fingerprint();
    let mut cells = HashMap::new();
    let mut offset = 0usize;
    let mut line_no = 0usize;
    let mut header_seen = false;
    while offset < bytes.len() {
        let Some(rel) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            // Unterminated tail: the crash artifact we tolerate. Each cell
            // line is one write + fsync, so only the final line can be
            // partial; drop it and keep the surviving prefix.
            break;
        };
        let line_bytes = &bytes[offset..offset + rel];
        line_no += 1;
        let corrupt = |m: String| JournalError::Corrupt(format!("line {line_no}: {m}"));
        let text =
            std::str::from_utf8(line_bytes).map_err(|_| corrupt("not valid UTF-8".to_owned()))?;
        let record = json::parse(text).map_err(|e| corrupt(format!("not valid JSON: {e}")))?;
        let kind = record
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| corrupt("missing string field `type`".to_owned()))?;
        if !header_seen {
            if kind != "journal-meta" {
                return Err(corrupt(format!(
                    "first record is `{kind}`, expected the `journal-meta` header"
                )));
            }
            check_header(&record, inputs, fingerprint, line_no)?;
            header_seen = true;
        } else if kind == "journal-cell" {
            let (label, cell) = parse_cell(&record, fingerprint, line_no)?;
            cells.insert(label, Arc::new(cell));
        } else {
            return Err(corrupt(format!("unknown journal record type `{kind}`")));
        }
        offset += rel + 1;
    }
    if !header_seen {
        return Err(JournalError::Corrupt(
            "no complete `journal-meta` header record; the journal cannot be resumed".to_owned(),
        ));
    }
    Ok(ParsedJournal {
        cells,
        valid_len: offset,
    })
}

fn check_header(
    record: &Json,
    inputs: &RunInputs,
    fingerprint: u64,
    line_no: usize,
) -> Result<(), JournalError> {
    let schema = record.get("schema").and_then(Json::as_str);
    if schema != Some(SCHEMA) {
        return Err(JournalError::Corrupt(format!(
            "line {line_no}: header schema is {schema:?}, expected `{SCHEMA}`"
        )));
    }
    let theirs = record
        .get("fingerprint")
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| {
            JournalError::Corrupt(format!("line {line_no}: header has no valid `fingerprint`"))
        })?;
    if theirs != fingerprint {
        let mut diffs = inputs.diff_header(record);
        if diffs.is_empty() {
            diffs.push("fingerprint differs but no named field does".to_owned());
        }
        return Err(JournalError::Stale(format!(
            "journal fingerprint {theirs:016x} does not match this run's {fingerprint:016x} \
             ({}); delete the journal or rerun without --resume",
            diffs.join("; ")
        )));
    }
    Ok(())
}

fn parse_cell(
    record: &Json,
    fingerprint: u64,
    line_no: usize,
) -> Result<(String, ReplayCell), JournalError> {
    let corrupt = |m: String| JournalError::Corrupt(format!("line {line_no}: {m}"));
    let label = record
        .get("label")
        .and_then(Json::as_str)
        .ok_or_else(|| corrupt("journal-cell has no `label`".to_owned()))?
        .to_owned();
    let key = record
        .get("key")
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| corrupt("journal-cell has no valid `key`".to_owned()))?;
    if key != cell_key(fingerprint, &label) {
        return Err(corrupt(format!(
            "key {key:016x} does not match cell `{label}` under this run's fingerprint"
        )));
    }
    let cell = record
        .get("cell")
        .filter(|c| matches!(c, Json::Obj(_)))
        .ok_or_else(|| corrupt(format!("cell `{label}` has no `cell` metrics object")))?
        .clone();
    let error = record.get("error").cloned();
    let payload = record.get("payload").cloned();
    let mut phases = Vec::new();
    if let Some(list) = record.get("phases").and_then(Json::as_arr) {
        for p in list {
            let name = p.get("name").and_then(Json::as_str);
            let count = p.get("count").and_then(Json::as_u64);
            let wall_ns = p.get("wall_ns").and_then(Json::as_u64);
            match (name, count, wall_ns) {
                (Some(name), Some(count), Some(wall_ns)) => {
                    phases.push((name.to_owned(), count, wall_ns));
                }
                _ => {
                    return Err(corrupt(format!(
                        "cell `{label}` has a malformed phase entry"
                    )));
                }
            }
        }
    } else {
        return Err(corrupt(format!("cell `{label}` has no `phases` array")));
    }
    Ok((
        label,
        ReplayCell {
            cell,
            error,
            payload,
            phases,
        },
    ))
}

// ---------------------------------------------------------------------
// The hot path: lookup and append.
// ---------------------------------------------------------------------

/// The replayable result for `label`, if the attached journal has one.
pub(crate) fn lookup(label: &str) -> Option<Arc<ReplayCell>> {
    active_state()?.replay.get(label).cloned()
}

/// Appends one finished cell to the attached journal (no-op when none is
/// attached): a single `write_all` of the whole line followed by
/// `sync_data`, so a crash can only truncate the final line. A failing
/// append is logged but does not take the run down — the journal degrades
/// to a shorter resume prefix.
///
/// Public so the integration-test crate can build journals through the
/// real write path; the harness itself appends via the cell engine.
pub fn append(
    label: &str,
    cell: &Json,
    error: Option<&Json>,
    payload: Option<&Json>,
    phases: &[emit::PhaseTotal],
) {
    let Some(state) = active_state() else {
        return;
    };
    let key = cell_key(state.fingerprint, label);
    let mut pairs: Vec<(&'static str, Json)> = vec![
        ("type", "journal-cell".into()),
        ("key", format!("{key:016x}").into()),
        ("label", label.into()),
        ("cell", cell.clone()),
    ];
    if let Some(e) = error {
        pairs.push(("error", e.clone()));
    }
    if let Some(p) = payload {
        pairs.push(("payload", p.clone()));
    }
    pairs.push((
        "phases",
        Json::Arr(
            phases
                .iter()
                .map(|p| {
                    Json::obj([
                        ("name", p.name.as_str().into()),
                        ("count", p.count.into()),
                        ("wall_ns", p.wall_ns.into()),
                    ])
                })
                .collect(),
        ),
    ));
    let line = format!("{}\n", Json::obj(pairs));
    let mut file = state.file.lock().unwrap_or_else(|p| p.into_inner());
    if let Err(e) = file
        .write_all(line.as_bytes())
        .and_then(|()| file.sync_data())
    {
        log::error(&format!(
            "[journal] failed to append cell `{label}` to {}: {e}",
            state.path.display()
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> RunInputs {
        RunInputs {
            version: "1.2.3".to_owned(),
            scale: "smoke".to_owned(),
            experiments: vec!["table1".to_owned(), "table4".to_owned()],
            cell_budget: 0,
            retries: 0,
            fault_prob_bits: 0,
            fault_seed: 0,
            vm_config: "VmConfig { .. }".to_owned(),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("isf-journal-{tag}-{}.jsonl", std::process::id()))
    }

    fn phases() -> Vec<emit::PhaseTotal> {
        vec![emit::PhaseTotal {
            name: "run".to_owned(),
            count: 2,
            wall_ns: 99,
        }]
    }

    #[test]
    fn fingerprint_changes_with_every_input() {
        let base = inputs().fingerprint();
        let variants = [
            RunInputs {
                version: "9.9.9".to_owned(),
                ..inputs()
            },
            RunInputs {
                scale: "paper".to_owned(),
                ..inputs()
            },
            RunInputs {
                experiments: vec!["table1".to_owned()],
                ..inputs()
            },
            RunInputs {
                cell_budget: 5,
                ..inputs()
            },
            RunInputs {
                retries: 1,
                ..inputs()
            },
            RunInputs {
                fault_prob_bits: 0.5f64.to_bits(),
                ..inputs()
            },
            RunInputs {
                fault_seed: 7,
                ..inputs()
            },
            RunInputs {
                vm_config: "VmConfig { other }".to_owned(),
                ..inputs()
            },
        ];
        for v in variants {
            assert_ne!(v.fingerprint(), base, "{v:?} should change the fingerprint");
        }
        assert_eq!(inputs().fingerprint(), base, "fingerprint is stable");
    }

    #[test]
    fn round_trip_through_a_real_file() {
        let _guard = crate::runner::JOBS_TEST_LOCK.lock().unwrap();
        let path = temp_path("roundtrip");
        start_fresh(&path, &inputs()).expect("start fresh");
        assert!(is_active());
        let cell = Json::obj([("type", "cell".into()), ("label", "table1/db".into())]);
        let payload = Json::obj([("call_edge", Json::Num(1.5))]);
        append("table1/db", &cell, None, Some(&payload), &phases());
        deactivate();

        let replayed = open_resume(&path, &inputs()).expect("resume");
        assert_eq!(replayed, 1);
        let r = lookup("table1/db").expect("journaled cell");
        assert_eq!(
            r.cell.get("label").and_then(Json::as_str),
            Some("table1/db")
        );
        assert_eq!(
            r.payload
                .as_ref()
                .and_then(|p| p.get("call_edge"))
                .and_then(Json::as_f64),
            Some(1.5)
        );
        assert_eq!(r.phases, vec![("run".to_owned(), 2, 99)]);
        assert!(r.error.is_none());
        assert!(lookup("table1/jess").is_none());
        deactivate();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_dropped_and_the_prefix_survives() {
        let _guard = crate::runner::JOBS_TEST_LOCK.lock().unwrap();
        let path = temp_path("truncate");
        start_fresh(&path, &inputs()).expect("start fresh");
        let cell = Json::obj([("type", "cell".into())]);
        append("table1/db", &cell, None, None, &phases());
        append("table1/jess", &cell, None, None, &phases());
        deactivate();

        // Chop the last line in half, as a crash mid-append would.
        let bytes = std::fs::read(&path).expect("read journal");
        let cut = bytes.len() - 10;
        std::fs::write(&path, &bytes[..cut]).expect("truncate journal");

        let replayed = open_resume(&path, &inputs()).expect("resume survives truncation");
        assert_eq!(replayed, 1, "only the intact cell survives");
        assert!(lookup("table1/db").is_some());
        assert!(lookup("table1/jess").is_none());
        // The file was restored to its valid prefix, so appends are clean.
        append("table1/jess", &cell, None, None, &phases());
        deactivate();
        let replayed = open_resume(&path, &inputs()).expect("resume after repair");
        assert_eq!(replayed, 2);
        deactivate();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_journal_is_refused_with_named_fields() {
        let _guard = crate::runner::JOBS_TEST_LOCK.lock().unwrap();
        let path = temp_path("stale");
        start_fresh(&path, &inputs()).expect("start fresh");
        deactivate();
        let changed = RunInputs {
            scale: "paper".to_owned(),
            ..inputs()
        };
        let e = open_resume(&path, &changed).expect_err("stale journal must be refused");
        assert!(!is_active(), "a refused journal must not attach");
        let msg = e.to_string();
        assert!(msg.contains("stale journal"), "{msg}");
        assert!(
            msg.contains("scale: journal has smoke, this run has paper"),
            "{msg}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_and_headerless_journals_are_refused() {
        let empty = parse_journal(b"", &inputs()).expect_err("empty journal");
        assert!(empty
            .to_string()
            .contains("no complete `journal-meta` header"));

        // A terminated garbage line mid-file is corruption, not truncation.
        let header = format!("{}\n", inputs().header_record());
        let garbage = format!("{header}not json\n");
        let e = parse_journal(garbage.as_bytes(), &inputs()).expect_err("corrupt line");
        assert!(e.to_string().contains("line 2"), "{e}");

        // A journal whose first record is not the header is refused.
        let no_header = "{\"type\":\"journal-cell\"}\n";
        let e = parse_journal(no_header.as_bytes(), &inputs()).expect_err("cell before header");
        assert!(e.to_string().contains("journal-meta"), "{e}");

        // A cell whose key does not match its label is refused.
        let bad_key = format!(
            "{header}{}\n",
            Json::obj([
                ("type", "journal-cell".into()),
                ("key", "0000000000000000".into()),
                ("label", "table1/db".into()),
                ("cell", Json::obj([])),
                ("phases", Json::Arr(vec![])),
            ])
        );
        let e = parse_journal(bad_key.as_bytes(), &inputs()).expect_err("bad key");
        assert!(e.to_string().contains("does not match cell"), "{e}");
    }

    #[test]
    fn truncation_anywhere_keeps_a_prefix_or_refuses_cleanly() {
        // Exhaustive version of the integration proptest, on the pure
        // parser: cutting a valid journal at *any* byte offset either
        // yields a prefix of the original cells or a clean refusal —
        // never a panic, never an invented cell.
        let header = format!("{}\n", inputs().header_record());
        let fp = inputs().fingerprint();
        let mk_cell = |label: &str| {
            format!(
                "{}\n",
                Json::obj([
                    ("type", "journal-cell".into()),
                    ("key", format!("{:016x}", cell_key(fp, label)).into()),
                    ("label", label.into()),
                    ("cell", Json::obj([("type", "cell".into())])),
                    ("phases", Json::Arr(vec![])),
                ])
            )
        };
        let full = format!("{header}{}{}", mk_cell("table1/db"), mk_cell("table1/jess"));
        let bytes = full.as_bytes();
        let header_len = header.len();
        for cut in 0..=bytes.len() {
            match parse_journal(&bytes[..cut], &inputs()) {
                Ok(parsed) => {
                    assert!(cut >= header_len, "header must be complete to parse");
                    assert!(parsed.valid_len <= cut);
                    for label in parsed.cells.keys() {
                        assert!(label == "table1/db" || label == "table1/jess");
                    }
                }
                Err(JournalError::Corrupt(_)) => {
                    assert!(cut < header_len, "only a cut header refuses; got cut={cut}");
                }
                Err(e) => panic!("unexpected error class at cut={cut}: {e}"),
            }
        }
    }
}
