//! Table 5: accuracy of the timer-based vs the counter-based trigger,
//! field-access instrumentation under Full-Duplication (§4.6).
//!
//! The paper matched the two by sample count (counter interval 30,000 ≈
//! the 10 ms timer's sample count) and found the counter far more accurate
//! (84% vs 63% average overlap): the timer mis-attributes samples to
//! whatever check happens to follow a long-latency stretch, and its period
//! can alias with loop periods.

use std::fmt;

use isf_core::{Options, Strategy};
use isf_exec::Trigger;
use isf_profile::overlap::field_access_overlap;

use isf_obs::Json;

use crate::runner::{
    cell, instrument, par_cells_journaled, perfect_profile, prepare_for_runs, prepare_suite,
    run_prepared_module, split_results, CellError, JournalPayload, Kinds,
};
use crate::{mean, write_errors, Scale};

/// One benchmark row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Timer-based trigger accuracy (overlap %, field access).
    pub time_based: f64,
    /// Counter-based trigger accuracy (overlap %, field access).
    pub counter_based: f64,
    /// Samples taken by the counter run (the matching target).
    pub counter_samples: u64,
    /// Samples taken by the timer run.
    pub timer_samples: u64,
}

impl JournalPayload for Row {
    fn encode(&self) -> Json {
        Json::obj([
            ("bench", self.bench.into()),
            ("time_based", self.time_based.into()),
            ("counter_based", self.counter_based.into()),
            ("counter_samples", self.counter_samples.into()),
            ("timer_samples", self.timer_samples.into()),
        ])
    }

    fn decode(v: &Json) -> Option<Self> {
        Some(Row {
            bench: isf_workloads::canonical_name(v.get("bench")?.as_str()?)?,
            time_based: v.get("time_based")?.as_f64()?,
            counter_based: v.get("counter_based")?.as_f64()?,
            counter_samples: v.get("counter_samples")?.as_u64()?,
            timer_samples: v.get("timer_samples")?.as_u64()?,
        })
    }
}

/// The reproduced Table 5.
#[derive(Clone, Debug)]
pub struct Table5 {
    /// Per-benchmark rows, suite order.
    pub rows: Vec<Row>,
    /// Average timer-based accuracy.
    pub avg_time_based: f64,
    /// Average counter-based accuracy.
    pub avg_counter_based: f64,
    /// Cells that failed (prepare or experiment), suite order.
    pub errors: Vec<CellError>,
}

/// Runs the experiment. The counter interval is chosen per scale so that
/// roughly a hundred samples are taken (the paper's 30,000 at its
/// benchmark sizes); the timer period is then matched to produce a similar
/// sample count, mirroring the paper's fair-comparison setup.
pub fn run(scale: Scale) -> Table5 {
    let suite = prepare_suite(scale);
    let results = par_cells_journaled(
        suite
            .benches
            .iter()
            .map(|b| {
                cell(format!("table5/{}", b.name), move || {
                    let perfect = perfect_profile(b, Kinds::FieldAccess);
                    let (module, _, _) = instrument(
                        &b.module,
                        Kinds::FieldAccess,
                        &Options::new(Strategy::FullDuplication),
                    );
                    // One decode serves the probe, counter and timer runs.
                    let prepared = prepare_for_runs(&module);
                    // Aim for ~120 samples per run. Nudge the interval away
                    // from multiples of small primes so it does not alias
                    // with loop periods — the paper's §4.4 caveat about
                    // deterministic sampling of periodic programs (their
                    // 30,000 is likewise coprime to the benchmarks' loop
                    // lengths).
                    let probe = run_prepared_module(&prepared, Trigger::Never);
                    let mut interval = (probe.checks_executed / 120).max(3);
                    while [2, 3, 5, 7].iter().any(|p| interval.is_multiple_of(*p)) {
                        interval += 1;
                    }
                    let counter = run_prepared_module(&prepared, Trigger::Counter { interval });
                    let counter_acc = field_access_overlap(&perfect, &counter.profile);

                    // Match the timer's sample count to the counter's.
                    let period = (counter.cycles / counter.samples_taken.max(1)).max(1);
                    let timer = run_prepared_module(&prepared, Trigger::TimerBit { period });
                    let timer_acc = field_access_overlap(&perfect, &timer.profile);

                    Row {
                        bench: b.name,
                        time_based: timer_acc,
                        counter_based: counter_acc,
                        counter_samples: counter.samples_taken,
                        timer_samples: timer.samples_taken,
                    }
                })
            })
            .collect(),
    );
    let (rows, cell_errors) = split_results(results);
    let mut errors = suite.errors;
    errors.extend(cell_errors);
    Table5 {
        avg_time_based: mean(rows.iter().map(|r| r.time_based)),
        avg_counter_based: mean(rows.iter().map(|r| r.counter_based)),
        rows,
        errors,
    }
}

impl Table5 {
    /// Emits the table as JSONL records (no-op when the emitter is off).
    pub fn emit_jsonl(&self) {
        use isf_obs::{emit, Json};
        if !emit::enabled() {
            return;
        }
        for r in &self.rows {
            emit::record(&Json::obj([
                ("type", "row".into()),
                ("experiment", "table5".into()),
                ("bench", r.bench.into()),
                ("time_based_pct", r.time_based.into()),
                ("counter_based_pct", r.counter_based.into()),
                ("counter_samples", r.counter_samples.into()),
                ("timer_samples", r.timer_samples.into()),
            ]));
        }
        let mut summary = vec![
            ("type", "summary".into()),
            ("experiment", "table5".into()),
            ("avg_time_based_pct", self.avg_time_based.into()),
            ("avg_counter_based_pct", self.avg_counter_based.into()),
        ];
        summary.extend(crate::runner::summary_profile_fields());
        emit::record(&Json::obj(summary));
    }
}

impl fmt::Display for Table5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 5: trigger accuracy, field-access, Full-Duplication"
        )?;
        writeln!(
            f,
            "{:<14} {:>15} {:>18} {:>10} {:>10}",
            "benchmark", "time-based (%)", "counter-based (%)", "ctr samp", "tmr samp"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>15.0} {:>18.0} {:>10} {:>10}",
                r.bench, r.time_based, r.counter_based, r.counter_samples, r.timer_samples
            )?;
        }
        writeln!(
            f,
            "{:<14} {:>15.0} {:>18.0}",
            "average", self.avg_time_based, self.avg_counter_based
        )?;
        writeln!(f, "(paper averages: time-based 63%, counter-based 84%)")?;
        write_errors(f, &self.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let t = run(Scale::Smoke);
        assert_eq!(t.rows.len(), 10);
        // The headline: counter-based sampling is more accurate on
        // average when sample counts are matched.
        assert!(
            t.avg_counter_based > t.avg_time_based,
            "counter {:.0}% must beat timer {:.0}%",
            t.avg_counter_based,
            t.avg_time_based
        );
        // Sample counts were actually matched (same order of magnitude).
        for r in &t.rows {
            assert!(r.counter_samples > 20, "{}: too few samples", r.bench);
            let ratio = r.timer_samples.max(1) as f64 / r.counter_samples.max(1) as f64;
            assert!(
                (0.2..=5.0).contains(&ratio),
                "{}: sample counts diverge ({} vs {})",
                r.bench,
                r.timer_samples,
                r.counter_samples
            );
        }
        // Counter-based accuracy is decent everywhere at ~120 samples.
        assert!(t.avg_counter_based > 55.0);
    }
}
