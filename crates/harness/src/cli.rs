//! Command-line parsing for `isf-harness`, as a pure function from
//! argument list to [`Command`] so every flag's validation is unit-testable
//! without spawning the binary.
//!
//! Error policy: a *structurally* wrong invocation (no experiments, an
//! unknown flag, a misshapen subcommand) gets the full usage text; a flag
//! with a *bad value* (`--jobs 0`, an overflowing `--retries`, a garbage
//! `--fault-inject` spec) gets a one-line diagnostic naming the flag, the
//! offending value, and what would be accepted — never a panic, never a
//! silent fallback.

use std::path::PathBuf;

use crate::explore::{self, ExploreSpec};
use crate::runner;
use crate::Scale;

/// The canonical experiment list `all` expands to, in run order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table1", "table2", "table3", "table4", "table5", "fig7", "fig8",
];

/// Every name accepted as an experiment argument.
const KNOWN_EXPERIMENTS: &[&str] = &[
    "table1", "table2", "table3", "table4", "table5", "fig7", "fig8", "fig8a", "fig8b", "extras",
    "spin", "all",
];

/// The full usage text (structural errors and `--help`).
pub const USAGE: &str = "usage: isf-harness [--scale smoke|default|paper] [--jobs N]\n\
     \x20                  [--emit json|off] [--emit-path FILE]\n\
     \x20                  [--retries N] [--cell-budget CYCLES]\n\
     \x20                  [--cell-deadline MS] [--run-deadline MS]\n\
     \x20                  [--cancel-after-cycles CYCLES]\n\
     \x20                  [--fault-inject p=<prob>[,seed=<s>]]\n\
     \x20                  [--journal FILE] [--resume] [--no-fuse] [--pgo]\n\
     \x20                  [--profile] [--trace-out FILE] <experiment>...\n\
     \x20      isf-harness --explore schedules=N[,seed=S] [--scale smoke|default|paper]\n\
     \x20                  [--jobs N] [--emit json|off] [--emit-path FILE] <benchmark>...|all\n\
     \x20      isf-harness bench-snapshot [--scale smoke|default|paper] [--jobs N] [--out DIR]\n\
     \x20      isf-harness validate-jsonl <FILE>\n\
     experiments: table1 table2 table3 table4 table5 fig7 fig8 extras all\n\
     N defaults to $ISF_JOBS, then the machine's available parallelism;\n\
     --retries defaults to $ISF_RETRIES (0), --cell-budget to $ISF_CELL_BUDGET (uncapped);\n\
     --cell-deadline cancels any cell attempt running longer than MS wall-clock\n\
     milliseconds (also $ISF_CELL_DEADLINE; 0 = off) — the cell is annotated and the\n\
     run exits 75; --run-deadline stops claiming new cells after MS milliseconds and\n\
     drains (journaled runs resume with --resume); --cancel-after-cycles cancels every\n\
     cell run at a fixed simulated cycle (also $ISF_CANCEL_AFTER) — the deterministic\n\
     stand-in for --cell-deadline in tests;\n\
     --journal defaults to $ISF_JOURNAL (off); --resume replays a journal's finished cells;\n\
     --no-fuse disables superinstruction fusion (also $ISF_FUSE=0) — results are identical;\n\
     --pgo enables profile-guided fusion (also $ISF_PGO=1): each module runs a short\n\
     warmup cell and is re-prepared with guided superinstructions — results are identical;\n\
     --profile enables VM self-profiling (also $ISF_PROFILE=1): per-opcode dispatch\n\
     profiles, fusion coverage, and `metrics`/`span-summary` JSONL records;\n\
     --trace-out writes a Chrome trace-event JSON file (open in Perfetto);\n\
     --explore records N seeded-random thread schedules per benchmark (plus PCT\n\
     priority schedules and a bounded exhaustive DFS for shallow schedule trees) and\n\
     verifies each replays byte-identically on all four engine configurations with\n\
     schedule-independent observables intact — a failure prints the seed that\n\
     reproduces the schedule deterministically";

/// A fully parsed experiment run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunConfig {
    /// Workload scale.
    pub scale: Scale,
    /// `--jobs` worker-thread override.
    pub jobs: Option<usize>,
    /// `--emit json` (`Some(true)`) / `--emit off` (`Some(false)`).
    pub emit_json: Option<bool>,
    /// `--emit-path`: write the JSONL stream here, tables stay on stdout.
    pub emit_path: Option<PathBuf>,
    /// `--retries` override.
    pub retries: Option<usize>,
    /// `--cell-budget` override.
    pub cell_budget: Option<u64>,
    /// `--cell-deadline`: per-cell wall-clock deadline in milliseconds
    /// (`0` = off). A cell attempt that runs longer is cooperatively
    /// cancelled by the watchdog and annotated; the run exits 75.
    pub cell_deadline: Option<u64>,
    /// `--run-deadline`: whole-run wall-clock deadline in milliseconds
    /// (`0` = off). When it elapses, the harness stops claiming new
    /// cells, drains in-flight ones, and exits 75 — journaled runs pick
    /// up where they left off with `--resume`.
    pub run_deadline: Option<u64>,
    /// `--cancel-after-cycles`: cancel every cell run at a fixed
    /// simulated cycle (`0` = off) — the deterministic, byte-reproducible
    /// stand-in for `--cell-deadline` used by tests and CI.
    pub cancel_after: Option<u64>,
    /// `--fault-inject` probability and seed.
    pub fault: Option<(f64, u64)>,
    /// `--journal`: the crash-safe cell journal path.
    pub journal: Option<PathBuf>,
    /// `--resume`: replay the journal's finished cells.
    pub resume: bool,
    /// `--no-fuse`: run the prepared engine without superinstruction
    /// fusion (the `ISF_FUSE=0` escape hatch as a flag). Observable
    /// results are identical either way; this exists for ablation and for
    /// the CI equivalence diff.
    pub no_fuse: bool,
    /// `--pgo`: profile-guided fusion (also `ISF_PGO=1`). Every module
    /// served by the preparation cache first runs a short warmup cell
    /// under the profiled engine and is then re-prepared with guided
    /// superinstructions mined from that profile. Observable results —
    /// stdout, cycle counts, traps, the JSONL stream — are identical to a
    /// statically-fused run; only coverage (and dispatch counts under
    /// `--profile`) move.
    pub pgo: bool,
    /// `--profile`: enable VM self-profiling (the metrics registry,
    /// per-opcode dispatch profiles, fusion coverage, and the
    /// `metrics`/`span-summary` JSONL records). Also `ISF_PROFILE=1`.
    /// Cycle counts and traps are identical either way; tables and the
    /// profiling-independent JSONL records stay byte-identical.
    pub profile: bool,
    /// `--trace-out`: write the run's hierarchical span trace here as
    /// Chrome trace-event JSON (loadable in Perfetto). Implies span
    /// recording but not the metrics registry.
    pub trace_out: Option<PathBuf>,
    /// Validated, `all`-expanded experiment list, in run order.
    pub experiments: Vec<String>,
}

/// A parsed `--explore` invocation: schedule exploration over benchmarks
/// instead of an experiment run.
#[derive(Clone, Debug, PartialEq)]
pub struct ExploreConfig {
    /// Workload scale.
    pub scale: Scale,
    /// `--jobs` worker-thread override.
    pub jobs: Option<usize>,
    /// `--emit json` / `--emit off`.
    pub emit_json: Option<bool>,
    /// `--emit-path`: write the JSONL stream here, the report stays on
    /// stdout.
    pub emit_path: Option<PathBuf>,
    /// The `schedules=N[,seed=S]` spec.
    pub spec: ExploreSpec,
    /// Validated, `all`-expanded benchmark list, in suite order.
    pub benches: Vec<String>,
}

/// A parsed `bench-snapshot` invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotConfig {
    /// Workload scale.
    pub scale: Scale,
    /// `--jobs` worker-thread override.
    pub jobs: Option<usize>,
    /// Output directory.
    pub out: PathBuf,
}

/// What the command line asks for.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Run experiments.
    Run(RunConfig),
    /// Explore thread schedules over benchmarks (`--explore`).
    Explore(ExploreConfig),
    /// Write a dated performance snapshot.
    BenchSnapshot(SnapshotConfig),
    /// Validate a JSONL stream against the record contract.
    ValidateJsonl {
        /// The stream file to validate.
        path: String,
    },
    /// `--help` / `-h`.
    Help,
}

/// Why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// A flag got a bad value: a one-line diagnostic, nonzero exit.
    Bad(String),
    /// The invocation is structurally wrong: show the full usage text.
    Usage,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Bad(m) => write!(f, "{m}"),
            CliError::Usage => write!(f, "{USAGE}"),
        }
    }
}

fn bad(msg: impl Into<String>) -> CliError {
    CliError::Bad(msg.into())
}

fn parse_scale(v: &str) -> Result<Scale, CliError> {
    match v {
        "smoke" => Ok(Scale::Smoke),
        "default" => Ok(Scale::Default),
        "paper" => Ok(Scale::Paper),
        _ => Err(bad(format!(
            "--scale must be `smoke`, `default`, or `paper`, got `{v}`"
        ))),
    }
}

fn parse_jobs(v: &str) -> Result<usize, CliError> {
    v.parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| bad(format!("--jobs must be a positive integer, got `{v}`")))
}

fn next_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a str, CliError> {
    it.next()
        .map(String::as_str)
        .ok_or_else(|| bad(format!("{flag} needs a value")))
}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// [`CliError::Bad`] for a flag with an invalid value (one-line
/// diagnostic); [`CliError::Usage`] for a structurally wrong invocation.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    match args.first().map(String::as_str) {
        Some("bench-snapshot") => return parse_snapshot(&args[1..]),
        Some("validate-jsonl") => {
            let [path] = &args[1..] else {
                return Err(CliError::Usage);
            };
            return Ok(Command::ValidateJsonl { path: path.clone() });
        }
        _ => {}
    }

    let mut cfg = RunConfig {
        scale: Scale::Default,
        jobs: None,
        emit_json: None,
        emit_path: None,
        retries: None,
        cell_budget: None,
        cell_deadline: None,
        run_deadline: None,
        cancel_after: None,
        fault: None,
        journal: None,
        resume: false,
        no_fuse: false,
        pgo: false,
        profile: false,
        trace_out: None,
        experiments: Vec::new(),
    };
    let mut explore_spec: Option<ExploreSpec> = None;
    let mut positionals: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => cfg.scale = parse_scale(next_value(&mut it, "--scale")?)?,
            "--jobs" => cfg.jobs = Some(parse_jobs(next_value(&mut it, "--jobs")?)?),
            "--emit" => {
                cfg.emit_json = Some(match next_value(&mut it, "--emit")? {
                    "json" => true,
                    "off" => false,
                    v => return Err(bad(format!("--emit must be `json` or `off`, got `{v}`"))),
                });
            }
            "--emit-path" => {
                cfg.emit_path = Some(PathBuf::from(next_value(&mut it, "--emit-path")?));
            }
            "--retries" => {
                let v = next_value(&mut it, "--retries")?;
                cfg.retries = Some(v.parse::<usize>().map_err(|_| {
                    bad(format!(
                        "--retries must be a non-negative integer (fitting usize), got `{v}`"
                    ))
                })?);
            }
            "--cell-budget" => {
                let v = next_value(&mut it, "--cell-budget")?;
                cfg.cell_budget = Some(v.parse::<u64>().map_err(|_| {
                    bad(format!(
                        "--cell-budget must be a non-negative cycle count (fitting u64), got `{v}`"
                    ))
                })?);
            }
            "--cell-deadline" => {
                let v = next_value(&mut it, "--cell-deadline")?;
                cfg.cell_deadline = Some(v.parse::<u64>().map_err(|_| {
                    bad(format!(
                        "--cell-deadline must be a non-negative millisecond count (fitting u64), got `{v}`"
                    ))
                })?);
            }
            "--run-deadline" => {
                let v = next_value(&mut it, "--run-deadline")?;
                cfg.run_deadline = Some(v.parse::<u64>().map_err(|_| {
                    bad(format!(
                        "--run-deadline must be a non-negative millisecond count (fitting u64), got `{v}`"
                    ))
                })?);
            }
            "--cancel-after-cycles" => {
                let v = next_value(&mut it, "--cancel-after-cycles")?;
                cfg.cancel_after = Some(v.parse::<u64>().map_err(|_| {
                    bad(format!(
                        "--cancel-after-cycles must be a non-negative cycle count (fitting u64), got `{v}`"
                    ))
                })?);
            }
            "--fault-inject" => {
                let v = next_value(&mut it, "--fault-inject")?;
                cfg.fault = Some(
                    runner::parse_fault_spec(v).map_err(|e| bad(format!("--fault-inject: {e}")))?,
                );
            }
            "--journal" => cfg.journal = Some(PathBuf::from(next_value(&mut it, "--journal")?)),
            "--resume" => cfg.resume = true,
            "--no-fuse" => cfg.no_fuse = true,
            "--pgo" => cfg.pgo = true,
            "--profile" => cfg.profile = true,
            "--trace-out" => {
                cfg.trace_out = Some(PathBuf::from(next_value(&mut it, "--trace-out")?));
            }
            "--explore" => {
                let v = next_value(&mut it, "--explore")?;
                explore_spec =
                    Some(explore::parse_spec(v).map_err(|e| bad(format!("--explore: {e}")))?);
            }
            "--help" | "-h" => return Ok(Command::Help),
            other if other.starts_with('-') => return Err(CliError::Usage),
            other => positionals.push(other.to_owned()),
        }
    }
    if positionals.is_empty() {
        return Err(CliError::Usage);
    }

    if let Some(spec) = explore_spec {
        return finish_explore(cfg, spec, positionals);
    }

    for name in &positionals {
        if !KNOWN_EXPERIMENTS.contains(&name.as_str()) {
            return Err(bad(format!(
                "unknown experiment `{name}` (expected one of: {})",
                KNOWN_EXPERIMENTS.join(" ")
            )));
        }
    }
    cfg.experiments = positionals;
    if cfg.experiments.iter().any(|e| e == "all") {
        cfg.experiments = ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned()).collect();
    }
    Ok(Command::Run(cfg))
}

/// Validates an `--explore` invocation: the positional arguments must be
/// benchmark names (`all` expands to the whole suite), and the run-mode
/// flags that have no meaning under exploration are rejected rather than
/// silently ignored.
fn finish_explore(
    cfg: RunConfig,
    spec: ExploreSpec,
    positionals: Vec<String>,
) -> Result<Command, CliError> {
    let incompatible: &[(&str, bool)] = &[
        ("--retries", cfg.retries.is_some()),
        ("--cell-budget", cfg.cell_budget.is_some()),
        ("--cell-deadline", cfg.cell_deadline.is_some()),
        ("--run-deadline", cfg.run_deadline.is_some()),
        ("--cancel-after-cycles", cfg.cancel_after.is_some()),
        ("--fault-inject", cfg.fault.is_some()),
        ("--journal", cfg.journal.is_some()),
        ("--resume", cfg.resume),
        ("--no-fuse", cfg.no_fuse),
        ("--pgo", cfg.pgo),
        ("--profile", cfg.profile),
        ("--trace-out", cfg.trace_out.is_some()),
    ];
    for &(flag, set) in incompatible {
        if set {
            return Err(bad(format!(
                "--explore cannot be combined with {flag} (exploration runs all four engine configurations itself)"
            )));
        }
    }
    let names = isf_workloads::names();
    for name in &positionals {
        if name != "all" && !names.contains(&name.as_str()) {
            return Err(bad(format!(
                "unknown benchmark `{name}` (expected one of: {} all)",
                names.join(" ")
            )));
        }
    }
    let benches = if positionals.iter().any(|n| n == "all") {
        names.iter().map(|s| (*s).to_owned()).collect()
    } else {
        positionals
    };
    Ok(Command::Explore(ExploreConfig {
        scale: cfg.scale,
        jobs: cfg.jobs,
        emit_json: cfg.emit_json,
        emit_path: cfg.emit_path,
        spec,
        benches,
    }))
}

fn parse_snapshot(args: &[String]) -> Result<Command, CliError> {
    let mut cfg = SnapshotConfig {
        scale: Scale::Smoke,
        jobs: None,
        out: PathBuf::from("."),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => cfg.scale = parse_scale(next_value(&mut it, "--scale")?)?,
            "--jobs" => cfg.jobs = Some(parse_jobs(next_value(&mut it, "--jobs")?)?),
            "--out" => cfg.out = PathBuf::from(next_value(&mut it, "--out")?),
            _ => return Err(CliError::Usage),
        }
    }
    Ok(Command::BenchSnapshot(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    fn run_cfg(args: &[&str]) -> RunConfig {
        match parse(&argv(args)) {
            Ok(Command::Run(cfg)) => cfg,
            other => panic!("expected a run, got {other:?}"),
        }
    }

    fn err(args: &[&str]) -> CliError {
        parse(&argv(args)).expect_err("parse should fail")
    }

    #[test]
    fn parses_a_full_run_invocation() {
        let cfg = run_cfg(&[
            "--scale",
            "smoke",
            "--jobs",
            "4",
            "--emit",
            "json",
            "--emit-path",
            "out.jsonl",
            "--retries",
            "2",
            "--cell-budget",
            "1000",
            "--cell-deadline",
            "250",
            "--run-deadline",
            "60000",
            "--cancel-after-cycles",
            "5000",
            "--fault-inject",
            "p=0.25,seed=7",
            "--journal",
            "j.jsonl",
            "--resume",
            "--no-fuse",
            "--pgo",
            "--profile",
            "--trace-out",
            "trace.json",
            "table4",
            "table1",
        ]);
        assert_eq!(cfg.scale, Scale::Smoke);
        assert_eq!(cfg.jobs, Some(4));
        assert_eq!(cfg.emit_json, Some(true));
        assert_eq!(cfg.emit_path, Some(PathBuf::from("out.jsonl")));
        assert_eq!(cfg.retries, Some(2));
        assert_eq!(cfg.cell_budget, Some(1000));
        assert_eq!(cfg.cell_deadline, Some(250));
        assert_eq!(cfg.run_deadline, Some(60000));
        assert_eq!(cfg.cancel_after, Some(5000));
        assert_eq!(cfg.fault, Some((0.25, 7)));
        assert_eq!(cfg.journal, Some(PathBuf::from("j.jsonl")));
        assert!(cfg.resume);
        assert!(cfg.no_fuse);
        assert!(cfg.pgo);
        assert!(cfg.profile);
        assert_eq!(cfg.trace_out, Some(PathBuf::from("trace.json")));
        assert_eq!(cfg.experiments, vec!["table4", "table1"]);
    }

    #[test]
    fn all_expands_to_the_canonical_list() {
        let cfg = run_cfg(&["all"]);
        assert_eq!(cfg.experiments, ALL_EXPERIMENTS);
        assert!(
            !ALL_EXPERIMENTS.contains(&"spin"),
            "the spin diagnostic must stay out of `all`"
        );
        assert_eq!(
            run_cfg(&["spin"]).experiments,
            vec!["spin"],
            "spin is runnable by name"
        );
        assert_eq!(cfg.scale, Scale::Default);
        assert!(!cfg.resume);
        assert!(!cfg.no_fuse, "fusion is on by default");
        assert!(!cfg.pgo, "profile-guided fusion is opt-in");
        assert!(!cfg.profile, "self-profiling is off by default");
        assert_eq!(cfg.trace_out, None);
    }

    #[test]
    fn jobs_zero_is_a_one_line_value_error() {
        let CliError::Bad(msg) = err(&["--jobs", "0", "table1"]) else {
            panic!("expected a one-line error, got full usage");
        };
        assert!(msg.contains("--jobs"), "{msg}");
        assert!(msg.contains("`0`"), "{msg}");
        assert!(!msg.contains('\n'), "must be one line: {msg}");
    }

    #[test]
    fn garbage_and_overflowing_counters_are_one_line_value_errors() {
        for (args, flag, value) in [
            (vec!["--retries", "many", "table1"], "--retries", "`many`"),
            (
                vec!["--retries", "99999999999999999999999999", "table1"],
                "--retries",
                "`99999999999999999999999999`",
            ),
            (
                vec!["--cell-budget", "-3", "table1"],
                "--cell-budget",
                "`-3`",
            ),
            (
                vec!["--cell-budget", "18446744073709551616", "table1"],
                "--cell-budget",
                "`18446744073709551616`",
            ),
            (
                vec!["--cell-deadline", "soon", "table1"],
                "--cell-deadline",
                "`soon`",
            ),
            (
                vec!["--run-deadline", "-1", "table1"],
                "--run-deadline",
                "`-1`",
            ),
            (
                vec!["--cancel-after-cycles", "1e9", "table1"],
                "--cancel-after-cycles",
                "`1e9`",
            ),
            (vec!["--jobs", "4x", "table1"], "--jobs", "`4x`"),
        ] {
            let CliError::Bad(msg) = err(&args) else {
                panic!("{args:?}: expected a one-line error");
            };
            assert!(msg.contains(flag), "{args:?}: {msg}");
            assert!(msg.contains(value), "{args:?}: {msg}");
            assert!(!msg.contains('\n'), "{args:?}: must be one line: {msg}");
        }
    }

    #[test]
    fn malformed_fault_inject_specs_are_one_line_value_errors() {
        for spec in ["p=2", "p=x", "seed=1", "bogus", ""] {
            let CliError::Bad(msg) = err(&["--fault-inject", spec, "table1"]) else {
                panic!("spec `{spec}`: expected a one-line error");
            };
            assert!(msg.starts_with("--fault-inject:"), "{msg}");
            assert!(!msg.contains('\n'), "must be one line: {msg}");
        }
    }

    #[test]
    fn missing_values_and_unknown_names_fail_cleanly() {
        assert!(matches!(err(&["--jobs"]), CliError::Bad(_)));
        assert!(matches!(err(&["table1", "--trace-out"]), CliError::Bad(_)));
        assert!(matches!(
            err(&["--scale", "huge", "table1"]),
            CliError::Bad(_)
        ));
        assert!(matches!(
            err(&["--emit", "xml", "table1"]),
            CliError::Bad(_)
        ));
        let CliError::Bad(msg) = err(&["table9"]) else {
            panic!("unknown experiment should be a one-line error");
        };
        assert!(msg.contains("table9"), "{msg}");
        assert_eq!(err(&[]), CliError::Usage, "no experiments: full usage");
        assert_eq!(err(&["--wat", "table1"]), CliError::Usage, "unknown flag");
    }

    #[test]
    fn explore_parses_benchmarks_and_expands_all() {
        let Ok(Command::Explore(cfg)) = parse(&argv(&[
            "--explore",
            "schedules=32,seed=7",
            "--scale",
            "smoke",
            "--jobs",
            "2",
            "--emit",
            "json",
            "--emit-path",
            "x.jsonl",
            "pbob",
            "volano",
        ])) else {
            panic!("explore invocation should parse");
        };
        assert_eq!(cfg.scale, Scale::Smoke);
        assert_eq!(cfg.jobs, Some(2));
        assert_eq!(cfg.emit_json, Some(true));
        assert_eq!(cfg.emit_path, Some(PathBuf::from("x.jsonl")));
        assert_eq!(cfg.spec.schedules, 32);
        assert_eq!(cfg.spec.seed, 7);
        assert_eq!(cfg.benches, vec!["pbob", "volano"]);

        let Ok(Command::Explore(all)) = parse(&argv(&["--explore", "schedules=1", "all"])) else {
            panic!("explore all should parse");
        };
        assert_eq!(all.benches, isf_workloads::names());
    }

    #[test]
    fn explore_rejects_bad_specs_and_unknown_benchmarks() {
        for args in [
            vec!["--explore", "schedules=0", "pbob"],
            vec!["--explore", "seed=7", "pbob"],
            vec!["--explore", "nonsense", "pbob"],
        ] {
            let CliError::Bad(msg) = err(&args) else {
                panic!("{args:?}: expected a one-line error");
            };
            assert!(msg.starts_with("--explore:"), "{args:?}: {msg}");
            assert!(!msg.contains('\n'), "{args:?}: must be one line: {msg}");
        }
        let CliError::Bad(msg) = err(&["--explore", "schedules=4", "table1"]) else {
            panic!("experiment names are not benchmarks");
        };
        assert!(msg.contains("unknown benchmark `table1`"), "{msg}");
        assert_eq!(
            err(&["--explore", "schedules=4"]),
            CliError::Usage,
            "no benchmarks: full usage"
        );
    }

    #[test]
    fn explore_rejects_run_only_flags() {
        for (args, flag) in [
            (
                vec!["--explore", "schedules=4", "--journal", "j", "pbob"],
                "--journal",
            ),
            (
                vec!["--explore", "schedules=4", "--resume", "pbob"],
                "--resume",
            ),
            (
                vec!["--explore", "schedules=4", "--no-fuse", "pbob"],
                "--no-fuse",
            ),
            (vec!["--explore", "schedules=4", "--pgo", "pbob"], "--pgo"),
            (
                vec!["--explore", "schedules=4", "--retries", "2", "pbob"],
                "--retries",
            ),
            (
                vec![
                    "--explore",
                    "schedules=4",
                    "--cancel-after-cycles",
                    "9",
                    "pbob",
                ],
                "--cancel-after-cycles",
            ),
        ] {
            let CliError::Bad(msg) = err(&args) else {
                panic!("{args:?}: expected a one-line error");
            };
            assert!(msg.contains(flag), "{args:?}: {msg}");
            assert!(!msg.contains('\n'), "{args:?}: must be one line: {msg}");
        }
    }

    #[test]
    fn subcommands_parse() {
        assert_eq!(
            parse(&argv(&["validate-jsonl", "s.jsonl"])),
            Ok(Command::ValidateJsonl {
                path: "s.jsonl".to_owned()
            })
        );
        assert_eq!(parse(&argv(&["validate-jsonl"])), Err(CliError::Usage));
        let Ok(Command::BenchSnapshot(cfg)) =
            parse(&argv(&["bench-snapshot", "--scale", "smoke", "--out", "d"]))
        else {
            panic!("bench-snapshot should parse");
        };
        assert_eq!(cfg.scale, Scale::Smoke);
        assert_eq!(cfg.out, PathBuf::from("d"));
        assert!(matches!(
            parse(&argv(&["bench-snapshot", "--jobs", "0"])),
            Err(CliError::Bad(_))
        ));
        assert_eq!(parse(&argv(&["--help"])), Ok(Command::Help));
    }
}
