//! Table 4: overhead and accuracy of sampled instrumentation across
//! sample intervals, for Full-Duplication and No-Duplication, with both
//! example instrumentations applied together (§4.4).
//!
//! Paper shape: at interval 1,000 Full-Duplication collects 94%/97%
//! (call-edge/field-access) accurate profiles at 6.3% total overhead;
//! accuracy erodes slowly through 10,000 and collapses at 100,000 when too
//! few samples remain; No-Duplication matches the accuracy but pays its
//! ~50% field-access checking overhead at every interval.

use std::fmt;

use isf_core::{Options, Strategy};
use isf_exec::{thread_preparations, Trigger};
use isf_profile::overlap::{call_edge_overlap, field_access_overlap};

use isf_obs::Json;

use crate::runner::{
    cell, instrument, par_cells_journaled, perfect_profile, prepare_for_runs, prepare_suite,
    run_prepared_module, split_results, CellError, JournalPayload, Kinds,
};
use crate::{mean, pct, write_errors, Scale};

/// The sample intervals of the paper's sweep.
pub const INTERVALS: [u64; 6] = [1, 10, 100, 1_000, 10_000, 100_000];

/// One interval's averages for one strategy.
#[derive(Clone, Debug)]
pub struct Row {
    /// The sample interval.
    pub interval: u64,
    /// Mean number of samples taken per benchmark run.
    pub num_samples: f64,
    /// Overhead of taking samples, excluding the framework overhead,
    /// percent ("Sampled Instrum." column).
    pub sampled_instr: f64,
    /// Total overhead over the uninstrumented baseline, percent.
    pub total: f64,
    /// Call-edge overlap accuracy, percent.
    pub call_edge_accuracy: f64,
    /// Field-access overlap accuracy, percent.
    pub field_access_accuracy: f64,
}

/// The reproduced Table 4: one sweep per strategy.
#[derive(Clone, Debug)]
pub struct Table4 {
    /// Full-Duplication sweep.
    pub full_duplication: Vec<Row>,
    /// No-Duplication sweep.
    pub no_duplication: Vec<Row>,
    /// Cells that failed in either sweep (Full-Duplication first).
    pub errors: Vec<CellError>,
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Table4 {
    let (full_duplication, mut errors) = sweep(scale, Strategy::FullDuplication);
    let (no_duplication, nd_errors) = sweep(scale, Strategy::NoDuplication);
    errors.extend(nd_errors);
    Table4 {
        full_duplication,
        no_duplication,
        errors,
    }
}

/// One benchmark's measurements at one interval — a table4 cell produces
/// one per swept interval.
#[derive(Clone, Debug)]
struct Meas {
    samples: f64,
    sampled_instr: f64,
    total: f64,
    acc_call: f64,
    acc_field: f64,
}

impl JournalPayload for Vec<Meas> {
    fn encode(&self) -> Json {
        Json::Arr(
            self.iter()
                .map(|m| {
                    Json::obj([
                        ("samples", m.samples.into()),
                        ("sampled_instr", m.sampled_instr.into()),
                        ("total", m.total.into()),
                        ("acc_call", m.acc_call.into()),
                        ("acc_field", m.acc_field.into()),
                    ])
                })
                .collect(),
        )
    }

    fn decode(v: &Json) -> Option<Self> {
        v.as_arr()?
            .iter()
            .map(|m| {
                Some(Meas {
                    samples: m.get("samples")?.as_f64()?,
                    sampled_instr: m.get("sampled_instr")?.as_f64()?,
                    total: m.get("total")?.as_f64()?,
                    acc_call: m.get("acc_call")?.as_f64()?,
                    acc_field: m.get("acc_field")?.as_f64()?,
                })
            })
            .collect()
    }
}

fn sweep(scale: Scale, strategy: Strategy) -> (Vec<Row>, Vec<CellError>) {
    let suite = prepare_suite(scale);
    let benches = &suite.benches;
    // One cell per benchmark: instrument and pre-decode once, then run
    // the whole interval sweep against the decoded form.
    let results = par_cells_journaled(
        benches
            .iter()
            .map(|b| {
                cell(format!("table4/{strategy:?}/{}", b.name), move || {
                    let (module, _, _) =
                        instrument(&b.module, Kinds::Both, &Options::new(strategy));
                    let perfect = perfect_profile(b, Kinds::Both);
                    let prepared = prepare_for_runs(&module);
                    // The decoded form is fetched once per cell (shared
                    // through the preparation cache when another cell
                    // already decoded the same module); every run of the
                    // sweep below replays it. The counter is thread-local
                    // and a cell runs entirely on one worker thread, so
                    // the assertion is race-free even while other cells
                    // prepare concurrently.
                    let preparations_before = thread_preparations();
                    let framework_cycles =
                        run_prepared_module(&prepared, Trigger::Never).cycles as f64;
                    let baseline_cycles = b.baseline.cycles as f64;
                    let meas: Vec<Meas> = INTERVALS
                        .iter()
                        .map(|&interval| {
                            let o = run_prepared_module(&prepared, Trigger::Counter { interval });
                            Meas {
                                samples: o.samples_taken as f64,
                                sampled_instr: (o.cycles as f64 - framework_cycles)
                                    / baseline_cycles
                                    * 100.0,
                                total: (o.cycles as f64 - baseline_cycles) / baseline_cycles
                                    * 100.0,
                                acc_call: call_edge_overlap(&perfect, &o.profile),
                                acc_field: field_access_overlap(&perfect, &o.profile),
                            }
                        })
                        .collect();
                    assert_eq!(
                        thread_preparations(),
                        preparations_before,
                        "interval sweep re-prepared an already-decoded module"
                    );
                    meas
                })
            })
            .collect(),
    );
    let (per_bench, cell_errors) = split_results(results);
    let mut errors = suite.errors;
    errors.extend(cell_errors);

    // Transpose: average each interval across the surviving benchmarks.
    // The summation order is the fixed suite order, so the means are
    // bit-identical however the cells were scheduled.
    let rows = INTERVALS
        .iter()
        .enumerate()
        .map(|(k, &interval)| Row {
            interval,
            num_samples: mean(per_bench.iter().map(|m| m[k].samples)),
            sampled_instr: mean(per_bench.iter().map(|m| m[k].sampled_instr)),
            total: mean(per_bench.iter().map(|m| m[k].total)),
            call_edge_accuracy: mean(per_bench.iter().map(|m| m[k].acc_call)),
            field_access_accuracy: mean(per_bench.iter().map(|m| m[k].acc_field)),
        })
        .collect();
    (rows, errors)
}

impl Table4 {
    /// Emits the table as JSONL records (no-op when the emitter is off).
    pub fn emit_jsonl(&self) {
        use isf_obs::{emit, Json};
        if !emit::enabled() {
            return;
        }
        for (strategy, rows) in [
            ("full_duplication", &self.full_duplication),
            ("no_duplication", &self.no_duplication),
        ] {
            for r in rows {
                emit::record(&Json::obj([
                    ("type", "row".into()),
                    ("experiment", "table4".into()),
                    ("strategy", strategy.into()),
                    ("interval", r.interval.into()),
                    ("num_samples", r.num_samples.into()),
                    ("sampled_instr_pct", r.sampled_instr.into()),
                    ("total_pct", r.total.into()),
                    ("call_edge_accuracy_pct", r.call_edge_accuracy.into()),
                    ("field_access_accuracy_pct", r.field_access_accuracy.into()),
                ]));
            }
        }
    }
}

fn write_sweep(f: &mut fmt::Formatter<'_>, title: &str, rows: &[Row]) -> fmt::Result {
    writeln!(f, "{title}")?;
    writeln!(
        f,
        "{:>9} {:>12} {:>14} {:>10} {:>10} {:>12}",
        "interval", "num samples", "sampled i. (%)", "total (%)", "call (%)", "field (%)"
    )?;
    for r in rows {
        writeln!(
            f,
            "{:>9} {:>12.0} {:>14} {:>10} {:>10.0} {:>12.0}",
            r.interval,
            r.num_samples,
            pct(r.sampled_instr),
            pct(r.total),
            r.call_edge_accuracy,
            r.field_access_accuracy
        )?;
    }
    Ok(())
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 4: sampled instrumentation overhead and accuracy (both kinds)"
        )?;
        write_sweep(f, "-- Full-Duplication --", &self.full_duplication)?;
        write_sweep(f, "-- No-Duplication --", &self.no_duplication)?;
        writeln!(
            f,
            "(paper, full-dup @1000: total 6.3%, accuracy 94/97; no-dup total floors at ~55%)"
        )?;
        write_errors(f, &self.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let t = run(Scale::Smoke);
        let fd = &t.full_duplication;
        assert_eq!(fd.len(), INTERVALS.len());

        // Interval 1 is the perfect profile: 100% overlap on both kinds.
        assert!(fd[0].call_edge_accuracy > 99.9);
        assert!(fd[0].field_access_accuracy > 99.9);

        // Monotone trade-off: longer intervals cost less and know less.
        for w in fd.windows(2) {
            assert!(w[1].total <= w[0].total + 1e-6);
            assert!(w[1].num_samples <= w[0].num_samples);
            assert!(
                w[1].field_access_accuracy <= w[0].field_access_accuracy + 5.0,
                "accuracy should not rise materially with the interval"
            );
        }

        // The paper's sweet spot: by interval 1000 the sampling surcharge
        // is small while accuracy is still high at smoke scale's ~1e4
        // checks (interval 100 here corresponds to ~100 samples).
        let at = |i: u64, rows: &[Row]| rows.iter().find(|r| r.interval == i).cloned().unwrap();
        assert!(at(1_000, fd).sampled_instr < at(1, fd).sampled_instr / 5.0);
        assert!(at(100, fd).field_access_accuracy > 60.0);

        // The tail collapses: 100k interval leaves almost no samples.
        assert!(at(100_000, fd).num_samples < at(1, fd).num_samples / 1_000.0);

        // No-Duplication: accuracy comparable, but the total overhead
        // floors at its checking overhead instead of the framework's.
        let nd = &t.no_duplication;
        assert!(at(1, nd).call_edge_accuracy > 99.9);
        let nd_floor = at(100_000, nd).total;
        let fd_floor = at(100_000, fd).total;
        assert!(
            nd_floor > fd_floor,
            "no-dup floor {nd_floor:.1}% must exceed full-dup floor {fd_floor:.1}%"
        );
    }

    #[test]
    fn rows_are_byte_identical_serial_and_parallel() {
        // The determinism contract of the parallel harness: the rendered
        // table — every formatted digit — must not depend on the worker
        // count.
        let _guard = crate::runner::JOBS_TEST_LOCK.lock().unwrap();
        crate::runner::set_jobs(1);
        let serial = run(Scale::Smoke).to_string();
        crate::runner::set_jobs(4);
        crate::runner::set_profiling(true);
        let hits_before = isf_obs::metrics::snapshot().counter("prep.cache.hits");
        let parallel = run(Scale::Smoke).to_string();
        let hits_after = isf_obs::metrics::snapshot().counter("prep.cache.hits");
        crate::runner::set_profiling(false);
        crate::runner::set_jobs(0);
        assert_eq!(serial, parallel, "table 4 output depends on the job count");
        // The serial sweep populated the preparation cache, so the repeat
        // sweep serves its identical (program, plan) decodes from it — and
        // the registry, enabled around the repeat sweep, counted the hits.
        assert!(
            hits_after > hits_before,
            "repeat sweep should hit the shared preparation cache"
        );
    }
}
