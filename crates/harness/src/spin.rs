//! Diagnostic experiment: one deliberately non-terminating cell among
//! bounded siblings. Not part of the paper — `spin` exists to exercise
//! the hung-cell machinery end to end: run it under `--cell-deadline`
//! (or `--cell-budget`, or `--cancel-after-cycles`) and the spinning
//! cell is cancelled and annotated while its siblings complete
//! normally. Run it with none of those and it hangs, on purpose.
//!
//! Hidden from `--help`'s experiment list (it reproduces nothing), but
//! accepted by name like any other experiment and journaled the same
//! way, so `--resume` over a deadlined `spin` run replays the siblings
//! and retries only the hung cell.

use std::fmt;

use isf_exec::Trigger;
use isf_obs::Json;

use crate::runner::{
    cell, par_cells_journaled, run_module, split_results, CellError, JournalPayload,
};
use crate::{write_errors, Scale};

/// The hot loop never makes progress: `i` stays `0`, the condition stays
/// true, and the loop body is pure arithmetic — no allocation, no calls —
/// so nothing but fuel, cancellation, or a deadline can stop it.
const SPIN_SOURCE: &str = "
fn main() {
    var i = 0;
    while (i < 1) {
        i = i * 1;
    }
    print(i);
}
";

/// A bounded sibling: the same shape of loop, with a horizon. `@N@` is
/// the iteration count.
const SIBLING_TEMPLATE: &str = "
fn main() {
    var i = 0;
    var acc = 0;
    while (i < @N@) {
        acc = (acc + i * 31 + 7) % 1000000007;
        i = i + 1;
    }
    print(acc);
}
";

/// One completed cell: its deterministic run measurements.
#[derive(Clone, Debug)]
pub struct Row {
    /// Cell label (`hang`, `count-a`, ...).
    pub label: String,
    /// Simulated cycles the run took.
    pub cycles: u64,
    /// The value the program printed.
    pub output: i64,
}

impl JournalPayload for Row {
    fn encode(&self) -> Json {
        Json::obj([
            ("label", self.label.as_str().into()),
            ("cycles", self.cycles.into()),
            ("output", self.output.into()),
        ])
    }

    fn decode(v: &Json) -> Option<Self> {
        Some(Row {
            label: v.get("label")?.as_str()?.to_owned(),
            cycles: v.get("cycles")?.as_u64()?,
            // Outputs here are small (mod 1e9), so the f64 round-trip
            // through the JSON number is exact.
            output: v.get("output")?.as_f64()? as i64,
        })
    }
}

/// The diagnostic's outcome: whichever cells finished, plus the error
/// annotations for the ones that did not.
#[derive(Clone, Debug)]
pub struct Spin {
    /// Rows for completed cells, submission order.
    pub rows: Vec<Row>,
    /// Failed cells — under a deadline, the hung one.
    pub errors: Vec<CellError>,
}

/// The source of every cell, in submission order: the spinner first, so
/// its siblings demonstrably complete while it is still hanging.
fn cells(scale: Scale) -> Vec<(&'static str, String)> {
    let f = scale.factor();
    let sibling = |n: u64| SIBLING_TEMPLATE.replace("@N@", &n.to_string());
    vec![
        ("hang", SPIN_SOURCE.to_owned()),
        ("count-a", sibling(300 * f)),
        ("count-b", sibling(700 * f)),
        ("count-c", sibling(1100 * f)),
    ]
}

/// Runs the diagnostic, one isolated cell per program.
pub fn run(scale: Scale) -> Spin {
    let results = par_cells_journaled(
        cells(scale)
            .into_iter()
            .map(|(name, source)| {
                cell(format!("spin/{name}"), move || {
                    let module = isf_frontend::compile(&source)
                        .unwrap_or_else(|e| panic!("spin program `{name}` failed to compile: {e}"));
                    let outcome = run_module(&module, Trigger::Never);
                    Row {
                        label: name.to_owned(),
                        cycles: outcome.cycles,
                        output: outcome.output.first().copied().unwrap_or(0),
                    }
                })
            })
            .collect(),
    );
    let (rows, errors) = split_results(results);
    Spin { rows, errors }
}

impl Spin {
    /// Emits the rows as JSONL records (no-op when the emitter is off).
    pub fn emit_jsonl(&self) {
        use isf_obs::emit;
        if !emit::enabled() {
            return;
        }
        for r in &self.rows {
            emit::record(&Json::obj([
                ("type", "row".into()),
                ("experiment", "spin".into()),
                ("label", r.label.as_str().into()),
                ("sim_cycles", r.cycles.into()),
                ("output", r.output.into()),
            ]));
        }
        let mut summary = vec![
            ("type", "summary".into()),
            ("experiment", "spin".into()),
            ("completed", self.rows.len().into()),
            ("failed", self.errors.len().into()),
        ];
        summary.extend(crate::runner::summary_profile_fields());
        emit::record(&Json::obj(summary));
    }
}

impl fmt::Display for Spin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Spin: hung-cell diagnostic (not part of the paper)")?;
        writeln!(f, "{:<12} {:>14} {:>12}", "cell", "sim cycles", "output")?;
        for r in &self.rows {
            writeln!(f, "{:<12} {:>14} {:>12}", r.label, r.cycles, r.output)?;
        }
        writeln!(
            f,
            "{} of {} cells completed",
            self.rows.len(),
            self.rows.len() + self.errors.len()
        )?;
        write_errors(f, &self.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isf_exec::{run_prepared, CostModel, ExecLimits, PreparedModule, TrapKind, VmConfig};

    /// Runs one of the diagnostic's programs under an explicit fuel cap,
    /// bypassing the harness globals so parallel tests cannot interfere.
    fn run_capped(source: &str, cycles: u64) -> Result<isf_exec::Outcome, isf_exec::VmError> {
        let module = isf_frontend::compile(source).expect("spin sources compile");
        let prepared = PreparedModule::prepare(&module, &CostModel::default());
        let cfg = VmConfig {
            limits: ExecLimits::cycles(cycles),
            ..VmConfig::default()
        };
        run_prepared(&prepared, &cfg)
    }

    #[test]
    fn the_spinner_really_spins() {
        let err = run_capped(SPIN_SOURCE, 100_000).expect_err("must not terminate");
        assert!(matches!(err.kind, TrapKind::FuelExhausted(_)));
    }

    #[test]
    fn the_siblings_really_terminate() {
        for (name, source) in cells(Scale::Smoke) {
            if name == "hang" {
                continue;
            }
            let outcome = run_capped(&source, 100_000_000)
                .unwrap_or_else(|e| panic!("sibling `{name}` trapped: {e}"));
            assert_eq!(outcome.output.len(), 1, "sibling `{name}` prints once");
        }
    }

    #[test]
    fn rows_roundtrip_through_the_journal_payload() {
        let row = Row {
            label: "count-a".to_owned(),
            cycles: 12_345,
            output: 678,
        };
        let decoded = Row::decode(&row.encode()).expect("decodes");
        assert_eq!(decoded.label, row.label);
        assert_eq!(decoded.cycles, row.cycles);
        assert_eq!(decoded.output, row.output);
    }
}
