//! Experiments beyond the paper's tables, for the features its deployment
//! story assumes: sampled Ball–Larus path profiling and selective
//! (hot-methods-only) instrumentation. Run with `isf-harness -- extras`.

use std::collections::HashSet;
use std::fmt;

use isf_core::{instrument_module, instrument_module_selective, Options, Strategy};
use isf_exec::Trigger;
use isf_instr::{ModulePlan, PathProfileInstrumentation};
use isf_profile::hotness;
use isf_profile::overlap::path_overlap;

use isf_obs::Json;

use crate::runner::{
    cell, instrument, overhead_pct, par_cells_journaled, plan_for, prepare_for_runs, prepare_suite,
    run_module, run_prepared_module, split_results, CellError, JournalPayload, Kinds,
};
use crate::{mean, pct, write_errors, Scale};

/// The sample intervals of the path-profiling sweep.
const PATH_INTERVALS: [u64; 4] = [1, 10, 100, 1_000];

/// One row of the path-profiling sweep.
#[derive(Clone, Debug)]
pub struct PathRow {
    /// The sample interval.
    pub interval: u64,
    /// Total overhead over the baseline, percent (suite average).
    pub total: f64,
    /// Path-profile overlap accuracy, percent (suite average).
    pub accuracy: f64,
    /// Mean complete paths recorded per benchmark.
    pub paths_recorded: f64,
}

/// One benchmark's path measurements at one interval — an extras cell
/// produces one per swept interval alongside its selective row.
#[derive(Clone, Debug)]
struct PathMeas {
    total: f64,
    accuracy: f64,
    events: f64,
}

/// One row of the selective-instrumentation comparison.
#[derive(Clone, Debug)]
pub struct SelectiveRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// Total sampling overhead with every method instrumented, percent.
    pub all_methods: f64,
    /// Total sampling overhead with only the 90%-heat methods, percent.
    pub hot_only: f64,
    /// Space increase with every method instrumented, bytes.
    pub all_space: usize,
    /// Space increase with only the hot methods, bytes.
    pub hot_space: usize,
    /// Number of hot methods selected.
    pub hot_count: usize,
}

impl JournalPayload for (Vec<PathMeas>, SelectiveRow) {
    fn encode(&self) -> Json {
        let (path, s) = self;
        Json::obj([
            (
                "path",
                Json::Arr(
                    path.iter()
                        .map(|m| {
                            Json::obj([
                                ("total", m.total.into()),
                                ("accuracy", m.accuracy.into()),
                                ("events", m.events.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("bench", s.bench.into()),
            ("all_methods", s.all_methods.into()),
            ("hot_only", s.hot_only.into()),
            ("all_space", s.all_space.into()),
            ("hot_space", s.hot_space.into()),
            ("hot_count", s.hot_count.into()),
        ])
    }

    fn decode(v: &Json) -> Option<Self> {
        let path = v
            .get("path")?
            .as_arr()?
            .iter()
            .map(|m| {
                Some(PathMeas {
                    total: m.get("total")?.as_f64()?,
                    accuracy: m.get("accuracy")?.as_f64()?,
                    events: m.get("events")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<PathMeas>>>()?;
        let selective = SelectiveRow {
            bench: isf_workloads::canonical_name(v.get("bench")?.as_str()?)?,
            all_methods: v.get("all_methods")?.as_f64()?,
            hot_only: v.get("hot_only")?.as_f64()?,
            all_space: usize::try_from(v.get("all_space")?.as_u64()?).ok()?,
            hot_space: usize::try_from(v.get("hot_space")?.as_u64()?).ok()?,
            hot_count: usize::try_from(v.get("hot_count")?.as_u64()?).ok()?,
        };
        Some((path, selective))
    }
}

/// The extras report.
#[derive(Clone, Debug)]
pub struct Extras {
    /// Path-profiling sweep (Full-Duplication, exhaustive-vs-sampled).
    pub path_rows: Vec<PathRow>,
    /// Selective instrumentation per benchmark.
    pub selective_rows: Vec<SelectiveRow>,
    /// Cells that failed (prepare or experiment), suite order.
    pub errors: Vec<CellError>,
}

/// Runs both extra experiments, one cell per benchmark: the benchmark's
/// path-profiling interval series (averaged across the suite afterwards)
/// plus its selective-instrumentation row.
pub fn run(scale: Scale) -> Extras {
    let suite = prepare_suite(scale);

    let results = par_cells_journaled(
        suite
            .benches
            .iter()
            .map(|b| {
                cell(format!("extras/{}", b.name), move || {
                    // --- Sampled path profiling. --------------------------
                    let plan = ModulePlan::build(&b.module, &[&PathProfileInstrumentation]);
                    let (exh, _) =
                        instrument_module(&b.module, &plan, &Options::new(Strategy::Exhaustive))
                            .expect("valid options");
                    let perfect = run_module(&exh, Trigger::Never).profile;
                    let (full, _) = instrument_module(
                        &b.module,
                        &plan,
                        &Options::new(Strategy::FullDuplication),
                    )
                    .expect("valid options");
                    let prepared = prepare_for_runs(&full);
                    let baseline_cycles = b.baseline.cycles as f64;
                    let path: Vec<PathMeas> = PATH_INTERVALS
                        .iter()
                        .map(|&interval| {
                            let o = run_prepared_module(&prepared, Trigger::Counter { interval });
                            PathMeas {
                                total: (o.cycles as f64 - baseline_cycles) / baseline_cycles
                                    * 100.0,
                                accuracy: path_overlap(&perfect, &o.profile),
                                events: o.profile.total_path_events() as f64,
                            }
                        })
                        .collect();

                    // --- Selective instrumentation. -----------------------
                    let (all, all_stats, _) = instrument(
                        &b.module,
                        Kinds::Both,
                        &Options::new(Strategy::FullDuplication),
                    );
                    // One decode serves the scout and measurement runs.
                    let prepared_all = prepare_for_runs(&all);
                    let scout =
                        run_prepared_module(&prepared_all, Trigger::Counter { interval: 13 });
                    let mut hot: HashSet<_> = hotness::functions_covering(&scout.profile, 0.9)
                        .into_iter()
                        .collect();
                    if hot.is_empty() {
                        // A scout epoch too short to see any method entry:
                        // an adaptive system would simply keep everything
                        // instrumented for another epoch.
                        hot = b.module.func_ids().collect();
                    }
                    let plan = plan_for(&b.module, Kinds::Both);
                    let (sel, sel_stats) = instrument_module_selective(
                        &b.module,
                        &plan,
                        &Options::new(Strategy::FullDuplication),
                        &hot,
                    )
                    .expect("valid options");
                    let o_all =
                        run_prepared_module(&prepared_all, Trigger::Counter { interval: 499 });
                    let o_sel = run_module(&sel, Trigger::Counter { interval: 499 });
                    let selective = SelectiveRow {
                        bench: b.name,
                        all_methods: overhead_pct(&o_all, &b.baseline),
                        hot_only: overhead_pct(&o_sel, &b.baseline),
                        all_space: all_stats.space_increase_bytes(),
                        hot_space: sel_stats.space_increase_bytes(),
                        hot_count: hot.len(),
                    };
                    (path, selective)
                })
            })
            .collect(),
    );
    let (per_bench, cell_errors) = split_results(results);
    let mut errors = suite.errors;
    errors.extend(cell_errors);

    let path_rows = PATH_INTERVALS
        .iter()
        .enumerate()
        .map(|(k, &interval)| PathRow {
            interval,
            total: mean(per_bench.iter().map(|(p, _)| p[k].total)),
            accuracy: mean(per_bench.iter().map(|(p, _)| p[k].accuracy)),
            paths_recorded: mean(per_bench.iter().map(|(p, _)| p[k].events)),
        })
        .collect();
    let selective_rows = per_bench.into_iter().map(|(_, s)| s).collect();

    Extras {
        path_rows,
        selective_rows,
        errors,
    }
}

impl Extras {
    /// Emits the report as JSONL records (no-op when the emitter is off).
    pub fn emit_jsonl(&self) {
        use isf_obs::{emit, Json};
        if !emit::enabled() {
            return;
        }
        for r in &self.path_rows {
            emit::record(&Json::obj([
                ("type", "row".into()),
                ("experiment", "extras".into()),
                ("part", "path_profiling".into()),
                ("interval", r.interval.into()),
                ("total_pct", r.total.into()),
                ("accuracy_pct", r.accuracy.into()),
                ("paths_recorded", r.paths_recorded.into()),
            ]));
        }
        for r in &self.selective_rows {
            emit::record(&Json::obj([
                ("type", "row".into()),
                ("experiment", "extras".into()),
                ("part", "selective".into()),
                ("bench", r.bench.into()),
                ("all_methods_pct", r.all_methods.into()),
                ("hot_only_pct", r.hot_only.into()),
                ("all_space_bytes", r.all_space.into()),
                ("hot_space_bytes", r.hot_space.into()),
                ("hot_count", r.hot_count.into()),
            ]));
        }
    }
}

impl fmt::Display for Extras {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extras (beyond the paper): sampled Ball-Larus path profiling"
        )?;
        writeln!(
            f,
            "{:>9} {:>11} {:>13} {:>12}",
            "interval", "total (%)", "accuracy (%)", "paths"
        )?;
        for r in &self.path_rows {
            writeln!(
                f,
                "{:>9} {:>11} {:>13.0} {:>12.0}",
                r.interval,
                pct(r.total),
                r.accuracy,
                r.paths_recorded
            )?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "Extras: selective instrumentation (hot methods covering 90% of heat)"
        )?;
        writeln!(
            f,
            "{:<14} {:>8} {:>9} {:>12} {:>12} {:>5}",
            "benchmark", "all (%)", "hot (%)", "all (bytes)", "hot (bytes)", "n"
        )?;
        for r in &self.selective_rows {
            writeln!(
                f,
                "{:<14} {:>8} {:>9} {:>12} {:>12} {:>5}",
                r.bench,
                pct(r.all_methods),
                pct(r.hot_only),
                r.all_space,
                r.hot_space,
                r.hot_count
            )?;
        }
        write_errors(f, &self.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extras_shapes_hold() {
        let e = run(Scale::Smoke);
        // Path profiling: interval 1 is perfect; accuracy decays with the
        // interval; overhead decreases.
        assert!(e.path_rows[0].accuracy > 99.9);
        for w in e.path_rows.windows(2) {
            assert!(w[1].total <= w[0].total + 1e-6);
        }
        // Selective instrumentation never costs more than instrumenting
        // everything, in space or in cycles.
        for r in &e.selective_rows {
            assert!(r.hot_space <= r.all_space, "{}: space", r.bench);
            assert!(
                r.hot_only <= r.all_methods + 0.5,
                "{}: {:.1}% hot vs {:.1}% all",
                r.bench,
                r.hot_only,
                r.all_methods
            );
            assert!(r.hot_count >= 1);
        }
    }
}
