//! The `bench-snapshot` subcommand: a dated, machine-readable performance
//! snapshot (`BENCH_<date>.json`) for tracking the harness's throughput
//! over time.
//!
//! One sample per benchmark of the suite: the uninstrumented baseline,
//! a Full-Duplication run with both example instrumentations at a fixed
//! counter interval, and the wall-clock throughput of that run. Simulated
//! quantities are deterministic; wall-clock fields respect the emitter's
//! redaction mode so tests can pin the deterministic remainder.
//!
//! The `profile` section tracks the self-profiling subsystem itself:
//! per-benchmark fusion coverage (deterministic) and the wall time of the
//! profiled fused engine on the dispatch benchmarks, so a regression in
//! the [`OpProfile`] sink's overhead shows up in the dated baselines.

use std::io;
use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use isf_core::{Options, Strategy};
use isf_exec::{
    run_naive, run_prepared, run_prepared_profiled, FuseMode, OpProfile, PreparedModule, Trigger,
    VmConfig,
};
use isf_obs::{emit, Json};

use crate::runner::{
    cell, fusion_coverage, instrument, par_cells, prepare_suite, run_module, FusionCoverage, Kinds,
};
use crate::{runner, Scale};

/// The sample interval every snapshot run uses, so snapshots taken on
/// different days measure the same work.
pub const SNAPSHOT_INTERVAL: u64 = 499;

/// One benchmark's snapshot sample.
#[derive(Clone, Debug)]
pub struct BenchSample {
    /// Benchmark name.
    pub name: &'static str,
    /// Simulated cycles of the uninstrumented baseline.
    pub baseline_cycles: u64,
    /// Simulated cycles of the instrumented, sampled run.
    pub instrumented_cycles: u64,
    /// Overhead of that run over the baseline, percent.
    pub overhead_pct: f64,
    /// Samples taken by the run.
    pub samples: u64,
    /// Instructions interpreted by the run.
    pub instructions: u64,
    /// Wall time of the instrumented run, nanoseconds.
    pub wall_ns: u64,
    /// Interpreted instructions per wall-clock microsecond.
    pub mips: f64,
}

/// Measures the whole suite at `scale`, one cell per benchmark.
///
/// # Panics
///
/// Panics if any benchmark fails to prepare or run — a snapshot of a
/// partially failed suite would silently skew the recorded baselines.
pub fn collect(scale: Scale) -> Vec<BenchSample> {
    let suite = prepare_suite(scale);
    if let Some(e) = suite.errors.first() {
        panic!("bench-snapshot: cell {e}");
    }
    par_cells(
        suite
            .benches
            .iter()
            .map(|b| {
                cell(format!("snapshot/{}", b.name), move || {
                    let (module, _, _) = instrument(
                        &b.module,
                        Kinds::Both,
                        &Options::new(Strategy::FullDuplication),
                    );
                    let start = Instant::now();
                    let o = run_module(
                        &module,
                        Trigger::Counter {
                            interval: SNAPSHOT_INTERVAL,
                        },
                    );
                    let wall = start.elapsed();
                    let secs = wall.as_secs_f64();
                    BenchSample {
                        name: b.name,
                        baseline_cycles: b.baseline.cycles,
                        instrumented_cycles: o.cycles,
                        overhead_pct: o.overhead_vs(&b.baseline),
                        samples: o.samples_taken,
                        instructions: o.instructions,
                        wall_ns: u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX),
                        mips: if secs > 0.0 {
                            o.instructions as f64 / 1e6 / secs
                        } else {
                            0.0
                        },
                    }
                })
            })
            .collect(),
    )
}

/// The benchmarks the engine-ablation samples compare; `compress` is the
/// paper's headline workload, `mtrt` the call-dense counterweight.
pub const DISPATCH_BENCHES: [&str; 2] = ["compress", "mtrt"];

/// One benchmark's engine-ablation sample: the same uninstrumented run
/// under the fused prepared engine, the unfused prepared engine, and the
/// naive tree-walking reference.
#[derive(Clone, Debug)]
pub struct DispatchSample {
    /// Benchmark name.
    pub name: &'static str,
    /// Wall time of the superinstruction-fused prepared run, nanoseconds.
    pub fused_ns: u64,
    /// Wall time of the unfused prepared run, nanoseconds.
    pub unfused_ns: u64,
    /// Wall time of the naive reference run, nanoseconds.
    pub naive_ns: u64,
}

/// Measures the engine ablation on [`DISPATCH_BENCHES`] at `scale`: one
/// timed run per engine per benchmark. All three engines produce the
/// identical outcome; only the wall clock differs.
///
/// # Panics
///
/// Panics if a benchmark is missing from the suite or a run traps — the
/// dispatch baselines would otherwise silently vanish from the snapshot.
pub fn dispatch_samples(scale: Scale) -> Vec<DispatchSample> {
    let suite = prepare_suite(scale);
    let cfg = VmConfig::default();
    DISPATCH_BENCHES
        .iter()
        .map(|&name| {
            let b = suite
                .benches
                .iter()
                .find(|b| b.name == name)
                .unwrap_or_else(|| panic!("bench-snapshot: `{name}` missing from the suite"));
            let fused = PreparedModule::prepare_with(&b.module, &cfg.cost, FuseMode::Fuse);
            let unfused = PreparedModule::prepare_with(&b.module, &cfg.cost, FuseMode::Off);
            let clock = |r: &mut dyn FnMut()| {
                let start = Instant::now();
                r();
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
            };
            DispatchSample {
                name: b.name,
                fused_ns: clock(&mut || {
                    run_prepared(&fused, &cfg).expect("benchmarks do not trap");
                }),
                unfused_ns: clock(&mut || {
                    run_prepared(&unfused, &cfg).expect("benchmarks do not trap");
                }),
                naive_ns: clock(&mut || {
                    run_naive(&b.module, &cfg).expect("benchmarks do not trap");
                }),
            }
        })
        .collect()
}

/// One benchmark's self-profiling sample: the wall time of the same
/// fused run under the profiled engine (so the dated snapshots track the
/// [`OpProfile`] sink's dispatch overhead alongside the engines it
/// instruments) and the fusion coverage the profile observed.
#[derive(Clone, Debug)]
pub struct ProfileSample {
    /// Benchmark name.
    pub name: &'static str,
    /// Wall time of the profiled fused run, nanoseconds.
    pub profiled_ns: u64,
    /// Percentage of dynamic instructions executed inside a fused
    /// superinstruction.
    pub coverage_pct: f64,
}

/// Times the profiled fused engine on [`DISPATCH_BENCHES`] at `scale` —
/// the self-profiling counterpart of [`dispatch_samples`], sharing its
/// workload so `profiled_ns / fused_ns` is the sink's overhead.
///
/// # Panics
///
/// Panics if a benchmark is missing from the suite or a run traps, for
/// the same reason [`dispatch_samples`] does.
pub fn profile_samples(scale: Scale) -> Vec<ProfileSample> {
    let suite = prepare_suite(scale);
    let cfg = VmConfig::default();
    DISPATCH_BENCHES
        .iter()
        .map(|&name| {
            let b = suite
                .benches
                .iter()
                .find(|b| b.name == name)
                .unwrap_or_else(|| panic!("bench-snapshot: `{name}` missing from the suite"));
            let fused = PreparedModule::prepare_with(&b.module, &cfg.cost, FuseMode::Fuse);
            let mut profile = OpProfile::new();
            let start = Instant::now();
            run_prepared_profiled(&fused, &cfg, &mut profile).expect("benchmarks do not trap");
            ProfileSample {
                name: b.name,
                profiled_ns: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                coverage_pct: profile.fusion_coverage_pct(),
            }
        })
        .collect()
}

/// Measures fusion coverage for the whole suite with profile-guided
/// preparation enabled: the `profile_guided` section of the snapshot.
/// Runs through the same [`fusion_coverage`] machinery — the PGO override
/// is flipped on for the measurement (bumping the profile epoch, so the
/// guided decodes get their own cache entries) and restored afterwards.
pub fn guided_coverage(scale: Scale) -> Vec<FusionCoverage> {
    let was = runner::pgo();
    runner::set_pgo(true);
    let coverage = fusion_coverage(scale);
    runner::set_pgo(was);
    coverage
}

/// Renders a snapshot as its JSON document.
pub fn to_json(
    scale: Scale,
    date: &str,
    samples: &[BenchSample],
    dispatch: &[DispatchSample],
    coverage: &[FusionCoverage],
    profiled: &[ProfileSample],
    guided: &[FusionCoverage],
) -> Json {
    Json::obj([
        ("schema", "isf-bench-snapshot/1".into()),
        ("date", date.into()),
        ("scale", scale_name(scale).into()),
        ("interval", SNAPSHOT_INTERVAL.into()),
        (
            "benches",
            Json::Arr(
                samples
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("name", s.name.into()),
                            ("baseline_cycles", s.baseline_cycles.into()),
                            ("instrumented_cycles", s.instrumented_cycles.into()),
                            ("overhead_pct", s.overhead_pct.into()),
                            ("samples", s.samples.into()),
                            ("instructions", s.instructions.into()),
                            ("wall_ns", emit::wall_ns(s.wall_ns)),
                            ("mips", emit::wall_rate(s.mips)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "dispatch",
            Json::Arr(
                dispatch
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("name", s.name.into()),
                            ("fused_wall_ns", emit::wall_ns(s.fused_ns)),
                            ("unfused_wall_ns", emit::wall_ns(s.unfused_ns)),
                            ("naive_wall_ns", emit::wall_ns(s.naive_ns)),
                            (
                                "fused_speedup",
                                emit::wall_rate(if s.fused_ns > 0 {
                                    s.unfused_ns as f64 / s.fused_ns as f64
                                } else {
                                    0.0
                                }),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "profile",
            Json::obj([
                (
                    "coverage",
                    Json::Arr(
                        coverage
                            .iter()
                            .map(|c| {
                                Json::obj([
                                    ("name", c.name.into()),
                                    ("fused_instructions", c.fused_instructions.into()),
                                    ("total_instructions", c.total_instructions.into()),
                                    ("coverage_pct", c.coverage_pct.into()),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "dispatch",
                    Json::Arr(
                        profiled
                            .iter()
                            .map(|s| {
                                Json::obj([
                                    ("name", s.name.into()),
                                    ("profiled_wall_ns", emit::wall_ns(s.profiled_ns)),
                                    ("coverage_pct", s.coverage_pct.into()),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "profile_guided",
            Json::Arr(
                guided
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("name", c.name.into()),
                            ("fused_instructions", c.fused_instructions.into()),
                            ("guided_instructions", c.guided_instructions.into()),
                            ("total_instructions", c.total_instructions.into()),
                            ("coverage_pct", c.coverage_pct.into()),
                            ("guided_pct", c.guided_pct().into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The CLI name of a scale (`smoke` / `default` / `paper`).
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Default => "default",
        Scale::Paper => "paper",
    }
}

/// Proleptic-Gregorian date for a day count since 1970-01-01
/// (days-from-civil inverted; Howard Hinnant's `civil_from_days`).
fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (y + i64::from(m <= 2), m, d)
}

/// Today's UTC date as `YYYY-MM-DD`.
pub fn today() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Runs the snapshot at `scale` and writes `BENCH_<date>.json` into
/// `dir`, returning the path written. The write is atomic (temp file +
/// rename), so an interrupted snapshot never leaves a partial or corrupt
/// dated baseline — the file either has yesterday's content or today's,
/// never a torn mix.
///
/// # Errors
///
/// Propagates filesystem errors from writing the file.
pub fn write(scale: Scale, dir: &Path) -> io::Result<PathBuf> {
    let date = today();
    let samples = collect(scale);
    let dispatch = dispatch_samples(scale);
    let coverage = fusion_coverage(scale);
    let profiled = profile_samples(scale);
    let guided = guided_coverage(scale);
    let doc = to_json(
        scale, &date, &samples, &dispatch, &coverage, &profiled, &guided,
    );
    let path = dir.join(format!("BENCH_{date}.json"));
    let tmp = dir.join(format!("BENCH_{date}.json.tmp"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        use std::io::Write;
        f.write_all(format!("{doc}\n").as_bytes())?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_dates_are_correct() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        // Leap day.
        assert_eq!(civil_from_days(19_782), (2024, 2, 29));
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
    }

    #[test]
    fn today_is_iso_formatted() {
        let t = today();
        assert_eq!(t.len(), 10);
        assert_eq!(t.as_bytes()[4], b'-');
        assert_eq!(t.as_bytes()[7], b'-');
    }

    #[test]
    fn snapshot_json_shape() {
        let samples = vec![BenchSample {
            name: "db",
            baseline_cycles: 100,
            instrumented_cycles: 110,
            overhead_pct: 10.0,
            samples: 3,
            instructions: 50,
            wall_ns: 1234,
            mips: 2.5,
        }];
        let dispatch = vec![DispatchSample {
            name: "compress",
            fused_ns: 800,
            unfused_ns: 1000,
            naive_ns: 2000,
        }];
        let coverage = vec![FusionCoverage {
            name: "compress",
            fused_instructions: 75,
            guided_instructions: 0,
            total_instructions: 100,
            coverage_pct: 75.0,
        }];
        let profiled = vec![ProfileSample {
            name: "compress",
            profiled_ns: 820,
            coverage_pct: 75.0,
        }];
        let guided = vec![FusionCoverage {
            name: "compress",
            fused_instructions: 80,
            guided_instructions: 5,
            total_instructions: 100,
            coverage_pct: 80.0,
        }];
        let doc = to_json(
            Scale::Smoke,
            "2026-08-06",
            &samples,
            &dispatch,
            &coverage,
            &profiled,
            &guided,
        );
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("isf-bench-snapshot/1")
        );
        assert_eq!(doc.get("scale").and_then(Json::as_str), Some("smoke"));
        let text = doc.to_string();
        isf_obs::json::parse(&text).expect("snapshot JSON parses");
        assert!(text.contains("\"name\":\"db\""));
        assert!(text.contains("\"fused_wall_ns\""));
        assert!(text.contains("\"fused_speedup\""));
        let profile = doc.get("profile").expect("profile section present");
        assert!(text.contains("\"fused_instructions\":75"));
        assert!(text.contains("\"profiled_wall_ns\""));
        assert_eq!(
            profile
                .get("coverage")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
        let pg = doc
            .get("profile_guided")
            .and_then(Json::as_arr)
            .expect("profile_guided section present");
        assert_eq!(pg.len(), 1);
        assert!(text.contains("\"guided_instructions\":5"));
        assert!(text.contains("\"guided_pct\":5"));
    }

    #[test]
    fn profile_samples_share_the_dispatch_workload() {
        let samples = profile_samples(Scale::Smoke);
        assert_eq!(samples.len(), DISPATCH_BENCHES.len());
        for s in &samples {
            assert!(DISPATCH_BENCHES.contains(&s.name));
            assert!(s.profiled_ns > 0, "{}: profiled run not timed", s.name);
            assert!(
                s.coverage_pct > 0.0 && s.coverage_pct <= 100.0,
                "{}: implausible fusion coverage {}",
                s.name,
                s.coverage_pct
            );
        }
    }

    #[test]
    fn dispatch_samples_cover_both_engines() {
        let samples = dispatch_samples(Scale::Smoke);
        assert_eq!(samples.len(), DISPATCH_BENCHES.len());
        for s in &samples {
            assert!(DISPATCH_BENCHES.contains(&s.name));
            assert!(s.fused_ns > 0, "{}: fused run not timed", s.name);
            assert!(s.unfused_ns > 0, "{}: unfused run not timed", s.name);
            assert!(s.naive_ns > 0, "{}: naive run not timed", s.name);
        }
    }

    #[test]
    fn snapshot_collects_and_writes() {
        let samples = collect(Scale::Smoke);
        assert_eq!(samples.len(), 10);
        for s in &samples {
            assert!(s.instrumented_cycles > s.baseline_cycles, "{}", s.name);
            assert!(s.overhead_pct > 0.0);
            assert!(s.samples > 0, "{}: no samples at snapshot interval", s.name);
        }
        let dir = std::env::temp_dir().join("isf-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = write(Scale::Smoke, &dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        isf_obs::json::parse(text.trim()).expect("written snapshot parses");
        std::fs::remove_file(&path).ok();
    }
}
