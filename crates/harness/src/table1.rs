//! Table 1: time overhead of exhaustive instrumentation, without the
//! framework — the motivation numbers. Paper averages: 88.3% (call-edge),
//! 60.4% (field-access).

use std::fmt;

use isf_core::Strategy;
use isf_exec::Trigger;

use isf_obs::Json;

use crate::runner::{
    cell, overhead_of, par_cells_journaled, prepare_suite, split_results, CellError,
    JournalPayload, Kinds,
};
use crate::{mean, pct, write_errors, Scale};

/// One benchmark row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Exhaustive call-edge instrumentation overhead, percent.
    pub call_edge: f64,
    /// Exhaustive field-access instrumentation overhead, percent.
    pub field_access: f64,
}

impl JournalPayload for Row {
    fn encode(&self) -> Json {
        Json::obj([
            ("bench", self.bench.into()),
            ("call_edge", self.call_edge.into()),
            ("field_access", self.field_access.into()),
        ])
    }

    fn decode(v: &Json) -> Option<Self> {
        Some(Row {
            bench: isf_workloads::canonical_name(v.get("bench")?.as_str()?)?,
            call_edge: v.get("call_edge")?.as_f64()?,
            field_access: v.get("field_access")?.as_f64()?,
        })
    }
}

/// The reproduced Table 1.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// Per-benchmark rows, suite order.
    pub rows: Vec<Row>,
    /// Average call-edge overhead.
    pub avg_call_edge: f64,
    /// Average field-access overhead.
    pub avg_field_access: f64,
    /// Cells that failed (prepare or experiment), suite order; rendered as
    /// error-annotated lines after the table.
    pub errors: Vec<CellError>,
}

/// Runs the experiment, one isolated cell per benchmark; failed cells
/// become error annotations while the rest of the table completes.
pub fn run(scale: Scale) -> Table1 {
    let suite = prepare_suite(scale);
    let results = par_cells_journaled(
        suite
            .benches
            .iter()
            .map(|b| {
                cell(format!("table1/{}", b.name), move || {
                    let (call_edge, _) =
                        overhead_of(b, Kinds::CallEdge, Strategy::Exhaustive, Trigger::Never);
                    let (field_access, _) =
                        overhead_of(b, Kinds::FieldAccess, Strategy::Exhaustive, Trigger::Never);
                    Row {
                        bench: b.name,
                        call_edge,
                        field_access,
                    }
                })
            })
            .collect(),
    );
    let (rows, cell_errors) = split_results(results);
    let mut errors = suite.errors;
    errors.extend(cell_errors);
    let avg_call_edge = mean(rows.iter().map(|r| r.call_edge));
    let avg_field_access = mean(rows.iter().map(|r| r.field_access));
    Table1 {
        rows,
        avg_call_edge,
        avg_field_access,
        errors,
    }
}

impl Table1 {
    /// Emits the table as JSONL records (no-op when the emitter is off).
    pub fn emit_jsonl(&self) {
        use isf_obs::{emit, Json};
        if !emit::enabled() {
            return;
        }
        for r in &self.rows {
            emit::record(&Json::obj([
                ("type", "row".into()),
                ("experiment", "table1".into()),
                ("bench", r.bench.into()),
                ("call_edge_pct", r.call_edge.into()),
                ("field_access_pct", r.field_access.into()),
            ]));
        }
        let mut summary = vec![
            ("type", "summary".into()),
            ("experiment", "table1".into()),
            ("avg_call_edge_pct", self.avg_call_edge.into()),
            ("avg_field_access_pct", self.avg_field_access.into()),
        ];
        summary.extend(crate::runner::summary_profile_fields());
        emit::record(&Json::obj(summary));
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 1: exhaustive instrumentation overhead (no framework)"
        )?;
        writeln!(
            f,
            "{:<14} {:>14} {:>17}",
            "benchmark", "call-edge (%)", "field-access (%)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>14} {:>17}",
                r.bench,
                pct(r.call_edge),
                pct(r.field_access)
            )?;
        }
        writeln!(
            f,
            "{:<14} {:>14} {:>17}",
            "average",
            pct(self.avg_call_edge),
            pct(self.avg_field_access)
        )?;
        writeln!(f, "(paper averages: call-edge 88.3%, field-access 60.4%)")?;
        write_errors(f, &self.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let t = run(Scale::Smoke);
        assert_eq!(t.rows.len(), 10);
        // Exhaustive instrumentation is expensive on average — the paper's
        // motivation (tens of percent, not single digits).
        assert!(
            t.avg_call_edge > 25.0,
            "avg call-edge {:.1}% too cheap to motivate sampling",
            t.avg_call_edge
        );
        assert!(t.avg_field_access > 25.0);
        let by_name = |n: &str| t.rows.iter().find(|r| r.bench == n).unwrap();
        // db is the cheap extreme in both columns (paper: 8.3% / 7.7%).
        for r in &t.rows {
            if r.bench != "db" {
                assert!(
                    by_name("db").call_edge <= r.call_edge,
                    "db should have the lowest call-edge overhead"
                );
            }
        }
        // compress is the field-access extreme (paper: 204.8%).
        assert!(by_name("compress").field_access >= by_name("db").field_access * 4.0);
        // opt-compiler is the call-edge extreme (paper: 189%).
        assert!(by_name("opt_compiler").call_edge > t.avg_call_edge);
        // The table prints.
        let text = t.to_string();
        assert!(text.contains("compress") && text.contains("average"));
    }
}
