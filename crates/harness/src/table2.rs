//! Table 2: Full-Duplication framework overhead — no samples taken, no
//! instrumentation in the duplicated code, so every percent is the cost of
//! the checks plus code growth. Paper averages: 4.9% total, 3.5% backedge
//! checks, 1.3% entry checks, 34% compile-time increase.

use std::fmt;

use isf_core::{Options, Strategy};
use isf_exec::Trigger;

use isf_obs::Json;

use crate::runner::{
    cell, instrument, overhead_pct, par_cells_journaled, prepare_suite, run_module, split_results,
    CellError, JournalPayload, Kinds,
};
use crate::{mean, pct, write_errors, Scale};

/// One benchmark row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Total framework overhead (checks + code growth), percent.
    pub total: f64,
    /// Backedge checks alone (checks-only configuration), percent.
    pub backedges: f64,
    /// Entry checks alone (checks-only configuration), percent.
    pub entries: f64,
    /// Maximum space increase in (estimated) KB.
    pub space_kb: f64,
    /// Compile-time increase, percent — the deterministic estimate of the
    /// extra work the transform hands the rest of the pipeline (relative
    /// growth in IR instructions). Wall-clock times stay on stderr (the
    /// per-cell stats lines), keeping stdout byte-identical across runs
    /// and job counts.
    pub compile_time: f64,
}

impl JournalPayload for Row {
    fn encode(&self) -> Json {
        Json::obj([
            ("bench", self.bench.into()),
            ("total", self.total.into()),
            ("backedges", self.backedges.into()),
            ("entries", self.entries.into()),
            ("space_kb", self.space_kb.into()),
            ("compile_time", self.compile_time.into()),
        ])
    }

    fn decode(v: &Json) -> Option<Self> {
        Some(Row {
            bench: isf_workloads::canonical_name(v.get("bench")?.as_str()?)?,
            total: v.get("total")?.as_f64()?,
            backedges: v.get("backedges")?.as_f64()?,
            entries: v.get("entries")?.as_f64()?,
            space_kb: v.get("space_kb")?.as_f64()?,
            compile_time: v.get("compile_time")?.as_f64()?,
        })
    }
}

/// The reproduced Table 2.
#[derive(Clone, Debug)]
pub struct Table2 {
    /// Per-benchmark rows, suite order.
    pub rows: Vec<Row>,
    /// Average total framework overhead.
    pub avg_total: f64,
    /// Average backedge-check overhead.
    pub avg_backedges: f64,
    /// Average entry-check overhead.
    pub avg_entries: f64,
    /// Average space increase, KB.
    pub avg_space_kb: f64,
    /// Average compile-time increase, percent.
    pub avg_compile_time: f64,
    /// Cells that failed (prepare or experiment), suite order.
    pub errors: Vec<CellError>,
}

/// Runs the experiment, one isolated cell per benchmark.
pub fn run(scale: Scale) -> Table2 {
    let suite = prepare_suite(scale);
    let results = par_cells_journaled(
        suite
            .benches
            .iter()
            .map(|b| {
                cell(format!("table2/{}", b.name), move || {
                    // Full duplication, empty plan, trigger off: pure
                    // framework.
                    let (full, stats, _transform_time) = instrument(
                        &b.module,
                        Kinds::None,
                        &Options::new(Strategy::FullDuplication),
                    );
                    let total = overhead_pct(&run_module(&full, Trigger::Never), &b.baseline);

                    let (be_only, _, _) = instrument(
                        &b.module,
                        Kinds::None,
                        &Options::new(Strategy::ChecksOnly {
                            entries: false,
                            backedges: true,
                        }),
                    );
                    let backedges =
                        overhead_pct(&run_module(&be_only, Trigger::Never), &b.baseline);

                    let (en_only, _, _) = instrument(
                        &b.module,
                        Kinds::None,
                        &Options::new(Strategy::ChecksOnly {
                            entries: true,
                            backedges: false,
                        }),
                    );
                    let entries = overhead_pct(&run_module(&en_only, Trigger::Never), &b.baseline);

                    let space_kb = stats.space_increase_bytes() as f64 / 1024.0;
                    let compile_time = stats.space_increase_percent();
                    Row {
                        bench: b.name,
                        total,
                        backedges,
                        entries,
                        space_kb,
                        compile_time,
                    }
                })
            })
            .collect(),
    );
    let (rows, cell_errors) = split_results(results);
    let mut errors = suite.errors;
    errors.extend(cell_errors);
    Table2 {
        avg_total: mean(rows.iter().map(|r| r.total)),
        avg_backedges: mean(rows.iter().map(|r| r.backedges)),
        avg_entries: mean(rows.iter().map(|r| r.entries)),
        avg_space_kb: mean(rows.iter().map(|r| r.space_kb)),
        avg_compile_time: mean(rows.iter().map(|r| r.compile_time)),
        rows,
        errors,
    }
}

impl Table2 {
    /// Emits the table as JSONL records (no-op when the emitter is off).
    pub fn emit_jsonl(&self) {
        use isf_obs::{emit, Json};
        if !emit::enabled() {
            return;
        }
        for r in &self.rows {
            emit::record(&Json::obj([
                ("type", "row".into()),
                ("experiment", "table2".into()),
                ("bench", r.bench.into()),
                ("total_pct", r.total.into()),
                ("backedges_pct", r.backedges.into()),
                ("entries_pct", r.entries.into()),
                ("space_kb", r.space_kb.into()),
                ("compile_time_pct", r.compile_time.into()),
            ]));
        }
        let mut summary = vec![
            ("type", "summary".into()),
            ("experiment", "table2".into()),
            ("avg_total_pct", self.avg_total.into()),
            ("avg_backedges_pct", self.avg_backedges.into()),
            ("avg_entries_pct", self.avg_entries.into()),
            ("avg_space_kb", self.avg_space_kb.into()),
            ("avg_compile_time_pct", self.avg_compile_time.into()),
        ];
        summary.extend(crate::runner::summary_profile_fields());
        emit::record(&Json::obj(summary));
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 2: Full-Duplication framework overhead (no samples)"
        )?;
        writeln!(
            f,
            "{:<14} {:>10} {:>13} {:>12} {:>11} {:>13}",
            "benchmark", "total (%)", "backedges (%)", "entries (%)", "space (KB)", "compile (+%)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>10} {:>13} {:>12} {:>11.1} {:>13.0}",
                r.bench,
                pct(r.total),
                pct(r.backedges),
                pct(r.entries),
                r.space_kb,
                r.compile_time
            )?;
        }
        writeln!(
            f,
            "{:<14} {:>10} {:>13} {:>12} {:>11.1} {:>13.0}",
            "average",
            pct(self.avg_total),
            pct(self.avg_backedges),
            pct(self.avg_entries),
            self.avg_space_kb,
            self.avg_compile_time
        )?;
        writeln!(
            f,
            "(paper averages: total 4.9%, backedges 3.5%, entries 1.3%, compile +34%;\n\
             \x20compile (+%) here is the deterministic IR-growth estimate — see\n\
             \x20EXPERIMENTS.md for the wall-clock comparison)"
        )?;
        write_errors(f, &self.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let t = run(Scale::Smoke);
        assert_eq!(t.rows.len(), 10);
        // Framework overhead is an order of magnitude below exhaustive
        // instrumentation (Table 1): single digits on average.
        assert!(
            t.avg_total < 15.0,
            "framework overhead {:.1}% too high",
            t.avg_total
        );
        assert!(t.avg_total > 0.0);
        // The total is roughly the sum of the breakdown columns (paper:
        // "the sum ... is roughly equivalent to the total").
        for r in &t.rows {
            let sum = r.backedges + r.entries;
            assert!(
                (r.total - sum).abs() < r.total.max(2.0),
                "{}: total {:.1} vs breakdown sum {:.1}",
                r.bench,
                r.total,
                sum
            );
            assert!(r.space_kb > 0.0);
        }
        // Tight-loop benchmarks pay the most for backedge checks (paper:
        // compress 8.3%, mpegaudio 9.0% dominate).
        let by_name = |n: &str| t.rows.iter().find(|r| r.bench == n).unwrap();
        assert!(by_name("compress").backedges > t.avg_backedges);
        assert!(by_name("db").total < t.avg_total);
        // Call-dense benchmarks pay the most for entry checks.
        assert!(by_name("opt_compiler").entries > t.avg_entries);
    }
}
