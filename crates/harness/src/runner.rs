//! Shared experiment machinery: compiling the suite, instrumenting it,
//! running it, and expressing results relative to the uninstrumented
//! baseline — the paper's methodology of §4.1.

use std::time::{Duration, Instant};

use isf_core::{instrument_module, Options, Strategy, TransformStats};
use isf_exec::{run, Outcome, Trigger, VmConfig};
use isf_instr::{
    CallEdgeInstrumentation, FieldAccessInstrumentation, Instrumentation, ModulePlan,
};
use isf_ir::Module;
use isf_workloads::{suite, Scale, Workload};

/// A compiled benchmark with its uninstrumented baseline run.
pub struct PreparedBench {
    /// Benchmark name.
    pub name: &'static str,
    /// The uninstrumented module.
    pub module: Module,
    /// The baseline outcome (original code, no checks, no samples).
    pub baseline: Outcome,
    /// Wall-clock time the front end took to produce the module — the
    /// denominator of the compile-time-increase column.
    pub frontend_time: Duration,
}

/// Compiles and baselines the whole suite at `scale`.
pub fn prepare_suite(scale: Scale) -> Vec<PreparedBench> {
    suite(scale).iter().map(prepare).collect()
}

/// Compiles and baselines one workload.
pub fn prepare(w: &Workload) -> PreparedBench {
    let start = Instant::now();
    let module = w.compile();
    let frontend_time = start.elapsed();
    let baseline = run_module(&module, Trigger::Never);
    PreparedBench {
        name: w.name(),
        module,
        baseline,
        frontend_time,
    }
}

/// Which of the paper's two example instrumentations to apply.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Kinds {
    /// Call-edge only (§4.2 example 1).
    CallEdge,
    /// Field-access only (§4.2 example 2).
    FieldAccess,
    /// Both at once (the §4.4 configuration).
    Both,
    /// No instrumentation (framework-overhead runs).
    None,
}

/// Builds the plan for the selected instrumentation kinds.
pub fn plan_for(module: &Module, kinds: Kinds) -> ModulePlan {
    let call = CallEdgeInstrumentation;
    let field = FieldAccessInstrumentation;
    let selected: Vec<&dyn Instrumentation> = match kinds {
        Kinds::CallEdge => vec![&call],
        Kinds::FieldAccess => vec![&field],
        Kinds::Both => vec![&call, &field],
        Kinds::None => vec![],
    };
    ModulePlan::build(module, &selected)
}

/// Instruments a module, returning the result, the transform statistics,
/// and the wall-clock transformation time (the numerator of the
/// compile-time-increase column).
///
/// # Panics
///
/// Panics on invalid option combinations — experiment code is expected to
/// pass valid ones.
pub fn instrument(
    module: &Module,
    kinds: Kinds,
    options: &Options,
) -> (Module, TransformStats, Duration) {
    let plan = plan_for(module, kinds);
    let start = Instant::now();
    let (out, stats) = instrument_module(module, &plan, options)
        .expect("experiment configurations are valid");
    (out, stats, start.elapsed())
}

/// Runs a module under the harness VM configuration.
///
/// # Panics
///
/// Panics if the program traps — benchmark programs never trap.
pub fn run_module(module: &Module, trigger: Trigger) -> Outcome {
    let cfg = VmConfig {
        trigger,
        ..VmConfig::default()
    };
    run(module, &cfg).expect("benchmark programs do not trap")
}

/// Overhead of `outcome` relative to `baseline`, in percent.
pub fn overhead_pct(outcome: &Outcome, baseline: &Outcome) -> f64 {
    outcome.overhead_vs(baseline)
}

/// Convenience: instrument with `strategy`, run with `trigger`, return the
/// overhead relative to the prepared baseline along with the outcome.
pub fn overhead_of(
    bench: &PreparedBench,
    kinds: Kinds,
    strategy: Strategy,
    trigger: Trigger,
) -> (f64, Outcome) {
    let (module, _, _) = instrument(&bench.module, kinds, &Options::new(strategy));
    let outcome = run_module(&module, trigger);
    let pct = overhead_pct(&outcome, &bench.baseline);
    (pct, outcome)
}

/// The perfect (exhaustive) profile of a benchmark for the given kinds.
pub fn perfect_profile(bench: &PreparedBench, kinds: Kinds) -> isf_profile::ProfileData {
    let (module, _, _) = instrument(&bench.module, kinds, &Options::new(Strategy::Exhaustive));
    run_module(&module, Trigger::Never).profile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_runs_baselines() {
        let w = isf_workloads::by_name("db", Scale::Smoke).unwrap();
        let b = prepare(&w);
        assert!(b.baseline.cycles > 0);
        assert_eq!(b.baseline.checks_executed, 0);
    }

    #[test]
    fn exhaustive_overhead_positive() {
        let w = isf_workloads::by_name("jess", Scale::Smoke).unwrap();
        let b = prepare(&w);
        let (pct, o) = overhead_of(&b, Kinds::Both, Strategy::Exhaustive, Trigger::Never);
        assert!(pct > 0.0);
        assert!(o.profile.total_call_edge_events() > 0);
    }

    #[test]
    fn perfect_profile_nonempty() {
        let w = isf_workloads::by_name("compress", Scale::Smoke).unwrap();
        let b = prepare(&w);
        let p = perfect_profile(&b, Kinds::Both);
        assert!(p.total_field_access_events() > 0);
        assert!(p.total_call_edge_events() > 0);
    }
}
