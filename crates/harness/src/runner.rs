//! Shared experiment machinery: compiling the suite, instrumenting it,
//! running it, and expressing results relative to the uninstrumented
//! baseline — the paper's methodology of §4.1.
//!
//! Experiments decompose into independent *cells*, one (benchmark ×
//! configuration) unit of work each, executed by [`par_cells`] on a scoped
//! worker pool of [`jobs`] threads. The VM is deterministic and every cell
//! is a pure function of its inputs, so a parallel run produces the same
//! rows, bit for bit, as a serial one; results come back in submission
//! order, so table output never depends on the schedule. Per-cell
//! statistics (simulated cycles, wall time, effective simulated MIPS) go
//! to stderr through the leveled [`isf_obs::log`] emitter
//! (`ISF_LOG=off|cells|debug`), keeping stdout byte-identical across job
//! counts; with `ISF_EMIT=json` the same metrics are also captured as
//! machine-readable JSONL records, emitted in submission order.
//!
//! Cells that run one module several times (interval sweeps, trigger
//! comparisons) pre-decode it once with [`prepare_for_runs`] and replay
//! the decoded form with [`run_prepared_module`], amortizing preparation
//! over the whole sweep.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use isf_core::{instrument_module, Options, Strategy, TransformStats};
use isf_exec::{
    fuse_mode, run_prepared, run_prepared_profiled, CancelToken, CostModel, ExecLimits,
    FuseGuidance, FuseMode, OpProfile, Outcome, PreparedModule, Trigger, VmConfig, VmError,
};
use isf_instr::{CallEdgeInstrumentation, FieldAccessInstrumentation, Instrumentation, ModulePlan};
use isf_ir::Module;
use isf_obs::{emit, log, metrics, span, Json};
use isf_workloads::{suite, Scale, Workload};

use crate::journal;

// ---------------------------------------------------------------------
// Worker-pool control.
// ---------------------------------------------------------------------

static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the number of worker threads experiment cells run on (`0` clears
/// the override and restores the default resolution).
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The number of worker threads experiment cells run on: the [`set_jobs`]
/// override if one is set, else the `ISF_JOBS` environment variable, else
/// the machine's available parallelism.
pub fn jobs() -> usize {
    let n = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if n > 0 {
        return n;
    }
    if let Some(n) = std::env::var("ISF_JOBS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Serializes tests that mutate the global jobs override.
#[cfg(test)]
pub(crate) static JOBS_TEST_LOCK: Mutex<()> = Mutex::new(());

// ---------------------------------------------------------------------
// Self-profiling control.
// ---------------------------------------------------------------------

/// Turns VM self-profiling on or off (`--profile` / `ISF_PROFILE=1`).
///
/// The metrics registry's gate is the single source of truth: enabling it
/// switches [`run_prepared_module`] onto the profiled engine entry point,
/// makes [`cached_prepare`]'s hit/miss counters record, and unlocks the
/// `metrics` JSONL record and summary cache fields. Disabled (the
/// default), every output byte is identical to a run without the
/// subsystem.
pub fn set_profiling(on: bool) {
    metrics::set_enabled(on);
}

/// Whether VM self-profiling is enabled.
pub fn profiling() -> bool {
    metrics::enabled()
}

// ---------------------------------------------------------------------
// Profile-guided preparation control.
// ---------------------------------------------------------------------

static PGO_OVERRIDE: AtomicU8 = AtomicU8::new(0);
static PGO_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Turns the warmup-then-reprepare flow on or off (`--pgo` / `ISF_PGO=1`).
///
/// With PGO on, [`cached_prepare`] serves each fused module through a
/// profile-guided preparation: a short warmup cell runs the statically
/// fused form under the profiled engine, the folded [`OpProfile`] is
/// distilled into a [`FuseGuidance`], and the module is re-prepared under
/// [`FuseMode::Guided`]. Guided entries live under their own cache keys
/// (the fingerprint grows a profile epoch), so PGO and non-PGO cells
/// coexist in the shared cache without evicting each other. Enabling PGO
/// bumps the epoch: a new `--pgo` invocation re-warms rather than
/// trusting guided forms from an earlier configuration.
pub fn set_pgo(on: bool) {
    if on {
        PGO_EPOCH.fetch_add(1, Ordering::Relaxed);
    }
    PGO_OVERRIDE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Whether profile-guided preparation is enabled: the [`set_pgo`] override
/// if one was set, else the `ISF_PGO` environment variable.
pub fn pgo() -> bool {
    match PGO_OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            static ENV: OnceLock<bool> = OnceLock::new();
            *ENV.get_or_init(|| {
                matches!(
                    std::env::var("ISF_PGO").ok().as_deref(),
                    Some("1") | Some("on") | Some("true")
                )
            })
        }
    }
}

fn pgo_epoch() -> u64 {
    PGO_EPOCH.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Fault-tolerance configuration (retries, cell budget, fault injection).
// ---------------------------------------------------------------------

/// `usize::MAX` means "no override; consult `ISF_RETRIES`".
static RETRIES_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Sets how many times a panicked cell is re-run before its failure is
/// recorded (`--retries`). Pass `usize::MAX` to clear the override.
pub fn set_retries(n: usize) {
    RETRIES_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Bounded retry count for panicked cells: the [`set_retries`] override if
/// set, else `ISF_RETRIES`, else `0`. Traps and budget exhaustion are
/// deterministic properties of the program and are never retried.
pub fn retries() -> usize {
    let n = RETRIES_OVERRIDE.load(Ordering::Relaxed);
    if n != usize::MAX {
        return n;
    }
    std::env::var("ISF_RETRIES")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .unwrap_or(0)
}

/// `u64::MAX` means "no override; consult `ISF_CELL_BUDGET`".
static CELL_BUDGET_OVERRIDE: AtomicU64 = AtomicU64::new(u64::MAX);

/// Sets the per-cell simulated-cycle cap applied to every harness run
/// (`--cell-budget`; `0` disables the cap). Pass `u64::MAX` to clear the
/// override.
pub fn set_cell_budget(cycles: u64) {
    CELL_BUDGET_OVERRIDE.store(cycles, Ordering::Relaxed);
}

/// The per-cell simulated-cycle cap: the [`set_cell_budget`] override if
/// set, else `ISF_CELL_BUDGET`, else `0` (uncapped). A run that exceeds it
/// traps with fuel exhaustion and the cell is recorded as
/// [`CellResult::Budget`].
pub fn cell_budget() -> u64 {
    let n = CELL_BUDGET_OVERRIDE.load(Ordering::Relaxed);
    if n != u64::MAX {
        return n;
    }
    std::env::var("ISF_CELL_BUDGET")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0)
}

/// The execution limits every harness run gets: the cell budget as
/// execution fuel when one is configured, unlimited otherwise.
fn harness_limits() -> ExecLimits {
    match cell_budget() {
        0 => ExecLimits::default(),
        cycles => ExecLimits::cycles(cycles),
    }
}

/// `u64::MAX` means "no override; consult `ISF_CELL_DEADLINE`".
static CELL_DEADLINE_OVERRIDE: AtomicU64 = AtomicU64::new(u64::MAX);

/// Sets the per-cell wall-clock deadline in milliseconds
/// (`--cell-deadline`; `0` disables it). Pass `u64::MAX` to clear the
/// override.
pub fn set_cell_deadline(ms: u64) {
    CELL_DEADLINE_OVERRIDE.store(ms, Ordering::Relaxed);
}

/// The per-cell wall-clock deadline in milliseconds: the
/// [`set_cell_deadline`] override if set, else `ISF_CELL_DEADLINE`, else
/// `0` (off). Each cell attempt that exceeds it is cooperatively
/// cancelled by the watchdog and recorded as [`CellResult::Deadline`].
/// Unlike the cycle budget, the deadline is *not* part of the journal
/// fingerprint: it bounds how long a run waits, not what a cell computes.
pub fn cell_deadline() -> u64 {
    let n = CELL_DEADLINE_OVERRIDE.load(Ordering::Relaxed);
    if n != u64::MAX {
        return n;
    }
    std::env::var("ISF_CELL_DEADLINE")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0)
}

/// `u64::MAX` means "no override; consult `ISF_CANCEL_AFTER`".
static CANCEL_AFTER_OVERRIDE: AtomicU64 = AtomicU64::new(u64::MAX);

/// Sets the deterministic cancellation point (`--cancel-after-cycles`;
/// `0` disables it): every cell run is cancelled at exactly the charge
/// that takes the simulated clock past this cycle count. Pass `u64::MAX`
/// to clear the override.
pub fn set_cancel_after(cycles: u64) {
    CANCEL_AFTER_OVERRIDE.store(cycles, Ordering::Relaxed);
}

/// The deterministic cancellation point, if one is configured: the
/// [`set_cancel_after`] override if set, else `ISF_CANCEL_AFTER`, else
/// none. This is the testable stand-in for the wall-clock deadline —
/// cancellation lands at the same simulated cycle on every run and every
/// job count, so deadline plumbing can be exercised byte-reproducibly.
/// Because it changes what cells compute, it *is* folded into the
/// journal fingerprint (via the `vm_config` component of
/// [`run_inputs`]), unlike the wall-clock deadline.
pub fn cancel_after() -> Option<u64> {
    let n = CANCEL_AFTER_OVERRIDE.load(Ordering::Relaxed);
    let n = if n != u64::MAX {
        n
    } else {
        std::env::var("ISF_CANCEL_AFTER")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(0)
    };
    (n > 0).then_some(n)
}

/// Whether any *fresh* (non-replayed) cell run hit the wall-clock
/// deadline this process. The harness consults this at exit: a run that
/// deadlined somewhere finishes its remaining cells and its output, then
/// exits with [`journal::RESUMABLE_EXIT`] so callers can tell a
/// truncated-by-deadline run from a clean one.
static DEADLINE_HIT: AtomicBool = AtomicBool::new(false);

/// Whether a fresh cell result was a deadline cancellation.
pub fn deadline_hit() -> bool {
    DEADLINE_HIT.load(Ordering::Relaxed)
}

/// Fault-injection probability as `f64` bits (`0.0` = off) and seed.
static FAULT_PROB_BITS: AtomicU64 = AtomicU64::new(0);
static FAULT_SEED: AtomicU64 = AtomicU64::new(0);

/// Configures deterministic fault injection (`--fault-inject`): each cell
/// attempt is hashed with `seed`, and a hash below `p` makes the cell
/// panic or trap before its work runs. `p = 0.0` disables injection.
pub fn set_fault_injection(p: f64, seed: u64) {
    FAULT_PROB_BITS.store(p.clamp(0.0, 1.0).to_bits(), Ordering::Relaxed);
    FAULT_SEED.store(seed, Ordering::Relaxed);
}

/// Parses a `--fault-inject` spec of the form `p=<prob>,seed=<s>` (the
/// seed is optional and defaults to 0).
///
/// # Errors
///
/// Returns a description of the first malformed component.
pub fn parse_fault_spec(spec: &str) -> Result<(f64, u64), String> {
    let mut p: Option<f64> = None;
    let mut seed = 0u64;
    for part in spec.split(',') {
        match part.split_once('=') {
            Some(("p", v)) => {
                let prob = v
                    .parse::<f64>()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| format!("fault probability `{v}` not in [0, 1]"))?;
                p = Some(prob);
            }
            Some(("seed", v)) => {
                seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("fault seed `{v}` is not a u64"))?;
            }
            _ => return Err(format!("unknown fault-inject component `{part}`")),
        }
    }
    let p = p.ok_or_else(|| "fault-inject spec needs `p=<prob>`".to_owned())?;
    Ok((p, seed))
}

/// The configured fault injection as raw state: probability as `f64` bits
/// and the seed. Part of the journal fingerprint — injected failures are
/// deterministic in these, so a journal is only reusable when they match.
pub fn fault_injection() -> (u64, u64) {
    (
        FAULT_PROB_BITS.load(Ordering::Relaxed),
        FAULT_SEED.load(Ordering::Relaxed),
    )
}

/// Snapshot of every input that determines cell results under the current
/// configuration — what the cell journal fingerprints. The job count is
/// deliberately excluded: cells are schedule-independent, so a journal
/// written with `--jobs 4` resumes correctly under `--jobs 1` and vice
/// versa.
pub fn run_inputs(scale: Scale, experiments: &[String]) -> journal::RunInputs {
    let (fault_prob_bits, fault_seed) = fault_injection();
    let base_config = VmConfig {
        trigger: Trigger::Never,
        limits: harness_limits(),
        ..VmConfig::default()
    };
    // The deterministic cancellation point changes what cells compute,
    // so it rides in the `vm_config` component of the fingerprint; the
    // wall-clock deadline does not (it bounds waiting, not results), so
    // a journal written under one deadline resumes under any other.
    let vm_config = match cancel_after() {
        Some(k) => format!("{base_config:?} cancel_after={k}"),
        None => format!("{base_config:?}"),
    };
    journal::RunInputs {
        version: env!("CARGO_PKG_VERSION").to_owned(),
        scale: crate::snapshot::scale_name(scale).to_owned(),
        experiments: experiments.to_vec(),
        cell_budget: cell_budget(),
        retries: u64::try_from(retries()).unwrap_or(u64::MAX),
        fault_prob_bits,
        fault_seed,
        vm_config,
    }
}

/// Deterministically decides whether to inject a fault into this attempt
/// of the labelled cell, and which kind: `Some(true)` injects a trap,
/// `Some(false)` a panic. The decision hashes (seed, label, attempt), so
/// it is identical across job counts and schedules, and a retried attempt
/// rolls fresh.
fn fault_roll(label: &str, attempt: u32) -> Option<bool> {
    let p = f64::from_bits(FAULT_PROB_BITS.load(Ordering::Relaxed));
    roll(p, FAULT_SEED.load(Ordering::Relaxed), label, attempt)
}

/// The pure fault-roll: a function of `(p, seed, label, attempt)` only.
fn roll(p: f64, seed: u64, label: &str, attempt: u32) -> Option<bool> {
    if p <= 0.0 {
        return None;
    }
    // FNV-1a over the label (the same machinery the cell journal keys
    // with), folded with the seed and attempt, then an xorshift finalizer
    // — cheap, stable, and well-mixed enough to hit the target probability
    // on short label sets.
    let h0 = journal::fnv1a(journal::FNV_OFFSET ^ seed, label.as_bytes());
    let h = (h0 ^ u64::from(attempt)).wrapping_mul(journal::FNV_PRIME);
    let mut x = h | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
    (unit < p).then_some(x & (1 << 7) != 0)
}

// ---------------------------------------------------------------------
// Cell results.
// ---------------------------------------------------------------------

/// Why a cell failed: the label it ran under, a human-readable cause, and
/// how many attempts were made (1 unless retries were configured).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellError {
    /// The failed cell's label.
    pub label: String,
    /// Failure class: `trap`, `panic`, `budget`, or `deadline`.
    pub kind: &'static str,
    /// Human-readable cause (trap description or panic message).
    pub detail: String,
    /// Total times the cell ran, including the failing attempt.
    pub attempts: u32,
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]: {}", self.label, self.kind, self.detail)
    }
}

/// The outcome of one isolated cell: its result, or a classified failure
/// that did not take the rest of the experiment down.
#[derive(Clone, Debug)]
pub enum CellResult<R> {
    /// The cell completed.
    Ok(R),
    /// The program trapped (semantic error: division by zero, null
    /// dereference, ...).
    Trapped(CellError),
    /// The cell's closure panicked (assertion failure, injected fault).
    Panicked(CellError),
    /// A configured resource budget ran out (fuel, heap, stack).
    Budget(CellError),
    /// The cell exceeded the wall-clock [`cell_deadline`] (or the
    /// deterministic [`cancel_after`] point) and was cooperatively
    /// cancelled. Retried like a panic — the deadline measures host
    /// conditions, not the deterministic VM — never like a budget trap.
    Deadline(CellError),
}

impl<R> CellResult<R> {
    /// Converts into a `Result`, surfacing the failure for partial-result
    /// rendering.
    #[allow(clippy::missing_errors_doc)]
    pub fn into_result(self) -> Result<R, CellError> {
        match self {
            CellResult::Ok(r) => Ok(r),
            CellResult::Trapped(e)
            | CellResult::Panicked(e)
            | CellResult::Budget(e)
            | CellResult::Deadline(e) => Err(e),
        }
    }
}

/// Partitions isolated cell results into successes and failures, each in
/// submission order — the shape every table needs to render partial
/// results with error annotations.
pub fn split_results<R>(results: Vec<CellResult<R>>) -> (Vec<R>, Vec<CellError>) {
    let mut oks = Vec::new();
    let mut errors = Vec::new();
    for r in results {
        match r.into_result() {
            Ok(v) => oks.push(v),
            Err(e) => errors.push(e),
        }
    }
    (oks, errors)
}

/// The typed panic payload [`run_module`] / [`run_prepared_module`] throw
/// when a program traps, so the isolation layer can classify the failure
/// precisely instead of parsing a message.
struct CellTrap(VmError);

// ---------------------------------------------------------------------
// The cell engine.
// ---------------------------------------------------------------------

/// One independent unit of experiment work: a label (for the per-cell
/// statistics line on stderr) and a closure producing the cell's result.
/// The closure is `Fn`, not `FnOnce`, so a panicked cell can be re-run
/// under the bounded-retry policy.
pub struct Cell<'scope, R> {
    label: String,
    work: Box<dyn Fn() -> R + Send + Sync + 'scope>,
}

/// Builds a [`Cell`] for [`par_cells`] / [`par_cells_isolated`].
pub fn cell<'scope, R>(
    label: impl Into<String>,
    work: impl Fn() -> R + Send + Sync + 'scope,
) -> Cell<'scope, R> {
    Cell {
        label: label.into(),
        work: Box::new(work),
    }
}

/// A cell result type that can round-trip through the cell journal: it
/// encodes itself as JSON for the `payload` field of a `journal-cell`
/// record and decodes back on `--resume`. Every cell is a pure function
/// of the journal's fingerprinted inputs, so a decoded payload is exactly
/// what re-running the cell would compute.
pub trait JournalPayload: Sized {
    /// Encodes the result for the journal.
    fn encode(&self) -> Json;
    /// Decodes a journaled result; `None` marks an undecodable payload,
    /// which makes the engine recompute the cell instead of replaying it.
    fn decode(v: &Json) -> Option<Self>;
}

/// The encode/decode pair the engine uses for journaling, as plain
/// function pointers so the engine stays monomorphic per result type.
struct Codec<R> {
    encode: fn(&R) -> Json,
    decode: fn(&Json) -> Option<R>,
}

/// Runs the cells on [`jobs`] worker threads with per-cell fault
/// isolation, returning one [`CellResult`] per cell in submission order.
///
/// Workers claim cells from an atomic cursor, so the schedule is dynamic,
/// but each cell computes the same result wherever it runs (the VM is
/// deterministic), and the slot a result lands in is fixed by submission
/// order — a table built from the returned vector is identical however
/// many workers ran it. With one worker (or one cell) everything runs on
/// the calling thread.
///
/// Each attempt runs under `catch_unwind`: a trapping or panicking cell
/// becomes a classified [`CellResult`] while its siblings keep running —
/// workers never unwind, so no queue or slot mutex is ever poisoned.
/// Panicked cells are retried up to [`retries`] times with a short
/// deterministic backoff.
pub fn par_cells_isolated<R: Send>(cells: Vec<Cell<'_, R>>) -> Vec<CellResult<R>> {
    run_cells(cells, None)
}

/// [`par_cells_isolated`] plus durability: when a journal is attached
/// (`--journal`), every finished cell is appended to it, and journaled
/// results from a previous interrupted run are *replayed* instead of
/// recomputed (`--resume`) — emitted through exactly the same
/// submission-order path as fresh results, so the JSONL stream and the
/// returned vector are byte-for-byte what an uninterrupted run produces.
/// Without an attached journal this is [`par_cells_isolated`].
pub fn par_cells_journaled<R: Send + JournalPayload>(
    cells: Vec<Cell<'_, R>>,
) -> Vec<CellResult<R>> {
    run_cells(
        cells,
        Some(Codec {
            encode: <R as JournalPayload>::encode,
            decode: <R as JournalPayload>::decode,
        }),
    )
}

/// One finished slot: the cell's result and metrics, and whether they
/// were replayed from the journal (replayed cells re-inject their phase
/// sections at emission time; fresh cells contributed them while running).
type Finished<R> = (CellResult<R>, CellMetrics, bool);

/// The shared cell engine behind [`par_cells_isolated`] and
/// [`par_cells_journaled`]: replay journaled cells, run the rest on the
/// worker pool (stopping at a requested drain), then emit everything on
/// the calling thread in submission order.
fn run_cells<R: Send>(cells: Vec<Cell<'_, R>>, codec: Option<Codec<R>>) -> Vec<CellResult<R>> {
    let _hook = CellHookGuard::install();
    let n = cells.len();
    let mut entries: Vec<Option<Finished<R>>> = Vec::with_capacity(n);
    let mut pending: Vec<usize> = Vec::new();
    for (i, c) in cells.iter().enumerate() {
        let replayed = codec.as_ref().and_then(|codec| replay_cell(c, codec));
        if replayed.is_none() {
            pending.push(i);
        }
        entries.push(replayed);
    }
    let workers = jobs().min(pending.len());
    if workers <= 1 {
        for &i in &pending {
            if journal::drain_requested() {
                break;
            }
            let (r, m) = run_cell(&cells[i]);
            journal_append(&cells[i].label, &r, &m, codec.as_ref());
            entries[i] = Some((r, m, false));
        }
    } else {
        let slots: Vec<Mutex<Option<Finished<R>>>> =
            pending.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    // The drain flag (SIGINT/SIGTERM) stops workers from
                    // *claiming*; the in-flight cell below always finishes
                    // and is journaled before the process exits.
                    if journal::drain_requested() {
                        break;
                    }
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    if k >= pending.len() {
                        break;
                    }
                    let i = pending[k];
                    let (r, m) = run_cell(&cells[i]);
                    journal_append(&cells[i].label, &r, &m, codec.as_ref());
                    *slots[k].lock().unwrap_or_else(|p| p.into_inner()) = Some((r, m, false));
                });
            }
        });
        for (k, slot) in slots.into_iter().enumerate() {
            if let Some(e) = slot.into_inner().unwrap_or_else(|p| p.into_inner()) {
                entries[pending[k]] = Some(e);
            }
        }
    }
    let done = entries.iter().filter(|e| e.is_some()).count();
    if done < n {
        assert!(
            journal::drain_requested(),
            "every claimed cell stores a result"
        );
        // A graceful drain left this group incomplete: nothing of it is
        // emitted (a resumed run regenerates the whole stream), finished
        // cells are already journaled, and the distinct exit code tells
        // the caller the run is resumable.
        log::error(&format!(
            "interrupted: drained after {done}/{n} cell(s) in this group; \
             journaled results are preserved — rerun with --resume to complete"
        ));
        std::process::exit(journal::RESUMABLE_EXIT);
    }
    // JSONL cell and error records are emitted here, on the calling thread
    // and in submission order, so the stream is byte-stable however many
    // workers ran the cells (wall-clock fields are separately subject to
    // redaction — see `isf_obs::emit`). Replayed cells take the identical
    // path: raw journaled values, redacted at this emission point exactly
    // as fresh values are.
    entries
        .into_iter()
        .map(|e| {
            let (r, metrics, replayed) = e.expect("incomplete groups exited above");
            if replayed {
                for p in &metrics.phases {
                    emit::add_phase_total(&p.name, p.count, p.wall_ns);
                }
            }
            if emit::enabled() {
                emit::record(&metrics.to_json());
                if let CellResult::Trapped(e)
                | CellResult::Panicked(e)
                | CellResult::Budget(e)
                | CellResult::Deadline(e) = &r
                {
                    emit::error(&e.label, e.kind, &e.detail, u64::from(e.attempts));
                }
            }
            r
        })
        .collect()
}

/// Reconstructs a journaled cell for replay: metrics, phases, and either
/// the decoded success payload or the classified failure. Any undecodable
/// piece makes the cell recompute instead — the VM is deterministic, so
/// recomputing is always correct, just slower.
fn replay_cell<R>(c: &Cell<'_, R>, codec: &Codec<R>) -> Option<Finished<R>> {
    let rc = journal::lookup(&c.label)?;
    let decoded = decode_replay(&rc, &c.label, codec);
    if decoded.is_none() {
        log::error(&format!(
            "[journal] cell `{}` has an undecodable journal record; recomputing",
            c.label
        ));
    }
    decoded
}

fn decode_replay<R>(
    rc: &journal::ReplayCell,
    label: &str,
    codec: &Codec<R>,
) -> Option<Finished<R>> {
    let cell = &rc.cell;
    let field = |name: &str| cell.get(name).and_then(Json::as_u64);
    let metrics = CellMetrics {
        label: label.to_owned(),
        cycles: field("sim_cycles")?,
        instructions: field("instructions")?,
        prepares: field("prepares")?,
        wall_ns: field("wall_ns")?,
        mips: cell.get("mips").and_then(Json::as_f64)?,
        phases: rc
            .phases
            .iter()
            .map(|(name, count, wall_ns)| emit::PhaseTotal {
                name: name.clone(),
                count: *count,
                wall_ns: *wall_ns,
            })
            .collect(),
    };
    let result = match &rc.error {
        Some(err) => decode_error(err)?,
        None => CellResult::Ok((codec.decode)(rc.payload.as_ref()?)?),
    };
    Some((result, metrics, true))
}

/// Reconstructs a classified failure from a journaled `error` record.
fn decode_error<R>(err: &Json) -> Option<CellResult<R>> {
    let kind = match err.get("kind").and_then(Json::as_str)? {
        "trap" => "trap",
        "panic" => "panic",
        "budget" => "budget",
        "deadline" => "deadline",
        _ => return None,
    };
    let e = CellError {
        label: err.get("label").and_then(Json::as_str)?.to_owned(),
        kind,
        detail: err.get("detail").and_then(Json::as_str)?.to_owned(),
        attempts: u32::try_from(err.get("attempts").and_then(Json::as_u64)?).ok()?,
    };
    Some(match kind {
        "trap" => CellResult::Trapped(e),
        "panic" => CellResult::Panicked(e),
        "deadline" => CellResult::Deadline(e),
        _ => CellResult::Budget(e),
    })
}

/// Appends one freshly finished cell to the attached journal: raw
/// (unredacted) metrics, the failure record if it failed, the encoded
/// payload if it succeeded, and the phase sections it contributed. No-op
/// for non-journaled engines or when no journal is attached.
fn journal_append<R>(label: &str, r: &CellResult<R>, m: &CellMetrics, codec: Option<&Codec<R>>) {
    let Some(codec) = codec else { return };
    if !journal::is_active() {
        return;
    }
    let (error, payload) = match r {
        CellResult::Ok(v) => (None, Some((codec.encode)(v))),
        CellResult::Trapped(e)
        | CellResult::Panicked(e)
        | CellResult::Budget(e)
        | CellResult::Deadline(e) => (
            Some(Json::obj([
                ("type", "error".into()),
                ("label", e.label.as_str().into()),
                ("kind", e.kind.into()),
                ("detail", e.detail.as_str().into()),
                ("attempts", u64::from(e.attempts).into()),
            ])),
            None,
        ),
    };
    journal::append(
        label,
        &m.to_json_raw(),
        error.as_ref(),
        payload.as_ref(),
        &m.phases,
    );
}

/// Runs the cells like [`par_cells_isolated`] but unwraps every result,
/// for call sites where a failure is a bug (unit tests, the bench
/// snapshot).
///
/// # Panics
///
/// Panics on the first failed cell — on the calling thread, after all
/// cells have finished, so no worker state is poisoned.
pub fn par_cells<R: Send>(cells: Vec<Cell<'_, R>>) -> Vec<R> {
    par_cells_isolated(cells)
        .into_iter()
        .map(|r| r.into_result().unwrap_or_else(|e| panic!("cell {e}")))
        .collect()
}

thread_local! {
    /// (simulated cycles, instructions, preparation requests) of the
    /// current cell, fed by [`run_module`], [`run_prepared_module`] and
    /// [`cached_prepare`].
    static CELL_STATS: std::cell::Cell<(u64, u64, u64)> =
        const { std::cell::Cell::new((0, 0, 0)) };
}

fn note_run(outcome: &Outcome) {
    CELL_STATS.with(|c| {
        let (cycles, instructions, prepares) = c.get();
        c.set((
            cycles + outcome.cycles,
            instructions + outcome.instructions,
            prepares,
        ));
    });
}

fn note_prepare_request() {
    CELL_STATS.with(|c| {
        let (cycles, instructions, prepares) = c.get();
        c.set((cycles, instructions, prepares + 1));
    });
}

/// Everything [`run_cell`] measures about one cell: the deterministic
/// counters (simulated cycles, instructions, preparation requests) plus
/// the wall-clock figures, which are redactable in JSONL output.
struct CellMetrics {
    label: String,
    cycles: u64,
    instructions: u64,
    prepares: u64,
    wall_ns: u64,
    mips: f64,
    /// Phase sections this cell contributed (captured across all
    /// attempts), journaled so a replayed cell re-injects them.
    phases: Vec<emit::PhaseTotal>,
}

impl CellMetrics {
    /// The `cell` record as emitted: wall-clock fields pass through the
    /// redaction gate on the emitting thread.
    fn to_json(&self) -> Json {
        Json::obj([
            ("type", "cell".into()),
            ("label", self.label.as_str().into()),
            ("sim_cycles", self.cycles.into()),
            ("instructions", self.instructions.into()),
            ("prepares", self.prepares.into()),
            ("wall_ns", emit::wall_ns(self.wall_ns)),
            ("mips", emit::wall_rate(self.mips)),
        ])
    }

    /// The `cell` record with raw wall-clock values, for the journal:
    /// redaction is a property of the *emitting* run, so the journal
    /// stores measurements and replay re-applies whatever redaction the
    /// resuming run was asked for.
    fn to_json_raw(&self) -> Json {
        Json::obj([
            ("type", "cell".into()),
            ("label", self.label.as_str().into()),
            ("sim_cycles", self.cycles.into()),
            ("instructions", self.instructions.into()),
            ("prepares", self.prepares.into()),
            ("wall_ns", self.wall_ns.into()),
            ("mips", self.mips.into()),
        ])
    }
}

/// Classifies a caught panic payload into a [`CellResult`] failure.
fn classify_failure<R>(
    payload: Box<dyn std::any::Any + Send>,
    label: &str,
    attempts: u32,
) -> CellResult<R> {
    let err = |kind, detail| CellError {
        label: label.to_owned(),
        kind,
        detail,
        attempts,
    };
    match payload.downcast::<CellTrap>() {
        Ok(trap) => {
            let CellTrap(e) = *trap;
            if e.kind == isf_exec::TrapKind::Cancelled {
                // A cancelled cell was stopped by the watchdog (or the
                // deterministic `--cancel-after-cycles` injection hook),
                // not by its own doing: the detail is derived from the
                // configuration, never from wall-clock progress.
                CellResult::Deadline(err("deadline", deadline_detail()))
            } else if e.kind.is_budget() {
                CellResult::Budget(err("budget", e.to_string()))
            } else {
                CellResult::Trapped(err("trap", e.to_string()))
            }
        }
        Err(payload) => {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_owned());
            CellResult::Panicked(err("panic", detail))
        }
    }
}

/// The deterministic detail string for a cancelled cell. Wall-clock
/// deadlines fire at a nondeterministic point, so the message reports the
/// configured limit — the only thing every firing has in common.
fn deadline_detail() -> String {
    let ms = cell_deadline();
    if ms > 0 {
        format!("cell deadline of {ms} ms exceeded")
    } else if let Some(k) = cancel_after() {
        format!("cancelled after {k} simulated cycles")
    } else {
        "cancelled".to_owned()
    }
}

thread_local! {
    /// Whether the current thread is inside an isolated cell attempt —
    /// consulted by the process panic hook to suppress the default
    /// panic-message-plus-backtrace noise for unwinds that the isolation
    /// layer catches and reports as classified failures.
    static IN_CELL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

/// Depth of nested [`CellHookGuard`] installations (concurrent
/// `par_cells` groups in one process share a single hook swap).
static HOOK_DEPTH: Mutex<u32> = Mutex::new(0);
/// The hook displaced by the cell hook, restored when the last guard
/// drops. The cell hook reads this to delegate out-of-cell panics.
static PREVIOUS_HOOK: Mutex<Option<PanicHook>> = Mutex::new(None);

/// RAII installation of a panic hook that stays silent for panics
/// unwinding out of an isolated cell attempt and defers to the previous
/// hook everywhere else. Without this, every trapped or injected cell
/// would spray a backtrace on stderr even though the failure is caught,
/// classified, and reported through the table annotation and the `error`
/// JSONL record. The guard is reference-counted: the first install swaps
/// the process hook in, the last drop restores whatever was there before,
/// so embedding code (and the test harness itself) gets its own hook back
/// once no cell group is running.
struct CellHookGuard;

impl CellHookGuard {
    fn install() -> CellHookGuard {
        let mut depth = HOOK_DEPTH.lock().unwrap_or_else(|p| p.into_inner());
        if *depth == 0 {
            *PREVIOUS_HOOK.lock().unwrap_or_else(|p| p.into_inner()) =
                Some(std::panic::take_hook());
            std::panic::set_hook(Box::new(|info| {
                if IN_CELL.with(std::cell::Cell::get) {
                    return;
                }
                let previous = PREVIOUS_HOOK.lock().unwrap_or_else(|p| p.into_inner());
                if let Some(previous) = previous.as_ref() {
                    previous(info);
                }
            }));
        }
        *depth += 1;
        CellHookGuard
    }
}

impl Drop for CellHookGuard {
    fn drop(&mut self) {
        let mut depth = HOOK_DEPTH.lock().unwrap_or_else(|p| p.into_inner());
        *depth -= 1;
        if *depth == 0 {
            // Bind the displaced hook *before* calling `set_hook`: the
            // temporary `MutexGuard` in `if let Some(prev) = LOCK.lock()…`
            // would live across the call, and `set_hook` synchronizes with
            // concurrently-running hooks that take the same lock.
            let previous = PREVIOUS_HOOK
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .take();
            if let Some(previous) = previous {
                drop(std::panic::take_hook());
                std::panic::set_hook(previous);
            }
        }
    }
}

/// Runs one cell on the current thread under `catch_unwind`, logging its
/// statistics line — simulated cycles, wall time, and effective simulated
/// MIPS (interpreted instructions per wall-clock microsecond) — at the
/// `cells` level (`ISF_LOG=off` silences it) and returning the
/// measurements alongside the result. Panicked attempts are retried up to
/// [`retries`] times with a short deterministic backoff; traps and budget
/// exhaustion are deterministic, so they fail immediately.
fn run_cell<R>(c: &Cell<'_, R>) -> (CellResult<R>, CellMetrics) {
    let _cell_span = span::begin("cell", c.label.clone());
    // Capture the phase sections this cell contributes (across every
    // attempt) so they can be journaled with it and re-injected on replay.
    emit::begin_phase_capture();
    let deadline_ms = cell_deadline();
    let inject_cancel = cancel_after();
    let max_attempts = u32::try_from(retries())
        .unwrap_or(u32::MAX)
        .saturating_add(1);
    let mut attempt = 1u32;
    loop {
        let _attempt_span = span::begin("attempt", c.label.clone());
        CELL_STATS.with(|s| s.set((0, 0, 0)));
        // Each attempt gets a fresh token: the watchdog fires against the
        // epoch snapshotted here, so a stale fire from a previous attempt
        // (or a previous cell on this worker) can never land on this one.
        let token = (deadline_ms > 0).then(CancelToken::new);
        let _watch = token
            .as_ref()
            .map(|t| crate::watchdog::watch(t, Duration::from_millis(deadline_ms)));
        if token.is_some() {
            metrics::counter_add("watchdog.armed", 1);
        }
        let _scope = isf_exec::cancel::arm(token.as_ref(), inject_cancel);
        let start = Instant::now();
        IN_CELL.with(|f| f.set(true));
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(inject_trap) = fault_roll(&c.label, attempt) {
                if inject_trap {
                    std::panic::panic_any(CellTrap(VmError {
                        kind: isf_exec::TrapKind::DivisionByZero,
                        function: "<fault-injection>".to_owned(),
                    }));
                }
                panic!("injected fault");
            }
            (c.work)()
        }));
        IN_CELL.with(|f| f.set(false));
        let wall = start.elapsed();
        let (cycles, instructions, prepares) = CELL_STATS.with(|s| s.get());
        let secs = wall.as_secs_f64();
        let mips = if secs > 0.0 {
            instructions as f64 / 1e6 / secs
        } else {
            0.0
        };
        if log::enabled(log::Level::Cells) {
            log::cells(&format!(
                "[cell] {}: {} simulated cycles, {:.1} ms, {:.1} MIPS",
                c.label,
                cycles,
                secs * 1e3,
                mips
            ));
        }
        if prepares > 0 {
            log::debug(&format!(
                "[cell] {}: {prepares} preparation request(s)",
                c.label
            ));
        }
        let metrics = CellMetrics {
            label: c.label.clone(),
            cycles,
            instructions,
            prepares,
            wall_ns: u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX),
            mips,
            phases: Vec::new(),
        };
        let result = match outcome {
            Ok(r) => CellResult::Ok(r),
            Err(payload) => classify_failure(payload, &c.label, attempt),
        };
        if matches!(&result, CellResult::Deadline(_)) {
            DEADLINE_HIT.store(true, Ordering::Relaxed);
            if deadline_ms > 0 {
                metrics::counter_add("watchdog.fired", 1);
            }
        }
        // Deadlines retry like panics — a hang may be a transient host
        // stall, and the bounded-retry policy already exists for exactly
        // that class of failure — and never like a budget trap, which is
        // deterministic and would only fail identically again.
        if let CellResult::Panicked(e) | CellResult::Deadline(e) = &result {
            if attempt < max_attempts {
                log::debug(&format!(
                    "[cell] {}: attempt {attempt} failed ({}), retrying",
                    c.label, e.detail
                ));
                // Deterministic linear backoff: transient host conditions
                // (not the deterministic VM) are what retries are for.
                std::thread::sleep(Duration::from_millis(5 * u64::from(attempt)));
                attempt += 1;
                continue;
            }
        }
        if let CellResult::Trapped(e)
        | CellResult::Panicked(e)
        | CellResult::Budget(e)
        | CellResult::Deadline(e) = &result
        {
            log::error(&format!("[cell] {e} ({} attempt(s))", e.attempts));
        }
        let mut metrics = metrics;
        metrics.phases = emit::take_phase_capture();
        // Flush this worker's metrics shard now, not at thread exit: an
        // experiment summary snapshots the registry as soon as its cells
        // complete, and every count a cell made must be visible by then
        // whatever worker ran it — per-experiment `prep_cache_*` fields
        // stay byte-identical across `--jobs`.
        metrics::flush_thread();
        return (result, metrics);
    }
}

// ---------------------------------------------------------------------
// Suite preparation.
// ---------------------------------------------------------------------

/// A compiled benchmark with its uninstrumented baseline run.
pub struct PreparedBench {
    /// Benchmark name.
    pub name: &'static str,
    /// The uninstrumented module.
    pub module: Module,
    /// The baseline outcome (original code, no checks, no samples).
    pub baseline: Outcome,
    /// Wall-clock time the front end took to produce the module — the
    /// denominator of the compile-time-increase column.
    pub frontend_time: Duration,
}

/// The compiled suite plus the benchmarks that failed to prepare: a cell
/// that traps or panics during compilation/baselining drops out of
/// `benches` and lands in `errors`, so experiments run on the survivors
/// and tables annotate the casualties.
pub struct PreparedSuite {
    /// Benchmarks that compiled and baselined, suite order.
    pub benches: Vec<PreparedBench>,
    /// Failures, suite order.
    pub errors: Vec<CellError>,
}

/// Compiles and baselines the whole suite at `scale`, one isolated cell
/// per benchmark.
pub fn prepare_suite(scale: Scale) -> PreparedSuite {
    let workloads = suite(scale);
    let results = par_cells_isolated(
        workloads
            .iter()
            .map(|w| cell(format!("prepare/{}", w.name()), move || prepare(w)))
            .collect(),
    );
    let mut benches = Vec::new();
    let mut errors = Vec::new();
    for r in results {
        match r.into_result() {
            Ok(b) => benches.push(b),
            Err(e) => errors.push(e),
        }
    }
    PreparedSuite { benches, errors }
}

/// Compiles and baselines one workload.
pub fn prepare(w: &Workload) -> PreparedBench {
    let start = Instant::now();
    let module = w.compile();
    let frontend_time = start.elapsed();
    emit::phase("compile", frontend_time);
    let baseline = run_module(&module, Trigger::Never);
    PreparedBench {
        name: w.name(),
        module,
        baseline,
        frontend_time,
    }
}

// ---------------------------------------------------------------------
// Instrumentation and execution.
// ---------------------------------------------------------------------

/// Which of the paper's two example instrumentations to apply.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Kinds {
    /// Call-edge only (§4.2 example 1).
    CallEdge,
    /// Field-access only (§4.2 example 2).
    FieldAccess,
    /// Both at once (the §4.4 configuration).
    Both,
    /// No instrumentation (framework-overhead runs).
    None,
}

/// Builds the plan for the selected instrumentation kinds.
pub fn plan_for(module: &Module, kinds: Kinds) -> ModulePlan {
    let call = CallEdgeInstrumentation;
    let field = FieldAccessInstrumentation;
    let selected: Vec<&dyn Instrumentation> = match kinds {
        Kinds::CallEdge => vec![&call],
        Kinds::FieldAccess => vec![&field],
        Kinds::Both => vec![&call, &field],
        Kinds::None => vec![],
    };
    ModulePlan::build(module, &selected)
}

/// Instruments a module, returning the result, the transform statistics,
/// and the wall-clock transformation time (the numerator of the
/// compile-time-increase column).
///
/// # Panics
///
/// Panics on invalid option combinations — experiment code is expected to
/// pass valid ones.
pub fn instrument(
    module: &Module,
    kinds: Kinds,
    options: &Options,
) -> (Module, TransformStats, Duration) {
    let plan = plan_for(module, kinds);
    let start = Instant::now();
    let (out, stats) =
        instrument_module(module, &plan, options).expect("experiment configurations are valid");
    let elapsed = start.elapsed();
    emit::phase("instrument", elapsed);
    (out, stats, elapsed)
}

// ---------------------------------------------------------------------
// Shared preparation cache.
// ---------------------------------------------------------------------

/// Process-wide cache of decoded modules, keyed by a fingerprint of the
/// module text, the cost model, and the fusion mode. Experiments sweep
/// the same program across many configurations — Table 4 alone runs one
/// instrumented module at six sampling intervals, and every strategy
/// re-compiles and re-baselines the whole suite — so sharing one
/// [`PreparedModule`] across cells (and across the `par_cells` workers
/// that run them) removes most preparation work from a harness run.
///
/// The map holds one lazily-initialized slot per fingerprint: the map
/// lock is released before decoding, so requests for *different* modules
/// prepare in parallel while concurrent requests for the *same* module
/// block on the slot and share a single preparation.
type PrepSlot = Arc<OnceLock<Arc<PreparedModule>>>;
static PREP_CACHE: OnceLock<Mutex<HashMap<u64, PrepSlot>>> = OnceLock::new();

/// Fingerprints everything that determines the decoded form: the module's
/// canonical text plus the cost model and the fusion mode it would be
/// prepared under.
fn prep_fingerprint(module: &Module, cost: &CostModel) -> u64 {
    let h = journal::fnv1a(journal::FNV_OFFSET, module.to_string().as_bytes());
    journal::fnv1a(h, format!("{cost:?}/{:?}", fuse_mode()).as_bytes())
}

/// Decodes `module` under the harness cost model through the shared
/// preparation cache, returning the (possibly shared) decoded form.
///
/// Counts one preparation *request* toward the current cell's `prepares`
/// metric whether or not the cache already held the module: requests are
/// a pure function of the cell's own work, so the JSONL `cell` records
/// stay byte-identical however cells are scheduled. Hits and misses feed
/// the metrics registry (`prep.cache.hits` / `prep.cache.misses`) when
/// self-profiling is enabled: the miss total is the number of *distinct*
/// fingerprints decoded and the hit total is requests minus misses, so
/// both are themselves deterministic across job counts even though which
/// worker pays each decode is not (that only surfaces in `ISF_LOG=debug`).
pub fn cached_prepare(module: &Module) -> Arc<PreparedModule> {
    note_prepare_request();
    let cost = CostModel::default();
    // Guided preparation only refines the statically-fused form: with
    // fusion off there is nothing for a warmup profile to steer.
    let guided = pgo() && matches!(fuse_mode(), FuseMode::Fuse);
    let key = if guided {
        journal::fnv1a(
            prep_fingerprint(module, &cost),
            format!("/pgo{}", pgo_epoch()).as_bytes(),
        )
    } else {
        prep_fingerprint(module, &cost)
    };
    let slot = {
        let mut map = PREP_CACHE
            .get_or_init(Mutex::default)
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        map.entry(key).or_default().clone()
    };
    let mut fresh = false;
    let prepared = slot
        .get_or_init(|| {
            fresh = true;
            if guided {
                Arc::new(pgo_prepare(module, &cost))
            } else {
                Arc::new(PreparedModule::prepare(module, &cost))
            }
        })
        .clone();
    if fresh {
        metrics::counter_add("prep.cache.misses", 1);
        log::debug(&format!("[prep-cache] miss, decoded {key:016x}"));
    } else {
        metrics::counter_add("prep.cache.hits", 1);
        log::debug(&format!("[prep-cache] hit {key:016x}"));
    }
    prepared
}

/// Cycle budget of the PGO warmup cell. Long enough to get past
/// initialization and into the steady-state loops whose opcode mix the
/// guidance wants, short enough that re-preparation stays a small
/// fraction of a harness run.
const PGO_WARMUP_CYCLES: u64 = 250_000;

/// The warmup-then-reprepare flow behind `--pgo`: prepares the
/// statically-fused form, runs it for [`PGO_WARMUP_CYCLES`] as a
/// profiling cell (`Trigger::Never`, so the warmup observes the program
/// and not the instrumentation), folds the resulting [`OpProfile`] into a
/// [`FuseGuidance`], and re-prepares under [`FuseMode::Guided`]. The
/// warmup usually ends in a fuel trap — that is its exit, not a failure,
/// and the profile is folded either way. Outcome-affecting state is
/// untouched: the warmup runs on a private module instance, emits no
/// JSONL, and registers no phase section (which cell pays the warmup is
/// scheduling-dependent, like any cache miss), so stdout and the record
/// stream stay byte-identical to a non-PGO run of the same cells.
fn pgo_prepare(module: &Module, cost: &CostModel) -> PreparedModule {
    let start = Instant::now();
    let base = PreparedModule::prepare_with(module, cost, FuseMode::Fuse);
    let cfg = VmConfig {
        trigger: Trigger::Never,
        limits: ExecLimits::cycles(PGO_WARMUP_CYCLES),
        ..VmConfig::default()
    };
    let mut profile = OpProfile::new();
    let _ = run_prepared_profiled(&base, &cfg, &mut profile);
    let guidance = FuseGuidance::from_profile(&profile);
    metrics::counter_add("pgo.warmups", 1);
    metrics::counter_add("pgo.warmup_instructions", profile.total_instructions());
    let prepared = PreparedModule::prepare_with(module, cost, FuseMode::Guided(Box::new(guidance)));
    log::debug(&format!(
        "[pgo] warmup + guided re-preparation in {:?}",
        start.elapsed()
    ));
    prepared
}

/// Runs a module under the harness VM configuration (including the
/// [`cell_budget`] cycle cap, when one is set), decoding it through the
/// shared preparation cache first. For a cell that runs the same module
/// repeatedly, [`prepare_for_runs`] + [`run_prepared_module`] keeps the
/// decoded form in hand across the sweep.
///
/// # Panics
///
/// Unwinds with a typed [`CellTrap`] payload if the program traps, which
/// the cell isolation layer classifies into [`CellResult::Trapped`] or
/// [`CellResult::Budget`] without taking sibling cells down.
pub fn run_module(module: &Module, trigger: Trigger) -> Outcome {
    let prepared = cached_prepare(module);
    run_prepared_module(&prepared, trigger)
}

/// Pre-decodes a module once, under the harness cost model, for repeated
/// [`run_prepared_module`] runs. Served from the shared preparation cache,
/// so identical (program, cost, fusion) requests across cells — Table 4's
/// per-strategy suites, for instance — share one decode.
pub fn prepare_for_runs(module: &Module) -> Arc<PreparedModule> {
    let start = Instant::now();
    let prepared = cached_prepare(module);
    emit::phase("prepare", start.elapsed());
    prepared
}

/// Runs an already-decoded module under the harness VM configuration
/// (including the [`cell_budget`] cycle cap, when one is set).
///
/// # Panics
///
/// Unwinds with a typed [`CellTrap`] payload if the program traps, which
/// the cell isolation layer classifies into [`CellResult::Trapped`] or
/// [`CellResult::Budget`] without taking sibling cells down.
pub fn run_prepared_module(prepared: &PreparedModule, trigger: Trigger) -> Outcome {
    let cfg = VmConfig {
        trigger,
        limits: harness_limits(),
        ..VmConfig::default()
    };
    let start = Instant::now();
    let result = if profiling() {
        let mut profile = OpProfile::new();
        let result = run_prepared_profiled(prepared, &cfg, &mut profile);
        record_profile(&profile, trigger);
        result
    } else {
        run_prepared(prepared, &cfg)
    };
    let outcome = result.unwrap_or_else(|e| std::panic::panic_any(CellTrap(e)));
    emit::phase("run", start.elapsed());
    note_run(&outcome);
    outcome
}

/// Folds one run's finished [`OpProfile`] into the metrics registry:
/// per-opcode dispatch/instruction/cycle counters, the dynamic
/// fused-vs-total instruction totals behind the fusion-coverage report,
/// and the per-trigger-kind inter-sample-gap and checks-per-sample
/// histograms of the §4.6 skew analysis.
fn record_profile(profile: &OpProfile, trigger: Trigger) {
    for (_, name, count, instructions, cycles) in profile.nonzero() {
        metrics::counter_add(&format!("op.{name}.count"), count);
        metrics::counter_add(&format!("op.{name}.instructions"), instructions);
        metrics::counter_add(&format!("op.{name}.cycles"), cycles);
    }
    metrics::counter_add("profile.runs", 1);
    metrics::counter_add("profile.fused_instructions", profile.fused_instructions());
    metrics::counter_add("profile.guided_instructions", profile.guided_instructions());
    metrics::counter_add("profile.total_instructions", profile.total_instructions());
    let kind = trigger.kind_name();
    for &gap in profile.sample_gap_cycles() {
        metrics::histogram_record(&format!("trigger.{kind}.sample_gap_cycles"), gap);
    }
    for &checks in profile.checks_per_sample() {
        metrics::histogram_record(&format!("trigger.{kind}.checks_per_sample"), checks);
    }
}

/// One benchmark's fusion-coverage measurement: how much of its dynamic
/// instruction stream the prepared engine executed through fused
/// superinstructions.
pub struct FusionCoverage {
    /// Benchmark name.
    pub name: &'static str,
    /// Dynamic instructions executed under a fused dispatch.
    pub fused_instructions: u64,
    /// Dynamic instructions executed through the generalized
    /// profile-guided template — a subset of `fused_instructions`, zero
    /// unless the module was prepared under PGO.
    pub guided_instructions: u64,
    /// Total dynamic instructions.
    pub total_instructions: u64,
    /// `fused / total`, in percent.
    pub coverage_pct: f64,
}

impl FusionCoverage {
    /// `guided / total`, in percent — the share of the dynamic stream the
    /// guided tier added on top of the static catalogue.
    #[must_use]
    pub fn guided_pct(&self) -> f64 {
        if self.total_instructions == 0 {
            return 0.0;
        }
        self.guided_instructions as f64 / self.total_instructions as f64 * 100.0
    }
}

/// Measures fusion coverage for every suite benchmark at `scale` by
/// running each one uninstrumented under the profiled prepared engine
/// (decodes come from the shared preparation cache). Coverage totals also
/// land in the registry as `fusion.<bench>.fused_instructions` /
/// `.total_instructions` counters when profiling is enabled. Runs on the
/// calling thread and emits no JSONL, so the stream's cell records are
/// untouched.
pub fn fusion_coverage(scale: Scale) -> Vec<FusionCoverage> {
    suite(scale)
        .iter()
        .map(|w| {
            let module = w.compile();
            let prepared = cached_prepare(&module);
            let cfg = VmConfig {
                trigger: Trigger::Never,
                ..VmConfig::default()
            };
            let mut profile = OpProfile::new();
            let _ = run_prepared_profiled(&prepared, &cfg, &mut profile);
            let c = FusionCoverage {
                name: w.name(),
                fused_instructions: profile.fused_instructions(),
                guided_instructions: profile.guided_instructions(),
                total_instructions: profile.total_instructions(),
                coverage_pct: profile.fusion_coverage_pct(),
            };
            metrics::counter_add(
                &format!("fusion.{}.fused_instructions", c.name),
                c.fused_instructions,
            );
            metrics::counter_add(
                &format!("fusion.{}.guided_instructions", c.name),
                c.guided_instructions,
            );
            metrics::counter_add(
                &format!("fusion.{}.total_instructions", c.name),
                c.total_instructions,
            );
            c
        })
        .collect()
}

/// The registry-backed preparation-cache fields a `summary` record
/// carries when self-profiling is enabled — empty otherwise, so
/// profiling-off streams stay byte-identical to pre-registry ones.
pub fn summary_profile_fields() -> Vec<(&'static str, Json)> {
    if !profiling() {
        return Vec::new();
    }
    let snap = metrics::snapshot();
    vec![
        ("prep_cache_hits", snap.counter("prep.cache.hits").into()),
        (
            "prep_cache_misses",
            snap.counter("prep.cache.misses").into(),
        ),
    ]
}

/// Overhead of `outcome` relative to `baseline`, in percent.
pub fn overhead_pct(outcome: &Outcome, baseline: &Outcome) -> f64 {
    outcome.overhead_vs(baseline)
}

/// Convenience: instrument with `strategy`, run with `trigger`, return the
/// overhead relative to the prepared baseline along with the outcome.
pub fn overhead_of(
    bench: &PreparedBench,
    kinds: Kinds,
    strategy: Strategy,
    trigger: Trigger,
) -> (f64, Outcome) {
    let (module, _, _) = instrument(&bench.module, kinds, &Options::new(strategy));
    let outcome = run_module(&module, trigger);
    let pct = overhead_pct(&outcome, &bench.baseline);
    (pct, outcome)
}

/// The perfect (exhaustive) profile of a benchmark for the given kinds.
pub fn perfect_profile(bench: &PreparedBench, kinds: Kinds) -> isf_profile::ProfileData {
    let (module, _, _) = instrument(&bench.module, kinds, &Options::new(Strategy::Exhaustive));
    run_module(&module, Trigger::Never).profile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_runs_baselines() {
        let w = isf_workloads::by_name("db", Scale::Smoke).unwrap();
        let b = prepare(&w);
        assert!(b.baseline.cycles > 0);
        assert_eq!(b.baseline.checks_executed, 0);
    }

    #[test]
    fn exhaustive_overhead_positive() {
        let w = isf_workloads::by_name("jess", Scale::Smoke).unwrap();
        let b = prepare(&w);
        let (pct, o) = overhead_of(&b, Kinds::Both, Strategy::Exhaustive, Trigger::Never);
        assert!(pct > 0.0);
        assert!(o.profile.total_call_edge_events() > 0);
    }

    #[test]
    fn perfect_profile_nonempty() {
        let w = isf_workloads::by_name("compress", Scale::Smoke).unwrap();
        let b = prepare(&w);
        let p = perfect_profile(&b, Kinds::Both);
        assert!(p.total_field_access_events() > 0);
        assert!(p.total_call_edge_events() > 0);
    }

    #[test]
    fn par_cells_preserves_submission_order() {
        let cells = (0..37)
            .map(|i| cell(format!("order/{i}"), move || i * 3))
            .collect();
        let results = par_cells(cells);
        assert_eq!(results, (0..37).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_cells_runs_borrowing_closures() {
        let data: Vec<u64> = (0..8).collect();
        let cells = data
            .iter()
            .map(|x| cell(format!("borrow/{x}"), move || x + 1))
            .collect();
        assert_eq!(par_cells(cells), (1..=8).collect::<Vec<u64>>());
    }

    #[test]
    fn jobs_override_takes_precedence() {
        let _guard = JOBS_TEST_LOCK.lock().unwrap();
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }

    #[test]
    fn cell_jsonl_is_byte_identical_across_job_counts() {
        // The machine-readable counterpart of table4's determinism test:
        // with wall-clock fields redacted, the JSONL cell stream — labels,
        // simulated cycles, instruction and preparation counts, order —
        // must not depend on the worker count.
        let _guard = JOBS_TEST_LOCK.lock().unwrap();
        emit::set_mode(emit::EmitMode::Json);
        emit::set_redact(true);
        let run_once = |jobs: usize| {
            set_jobs(jobs);
            let t = crate::table1::run(Scale::Smoke);
            t.emit_jsonl();
            emit::drain()
        };
        let serial = run_once(1);
        let parallel = run_once(8);
        set_jobs(0);
        emit::set_mode(emit::EmitMode::Off);
        emit::set_redact(false);
        assert!(!serial.is_empty());
        assert_eq!(serial, parallel, "JSONL stream depends on the job count");
        let records = crate::jsonl::validate(&serial).expect("stream validates");
        // 10 prepare cells + 10 table cells + 10 rows + 1 summary.
        assert_eq!(records, 31);
        assert!(serial.contains("\"type\":\"cell\""));
        assert!(serial.contains("\"wall_ns\":0"), "wall fields are redacted");
    }

    #[test]
    fn preparation_cache_shares_decodes() {
        // A module text unique to this test keys a fresh cache slot, so
        // the thread-local preparation counter isolates exactly what this
        // thread decoded regardless of concurrently running tests. The
        // hit/miss counters live in the metrics registry, so the test
        // profiles while holding the lock that serializes registry users.
        let _guard = JOBS_TEST_LOCK.lock().unwrap();
        set_profiling(true);
        let before = metrics::snapshot();
        let m = isf_frontend::compile("fn main() { print(424242); }").unwrap();
        let preps_before = isf_exec::thread_preparations();
        let first = cached_prepare(&m);
        assert_eq!(
            isf_exec::thread_preparations(),
            preps_before + 1,
            "first request pays the decode"
        );
        let second = cached_prepare(&m);
        assert_eq!(
            isf_exec::thread_preparations(),
            preps_before + 1,
            "second request is served from the cache"
        );
        let after = metrics::snapshot();
        set_profiling(false);
        assert!(
            Arc::ptr_eq(&first, &second),
            "both requests share one PreparedModule"
        );
        assert!(
            after.counter("prep.cache.misses") > before.counter("prep.cache.misses"),
            "the initial request counts as a registry miss"
        );
        assert!(
            after.counter("prep.cache.hits") > before.counter("prep.cache.hits"),
            "the repeat request counts as a registry hit"
        );
    }

    #[test]
    fn run_module_counts_requests_not_decodes() {
        // `prepares` in the cell record is the number of preparation
        // *requests* — a deterministic property of the cell's work — so a
        // cache hit must count exactly like the decode it avoided.
        let _guard = JOBS_TEST_LOCK.lock().unwrap();
        set_profiling(true);
        let m = isf_frontend::compile("fn main() { print(777001); }").unwrap();
        let run_once = || {
            let results = par_cells_isolated(vec![cell("prep-req/unique", || {
                run_module(&m, Trigger::Never).cycles
            })]);
            assert!(matches!(results[0], CellResult::Ok(_)));
        };
        run_once(); // decodes
        let hits_before = metrics::snapshot().counter("prep.cache.hits");
        run_once(); // hits
        let hits_after = metrics::snapshot().counter("prep.cache.hits");
        set_profiling(false);
        assert!(hits_after > hits_before, "second run hits the cache");
    }

    #[test]
    fn pgo_prepares_guided_modules_with_identical_outcomes() {
        // The warmup-then-reprepare flow end to end: with PGO on, the
        // cache serves a guided decode (paying one warmup), the run's
        // outcome is identical to the non-PGO one, and the call-dense
        // benchmarks clear the coverage target the static catalogue
        // could not reach.
        let _guard = JOBS_TEST_LOCK.lock().unwrap();
        let w = isf_workloads::by_name("jess", Scale::Smoke).unwrap();
        let m = w.compile();
        let baseline = run_module(&m, Trigger::Never);
        set_profiling(true);
        let warmups_before = metrics::snapshot().counter("pgo.warmups");
        set_pgo(true);
        let prepared = cached_prepare(&m);
        let outcome = run_prepared_module(&prepared, Trigger::Never);
        let warmups_after = metrics::snapshot().counter("pgo.warmups");
        // Coverage with profiling off: the returned values are what this
        // test needs, and recording nothing keeps the cumulative
        // `fusion.*` registry counters exactly as other tests expect.
        set_profiling(false);
        let coverage = fusion_coverage(Scale::Smoke);
        set_pgo(false);
        assert!(
            prepared.num_guided() > 0,
            "guided preparation instantiated no generalized groups"
        );
        assert_eq!(
            outcome, baseline,
            "guided preparation must not change the outcome"
        );
        assert!(warmups_after > warmups_before, "the guided decode warms up");
        let jess = coverage.iter().find(|c| c.name == "jess").unwrap();
        assert!(jess.guided_instructions > 0, "no guided dispatches on jess");
        assert!(
            jess.coverage_pct >= 65.0,
            "guided coverage on jess is {:.1}%, below the 65% target",
            jess.coverage_pct
        );
    }

    #[test]
    fn profiled_runs_fold_into_the_registry_and_match_unprofiled() {
        let _guard = JOBS_TEST_LOCK.lock().unwrap();
        let w = isf_workloads::by_name("compress", Scale::Smoke).unwrap();
        // Instrumented module: sampling checks are what feed the trigger
        // gap histograms (an uninstrumented program never samples).
        let (m, _, _) = instrument(
            &w.compile(),
            Kinds::Both,
            &Options::new(Strategy::FullDuplication),
        );
        let plain = run_module(&m, Trigger::Counter { interval: 50 });
        set_profiling(true);
        let before = metrics::snapshot();
        let profiled = run_module(&m, Trigger::Counter { interval: 50 });
        let coverage = fusion_coverage(Scale::Smoke);
        let snap = metrics::snapshot();
        set_profiling(false);
        assert_eq!(plain, profiled, "profiling must not change the outcome");
        // The registry is process-global and other tests may record while
        // profiling is on, so registry assertions are delta-based.
        let op_cycles = |s: &metrics::MetricsSnapshot| -> u64 {
            s.counters
                .iter()
                .filter(|(k, _)| k.starts_with("op.") && k.ends_with(".cycles"))
                .map(|(_, &v)| v)
                .sum()
        };
        assert!(
            op_cycles(&snap) >= op_cycles(&before) + profiled.cycles,
            "the profiled run's cycles are attributed to opcodes"
        );
        // The counter trigger's gap histogram grew by one entry per sample.
        let gap_count = |s: &metrics::MetricsSnapshot| {
            s.histograms
                .get("trigger.counter.sample_gap_cycles")
                .map_or(0, isf_obs::metrics::Histogram::count)
        };
        assert!(profiled.samples_taken > 0, "interval 50 samples at smoke");
        assert!(gap_count(&snap) >= gap_count(&before) + profiled.samples_taken);
        // Fusion coverage is measured for the whole suite and is high on
        // the loop-heavy benchmarks.
        assert_eq!(coverage.len(), suite(Scale::Smoke).len());
        let compress = coverage.iter().find(|c| c.name == "compress").unwrap();
        assert!(compress.total_instructions > 0);
        assert!(
            compress.coverage_pct > 10.0,
            "compress fusion coverage {:.1}% unexpectedly low",
            compress.coverage_pct
        );
        assert_eq!(
            snap.counter("fusion.compress.total_instructions"),
            compress.total_instructions
        );
    }

    #[test]
    fn prepared_run_matches_unprepared() {
        let w = isf_workloads::by_name("db", Scale::Smoke).unwrap();
        let m = w.compile();
        let p = prepare_for_runs(&m);
        let direct = run_module(&m, Trigger::Counter { interval: 7 });
        let replay = run_prepared_module(&p, Trigger::Counter { interval: 7 });
        assert_eq!(direct, replay);
    }

    #[test]
    fn parse_fault_spec_accepts_and_rejects() {
        assert_eq!(parse_fault_spec("p=0.3"), Ok((0.3, 0)));
        assert_eq!(parse_fault_spec("p=0.25,seed=42"), Ok((0.25, 42)));
        assert_eq!(parse_fault_spec("p=1"), Ok((1.0, 0)));
        assert!(parse_fault_spec("p=1.5").is_err());
        assert!(parse_fault_spec("p=-0.1").is_err());
        assert!(parse_fault_spec("seed=3").is_err());
        assert!(parse_fault_spec("p=0.3,seed=x").is_err());
        assert!(parse_fault_spec("frequency=0.3").is_err());
        assert!(parse_fault_spec("").is_err());
    }

    #[test]
    fn fault_roll_is_deterministic_and_tracks_probability() {
        // Pure function of (p, seed, label, attempt): identical inputs give
        // identical decisions, p = 0 never fires, p = 1 always fires, and
        // intermediate p fires at roughly its rate over many labels.
        for attempt in 1..4 {
            assert_eq!(
                roll(0.5, 7, "table1/db", attempt),
                roll(0.5, 7, "table1/db", attempt)
            );
            assert_eq!(roll(0.0, 7, "table1/db", attempt), None);
            assert!(roll(1.0, 7, "table1/db", attempt).is_some());
        }
        let fired = (0..1000)
            .filter(|i| roll(0.3, 9, &format!("cell/{i}"), 1).is_some())
            .count();
        assert!((150..450).contains(&fired), "fired {fired}/1000 at p=0.3");
        // A retried attempt rolls fresh: some label must decide differently
        // between attempts.
        assert!((0..100).any(|i| {
            let label = format!("cell/{i}");
            roll(0.5, 7, &label, 1).is_some() != roll(0.5, 7, &label, 2).is_some()
        }));
    }

    #[test]
    fn isolated_cells_classify_failures_and_siblings_complete() {
        let mk_cells = || {
            vec![
                cell("iso/ok-1", || 1u64),
                cell("iso/trap", || -> u64 {
                    std::panic::panic_any(CellTrap(VmError {
                        kind: isf_exec::TrapKind::DivisionByZero,
                        function: "f".to_owned(),
                    }))
                }),
                cell("iso/panic", || -> u64 { panic!("boom") }),
                cell("iso/budget", || -> u64 {
                    std::panic::panic_any(CellTrap(VmError {
                        kind: isf_exec::TrapKind::FuelExhausted(99),
                        function: "g".to_owned(),
                    }))
                }),
                cell("iso/ok-2", || 2u64),
            ]
        };
        let check = |results: Vec<CellResult<u64>>| {
            assert!(matches!(results[0], CellResult::Ok(1)));
            match &results[1] {
                CellResult::Trapped(e) => {
                    assert_eq!(e.kind, "trap");
                    assert_eq!(e.detail, "trap in `f`: division by zero");
                    assert_eq!(e.attempts, 1);
                }
                other => panic!("expected trap, got {other:?}"),
            }
            match &results[2] {
                CellResult::Panicked(e) => assert_eq!(e.detail, "boom"),
                other => panic!("expected panic, got {other:?}"),
            }
            match &results[3] {
                CellResult::Budget(e) => {
                    assert_eq!(e.kind, "budget");
                    assert_eq!(e.detail, "trap in `g`: cycle budget of 99 exceeded");
                }
                other => panic!("expected budget, got {other:?}"),
            }
            assert!(matches!(results[4], CellResult::Ok(2)));
        };
        let _guard = JOBS_TEST_LOCK.lock().unwrap();
        for jobs in [1, 4] {
            set_jobs(jobs);
            check(par_cells_isolated(mk_cells()));
        }
        set_jobs(0);
    }

    #[test]
    fn error_jsonl_is_byte_identical_across_job_counts() {
        // Failure records obey the same determinism contract as cell
        // records: emitted on the calling thread in submission order,
        // byte-identical however many workers ran the cells.
        let _guard = JOBS_TEST_LOCK.lock().unwrap();
        emit::set_mode(emit::EmitMode::Json);
        emit::set_redact(true);
        let run_once = |jobs: usize| {
            set_jobs(jobs);
            let cells = (0..12)
                .map(|i| {
                    cell(format!("mix/{i}"), move || -> u64 {
                        if i % 3 == 0 {
                            std::panic::panic_any(CellTrap(VmError {
                                kind: isf_exec::TrapKind::NullDereference,
                                function: format!("f{i}"),
                            }));
                        }
                        i
                    })
                })
                .collect();
            let results = par_cells_isolated(cells);
            let (oks, errors) = split_results(results);
            assert_eq!(oks.len(), 8);
            assert_eq!(errors.len(), 4);
            emit::drain()
        };
        let serial = run_once(1);
        let parallel = run_once(4);
        set_jobs(0);
        emit::set_mode(emit::EmitMode::Off);
        emit::set_redact(false);
        assert_eq!(serial, parallel, "error stream depends on the job count");
        // 12 cell records + 4 error records, each error right after its
        // cell, in submission order.
        assert_eq!(crate::jsonl::validate(&serial), Ok(16));
        let lines: Vec<&str> = serial.lines().collect();
        assert!(lines[0].contains("\"label\":\"mix/0\""));
        assert!(lines[1].contains("\"type\":\"error\""));
        assert!(lines[1].contains("\"kind\":\"trap\""));
        assert!(lines[1].contains("null dereference"));
    }

    #[test]
    fn panicked_cells_retry_up_to_the_bound() {
        let _guard = JOBS_TEST_LOCK.lock().unwrap();
        set_retries(2);
        let attempts = std::sync::atomic::AtomicU32::new(0);
        let results = par_cells_isolated(vec![cell("retry/always-fails", || -> u64 {
            attempts.fetch_add(1, Ordering::Relaxed);
            panic!("flaky")
        })]);
        set_retries(usize::MAX);
        assert_eq!(attempts.load(Ordering::Relaxed), 3);
        match &results[0] {
            CellResult::Panicked(e) => {
                assert_eq!(e.attempts, 3);
                assert_eq!(e.detail, "flaky");
            }
            other => panic!("expected panic, got {other:?}"),
        }
        // Traps are deterministic: never retried even with retries set.
        set_retries(5);
        let trap_attempts = std::sync::atomic::AtomicU32::new(0);
        let results = par_cells_isolated(vec![cell("retry/trap", || -> u64 {
            trap_attempts.fetch_add(1, Ordering::Relaxed);
            std::panic::panic_any(CellTrap(VmError {
                kind: isf_exec::TrapKind::DivisionByZero,
                function: "f".to_owned(),
            }))
        })]);
        set_retries(usize::MAX);
        assert_eq!(trap_attempts.load(Ordering::Relaxed), 1);
        assert!(matches!(&results[0], CellResult::Trapped(e) if e.attempts == 1));
    }

    #[test]
    fn cancel_after_turns_cells_into_deadline_failures_that_retry_like_panics() {
        let _guard = JOBS_TEST_LOCK.lock().unwrap();
        set_retries(1);
        set_cancel_after(500);
        let attempts = std::sync::atomic::AtomicU32::new(0);
        let w = isf_workloads::by_name("db", Scale::Smoke).unwrap();
        let m = w.compile();
        let results = par_cells_isolated(vec![cell("deadline/db", || {
            attempts.fetch_add(1, Ordering::Relaxed);
            run_module(&m, Trigger::Never).cycles
        })]);
        set_cancel_after(u64::MAX);
        set_retries(usize::MAX);
        // Cancelled attempts are retried like panics (and unlike budget
        // traps): 1 + the configured retry.
        assert_eq!(attempts.load(Ordering::Relaxed), 2);
        match &results[0] {
            CellResult::Deadline(e) => {
                assert_eq!(e.kind, "deadline");
                assert_eq!(e.detail, "cancelled after 500 simulated cycles");
                assert_eq!(e.attempts, 2);
            }
            other => panic!("expected deadline failure, got {other:?}"),
        }
        // A fresh deadline marks the run resumable.
        assert!(deadline_hit());
    }

    #[test]
    fn deadline_errors_roundtrip_through_the_journal_codec() {
        let err = Json::obj([
            ("type", "error".into()),
            ("label", "spin/hang".into()),
            ("kind", "deadline".into()),
            ("detail", "cell deadline of 200 ms exceeded".into()),
            ("attempts", 2u64.into()),
        ]);
        let r: CellResult<u64> = decode_error(&err).expect("deadline errors decode");
        match &r {
            CellResult::Deadline(e) => {
                assert_eq!(e.label, "spin/hang");
                assert_eq!(e.kind, "deadline");
                assert_eq!(e.detail, "cell deadline of 200 ms exceeded");
                assert_eq!(e.attempts, 2);
            }
            other => panic!("expected a replayed deadline, got {other:?}"),
        }
        assert!(r.into_result().is_err(), "a deadline is still a failure");
        let unknown = Json::obj([
            ("type", "error".into()),
            ("label", "x".into()),
            ("kind", "timeout".into()),
            ("detail", "d".into()),
            ("attempts", 1u64.into()),
        ]);
        assert!(
            decode_error::<u64>(&unknown).is_none(),
            "unknown kinds must not decode"
        );
    }

    #[test]
    fn cell_budget_turns_runaway_cells_into_budget_failures() {
        let _guard = JOBS_TEST_LOCK.lock().unwrap();
        set_cell_budget(1_000);
        let w = isf_workloads::by_name("db", Scale::Smoke).unwrap();
        let m = w.compile();
        let results = par_cells_isolated(vec![cell("budget/db", || {
            run_module(&m, Trigger::Never).cycles
        })]);
        set_cell_budget(u64::MAX);
        match &results[0] {
            CellResult::Budget(e) => {
                assert_eq!(e.kind, "budget");
                assert!(e.detail.contains("cycle budget of 1000 exceeded"), "{e}");
            }
            other => panic!("expected budget failure, got {other:?}"),
        }
    }
}
