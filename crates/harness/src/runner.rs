//! Shared experiment machinery: compiling the suite, instrumenting it,
//! running it, and expressing results relative to the uninstrumented
//! baseline — the paper's methodology of §4.1.
//!
//! Experiments decompose into independent *cells*, one (benchmark ×
//! configuration) unit of work each, executed by [`par_cells`] on a scoped
//! worker pool of [`jobs`] threads. The VM is deterministic and every cell
//! is a pure function of its inputs, so a parallel run produces the same
//! rows, bit for bit, as a serial one; results come back in submission
//! order, so table output never depends on the schedule. Per-cell
//! statistics (simulated cycles, wall time, effective simulated MIPS) go
//! to stderr through the leveled [`isf_obs::log`] emitter
//! (`ISF_LOG=off|cells|debug`), keeping stdout byte-identical across job
//! counts; with `ISF_EMIT=json` the same metrics are also captured as
//! machine-readable JSONL records, emitted in submission order.
//!
//! Cells that run one module several times (interval sweeps, trigger
//! comparisons) pre-decode it once with [`prepare_for_runs`] and replay
//! the decoded form with [`run_prepared_module`], amortizing preparation
//! over the whole sweep.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use isf_core::{instrument_module, Options, Strategy, TransformStats};
use isf_exec::{
    run, run_prepared, thread_preparations, CostModel, Outcome, PreparedModule, Trigger, VmConfig,
};
use isf_instr::{CallEdgeInstrumentation, FieldAccessInstrumentation, Instrumentation, ModulePlan};
use isf_ir::Module;
use isf_obs::{emit, log, Json};
use isf_workloads::{suite, Scale, Workload};

// ---------------------------------------------------------------------
// Worker-pool control.
// ---------------------------------------------------------------------

static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the number of worker threads experiment cells run on (`0` clears
/// the override and restores the default resolution).
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The number of worker threads experiment cells run on: the [`set_jobs`]
/// override if one is set, else the `ISF_JOBS` environment variable, else
/// the machine's available parallelism.
pub fn jobs() -> usize {
    let n = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if n > 0 {
        return n;
    }
    if let Some(n) = std::env::var("ISF_JOBS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Serializes tests that mutate the global jobs override.
#[cfg(test)]
pub(crate) static JOBS_TEST_LOCK: Mutex<()> = Mutex::new(());

// ---------------------------------------------------------------------
// The cell engine.
// ---------------------------------------------------------------------

/// One independent unit of experiment work: a label (for the per-cell
/// statistics line on stderr) and a closure producing the cell's result.
pub struct Cell<'scope, R> {
    label: String,
    work: Box<dyn FnOnce() -> R + Send + 'scope>,
}

/// Builds a [`Cell`] for [`par_cells`].
pub fn cell<'scope, R>(
    label: impl Into<String>,
    work: impl FnOnce() -> R + Send + 'scope,
) -> Cell<'scope, R> {
    Cell {
        label: label.into(),
        work: Box::new(work),
    }
}

/// Runs the cells on [`jobs`] worker threads and returns their results in
/// submission order.
///
/// Workers claim cells from an atomic cursor, so the schedule is dynamic,
/// but each cell computes the same result wherever it runs (the VM is
/// deterministic), and the slot a result lands in is fixed by submission
/// order — a table built from the returned vector is identical however
/// many workers ran it. With one worker (or one cell) everything runs on
/// the calling thread.
///
/// # Panics
///
/// Propagates panics from cell closures (e.g. assertion failures inside
/// an experiment).
pub fn par_cells<R: Send>(cells: Vec<Cell<'_, R>>) -> Vec<R> {
    let n = cells.len();
    let workers = jobs().min(n);
    let pairs: Vec<(R, CellMetrics)> = if workers <= 1 {
        cells.into_iter().map(run_cell).collect()
    } else {
        let queue: Vec<Mutex<Option<Cell<'_, R>>>> =
            cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let slots: Vec<Mutex<Option<(R, CellMetrics)>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let c = queue[i]
                        .lock()
                        .expect("cell queue poisoned")
                        .take()
                        .expect("each cell is claimed exactly once");
                    let r = run_cell(c);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("result slot poisoned")
                    .expect("every claimed cell stores a result")
            })
            .collect()
    };
    // JSONL cell records are emitted here, on the calling thread and in
    // submission order, so the stream is byte-stable however many workers
    // ran the cells (wall-clock fields are separately subject to
    // redaction — see `isf_obs::emit`).
    pairs
        .into_iter()
        .map(|(r, metrics)| {
            if emit::enabled() {
                emit::record(&metrics.to_json());
            }
            r
        })
        .collect()
}

thread_local! {
    /// (simulated cycles, instructions) executed by the current cell, fed
    /// by [`run_module`] and [`run_prepared_module`].
    static CELL_STATS: std::cell::Cell<(u64, u64)> = const { std::cell::Cell::new((0, 0)) };
}

fn note_run(outcome: &Outcome) {
    CELL_STATS.with(|c| {
        let (cycles, instructions) = c.get();
        c.set((cycles + outcome.cycles, instructions + outcome.instructions));
    });
}

/// Everything [`run_cell`] measures about one cell: the deterministic
/// counters (simulated cycles, instructions, preparations) plus the
/// wall-clock figures, which are redactable in JSONL output.
struct CellMetrics {
    label: String,
    cycles: u64,
    instructions: u64,
    prepares: u64,
    wall_ns: u64,
    mips: f64,
}

impl CellMetrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("type", "cell".into()),
            ("label", self.label.as_str().into()),
            ("sim_cycles", self.cycles.into()),
            ("instructions", self.instructions.into()),
            ("prepares", self.prepares.into()),
            ("wall_ns", emit::wall_ns(self.wall_ns)),
            ("mips", emit::wall_rate(self.mips)),
        ])
    }
}

/// Runs one cell on the current thread, logging its statistics line —
/// simulated cycles, wall time, and effective simulated MIPS (interpreted
/// instructions per wall-clock microsecond) — at the `cells` level
/// (`ISF_LOG=off` silences it) and returning the measurements alongside
/// the result.
fn run_cell<R>(c: Cell<'_, R>) -> (R, CellMetrics) {
    CELL_STATS.with(|s| s.set((0, 0)));
    let prepares_before = thread_preparations();
    let start = Instant::now();
    let result = (c.work)();
    let wall = start.elapsed();
    let (cycles, instructions) = CELL_STATS.with(|s| s.get());
    let prepares = thread_preparations() - prepares_before;
    let secs = wall.as_secs_f64();
    let mips = if secs > 0.0 {
        instructions as f64 / 1e6 / secs
    } else {
        0.0
    };
    if log::enabled(log::Level::Cells) {
        log::cells(&format!(
            "[cell] {}: {} simulated cycles, {:.1} ms, {:.1} MIPS",
            c.label,
            cycles,
            secs * 1e3,
            mips
        ));
    }
    if prepares > 0 {
        log::debug(&format!("[cell] {}: {prepares} preparations", c.label));
    }
    let metrics = CellMetrics {
        label: c.label,
        cycles,
        instructions,
        prepares,
        wall_ns: u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX),
        mips,
    };
    (result, metrics)
}

// ---------------------------------------------------------------------
// Suite preparation.
// ---------------------------------------------------------------------

/// A compiled benchmark with its uninstrumented baseline run.
pub struct PreparedBench {
    /// Benchmark name.
    pub name: &'static str,
    /// The uninstrumented module.
    pub module: Module,
    /// The baseline outcome (original code, no checks, no samples).
    pub baseline: Outcome,
    /// Wall-clock time the front end took to produce the module — the
    /// denominator of the compile-time-increase column.
    pub frontend_time: Duration,
}

/// Compiles and baselines the whole suite at `scale`, one cell per
/// benchmark.
pub fn prepare_suite(scale: Scale) -> Vec<PreparedBench> {
    let workloads = suite(scale);
    par_cells(
        workloads
            .iter()
            .map(|w| cell(format!("prepare/{}", w.name()), move || prepare(w)))
            .collect(),
    )
}

/// Compiles and baselines one workload.
pub fn prepare(w: &Workload) -> PreparedBench {
    let start = Instant::now();
    let module = w.compile();
    let frontend_time = start.elapsed();
    emit::phase("compile", frontend_time);
    let baseline = run_module(&module, Trigger::Never);
    PreparedBench {
        name: w.name(),
        module,
        baseline,
        frontend_time,
    }
}

// ---------------------------------------------------------------------
// Instrumentation and execution.
// ---------------------------------------------------------------------

/// Which of the paper's two example instrumentations to apply.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Kinds {
    /// Call-edge only (§4.2 example 1).
    CallEdge,
    /// Field-access only (§4.2 example 2).
    FieldAccess,
    /// Both at once (the §4.4 configuration).
    Both,
    /// No instrumentation (framework-overhead runs).
    None,
}

/// Builds the plan for the selected instrumentation kinds.
pub fn plan_for(module: &Module, kinds: Kinds) -> ModulePlan {
    let call = CallEdgeInstrumentation;
    let field = FieldAccessInstrumentation;
    let selected: Vec<&dyn Instrumentation> = match kinds {
        Kinds::CallEdge => vec![&call],
        Kinds::FieldAccess => vec![&field],
        Kinds::Both => vec![&call, &field],
        Kinds::None => vec![],
    };
    ModulePlan::build(module, &selected)
}

/// Instruments a module, returning the result, the transform statistics,
/// and the wall-clock transformation time (the numerator of the
/// compile-time-increase column).
///
/// # Panics
///
/// Panics on invalid option combinations — experiment code is expected to
/// pass valid ones.
pub fn instrument(
    module: &Module,
    kinds: Kinds,
    options: &Options,
) -> (Module, TransformStats, Duration) {
    let plan = plan_for(module, kinds);
    let start = Instant::now();
    let (out, stats) =
        instrument_module(module, &plan, options).expect("experiment configurations are valid");
    let elapsed = start.elapsed();
    emit::phase("instrument", elapsed);
    (out, stats, elapsed)
}

/// Runs a module under the harness VM configuration, decoding it first.
/// For a module run once, this is the whole story; a cell that runs the
/// same module repeatedly should decode once with [`prepare_for_runs`]
/// and replay with [`run_prepared_module`] instead.
///
/// # Panics
///
/// Panics if the program traps — benchmark programs never trap.
pub fn run_module(module: &Module, trigger: Trigger) -> Outcome {
    let cfg = VmConfig {
        trigger,
        ..VmConfig::default()
    };
    let start = Instant::now();
    let outcome = run(module, &cfg).expect("benchmark programs do not trap");
    emit::phase("run", start.elapsed());
    note_run(&outcome);
    outcome
}

/// Pre-decodes a module once, under the harness cost model, for repeated
/// [`run_prepared_module`] runs.
pub fn prepare_for_runs(module: &Module) -> PreparedModule {
    let start = Instant::now();
    let prepared = PreparedModule::prepare(module, &CostModel::default());
    emit::phase("prepare", start.elapsed());
    prepared
}

/// Runs an already-decoded module under the harness VM configuration.
///
/// # Panics
///
/// Panics if the program traps — benchmark programs never trap.
pub fn run_prepared_module(prepared: &PreparedModule, trigger: Trigger) -> Outcome {
    let cfg = VmConfig {
        trigger,
        ..VmConfig::default()
    };
    let start = Instant::now();
    let outcome = run_prepared(prepared, &cfg).expect("benchmark programs do not trap");
    emit::phase("run", start.elapsed());
    note_run(&outcome);
    outcome
}

/// Overhead of `outcome` relative to `baseline`, in percent.
pub fn overhead_pct(outcome: &Outcome, baseline: &Outcome) -> f64 {
    outcome.overhead_vs(baseline)
}

/// Convenience: instrument with `strategy`, run with `trigger`, return the
/// overhead relative to the prepared baseline along with the outcome.
pub fn overhead_of(
    bench: &PreparedBench,
    kinds: Kinds,
    strategy: Strategy,
    trigger: Trigger,
) -> (f64, Outcome) {
    let (module, _, _) = instrument(&bench.module, kinds, &Options::new(strategy));
    let outcome = run_module(&module, trigger);
    let pct = overhead_pct(&outcome, &bench.baseline);
    (pct, outcome)
}

/// The perfect (exhaustive) profile of a benchmark for the given kinds.
pub fn perfect_profile(bench: &PreparedBench, kinds: Kinds) -> isf_profile::ProfileData {
    let (module, _, _) = instrument(&bench.module, kinds, &Options::new(Strategy::Exhaustive));
    run_module(&module, Trigger::Never).profile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_runs_baselines() {
        let w = isf_workloads::by_name("db", Scale::Smoke).unwrap();
        let b = prepare(&w);
        assert!(b.baseline.cycles > 0);
        assert_eq!(b.baseline.checks_executed, 0);
    }

    #[test]
    fn exhaustive_overhead_positive() {
        let w = isf_workloads::by_name("jess", Scale::Smoke).unwrap();
        let b = prepare(&w);
        let (pct, o) = overhead_of(&b, Kinds::Both, Strategy::Exhaustive, Trigger::Never);
        assert!(pct > 0.0);
        assert!(o.profile.total_call_edge_events() > 0);
    }

    #[test]
    fn perfect_profile_nonempty() {
        let w = isf_workloads::by_name("compress", Scale::Smoke).unwrap();
        let b = prepare(&w);
        let p = perfect_profile(&b, Kinds::Both);
        assert!(p.total_field_access_events() > 0);
        assert!(p.total_call_edge_events() > 0);
    }

    #[test]
    fn par_cells_preserves_submission_order() {
        let cells = (0..37)
            .map(|i| cell(format!("order/{i}"), move || i * 3))
            .collect();
        let results = par_cells(cells);
        assert_eq!(results, (0..37).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_cells_runs_borrowing_closures() {
        let data: Vec<u64> = (0..8).collect();
        let cells = data
            .iter()
            .map(|x| cell(format!("borrow/{x}"), move || x + 1))
            .collect();
        assert_eq!(par_cells(cells), (1..=8).collect::<Vec<u64>>());
    }

    #[test]
    fn jobs_override_takes_precedence() {
        let _guard = JOBS_TEST_LOCK.lock().unwrap();
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }

    #[test]
    fn cell_jsonl_is_byte_identical_across_job_counts() {
        // The machine-readable counterpart of table4's determinism test:
        // with wall-clock fields redacted, the JSONL cell stream — labels,
        // simulated cycles, instruction and preparation counts, order —
        // must not depend on the worker count.
        let _guard = JOBS_TEST_LOCK.lock().unwrap();
        emit::set_mode(emit::EmitMode::Json);
        emit::set_redact(true);
        let run_once = |jobs: usize| {
            set_jobs(jobs);
            let t = crate::table1::run(Scale::Smoke);
            t.emit_jsonl();
            emit::drain()
        };
        let serial = run_once(1);
        let parallel = run_once(8);
        set_jobs(0);
        emit::set_mode(emit::EmitMode::Off);
        emit::set_redact(false);
        assert!(!serial.is_empty());
        assert_eq!(serial, parallel, "JSONL stream depends on the job count");
        let records = crate::jsonl::validate(&serial).expect("stream validates");
        // 10 prepare cells + 10 table cells + 10 rows + 1 summary.
        assert_eq!(records, 31);
        assert!(serial.contains("\"type\":\"cell\""));
        assert!(serial.contains("\"wall_ns\":0"), "wall fields are redacted");
    }

    #[test]
    fn prepared_run_matches_unprepared() {
        let w = isf_workloads::by_name("db", Scale::Smoke).unwrap();
        let m = w.compile();
        let p = prepare_for_runs(&m);
        let direct = run_module(&m, Trigger::Counter { interval: 7 });
        let replay = run_prepared_module(&p, Trigger::Counter { interval: 7 });
        assert_eq!(direct, replay);
    }
}
