//! Table 3: No-Duplication checking overhead, no samples taken. The
//! paper's point: guarding cheap operations (field access) with a check of
//! comparable cost is useless (avg 51.1%), while guarding expensive,
//! sparse operations (call-edge) is nearly free (avg 1.3%).

use std::fmt;

use isf_core::Strategy;
use isf_exec::Trigger;

use isf_obs::Json;

use crate::runner::{
    cell, overhead_of, par_cells_journaled, prepare_suite, split_results, CellError,
    JournalPayload, Kinds,
};
use crate::{mean, pct, write_errors, Scale};

/// One benchmark row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Checking overhead with call-edge instrumentation guarded, percent.
    pub call_edge: f64,
    /// Checking overhead with field-access instrumentation guarded,
    /// percent.
    pub field_access: f64,
}

impl JournalPayload for Row {
    fn encode(&self) -> Json {
        Json::obj([
            ("bench", self.bench.into()),
            ("call_edge", self.call_edge.into()),
            ("field_access", self.field_access.into()),
        ])
    }

    fn decode(v: &Json) -> Option<Self> {
        Some(Row {
            bench: isf_workloads::canonical_name(v.get("bench")?.as_str()?)?,
            call_edge: v.get("call_edge")?.as_f64()?,
            field_access: v.get("field_access")?.as_f64()?,
        })
    }
}

/// The reproduced Table 3.
#[derive(Clone, Debug)]
pub struct Table3 {
    /// Per-benchmark rows, suite order.
    pub rows: Vec<Row>,
    /// Average call-edge checking overhead.
    pub avg_call_edge: f64,
    /// Average field-access checking overhead.
    pub avg_field_access: f64,
    /// Cells that failed (prepare or experiment), suite order.
    pub errors: Vec<CellError>,
}

/// Runs the experiment, one isolated cell per benchmark.
pub fn run(scale: Scale) -> Table3 {
    let suite = prepare_suite(scale);
    let results = par_cells_journaled(
        suite
            .benches
            .iter()
            .map(|b| {
                cell(format!("table3/{}", b.name), move || {
                    let (call_edge, o) =
                        overhead_of(b, Kinds::CallEdge, Strategy::NoDuplication, Trigger::Never);
                    debug_assert!(o.profile.is_empty());
                    let (field_access, _) = overhead_of(
                        b,
                        Kinds::FieldAccess,
                        Strategy::NoDuplication,
                        Trigger::Never,
                    );
                    Row {
                        bench: b.name,
                        call_edge,
                        field_access,
                    }
                })
            })
            .collect(),
    );
    let (rows, cell_errors) = split_results(results);
    let mut errors = suite.errors;
    errors.extend(cell_errors);
    Table3 {
        avg_call_edge: mean(rows.iter().map(|r| r.call_edge)),
        avg_field_access: mean(rows.iter().map(|r| r.field_access)),
        rows,
        errors,
    }
}

impl Table3 {
    /// Emits the table as JSONL records (no-op when the emitter is off).
    pub fn emit_jsonl(&self) {
        use isf_obs::{emit, Json};
        if !emit::enabled() {
            return;
        }
        for r in &self.rows {
            emit::record(&Json::obj([
                ("type", "row".into()),
                ("experiment", "table3".into()),
                ("bench", r.bench.into()),
                ("call_edge_pct", r.call_edge.into()),
                ("field_access_pct", r.field_access.into()),
            ]));
        }
        let mut summary = vec![
            ("type", "summary".into()),
            ("experiment", "table3".into()),
            ("avg_call_edge_pct", self.avg_call_edge.into()),
            ("avg_field_access_pct", self.avg_field_access.into()),
        ];
        summary.extend(crate::runner::summary_profile_fields());
        emit::record(&Json::obj(summary));
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 3: No-Duplication checking overhead (no samples)")?;
        writeln!(
            f,
            "{:<14} {:>14} {:>17}",
            "benchmark", "call-edge (%)", "field-access (%)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>14} {:>17}",
                r.bench,
                pct(r.call_edge),
                pct(r.field_access)
            )?;
        }
        writeln!(
            f,
            "{:<14} {:>14} {:>17}",
            "average",
            pct(self.avg_call_edge),
            pct(self.avg_field_access)
        )?;
        writeln!(f, "(paper averages: call-edge 1.3%, field-access 51.1%)")?;
        write_errors(f, &self.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let t = run(Scale::Smoke);
        assert_eq!(t.rows.len(), 10);
        // The headline asymmetry: call-edge guards are cheap, field-access
        // guards cost a large fraction of the instrumentation itself.
        assert!(
            t.avg_call_edge < 10.0,
            "call-edge checking {:.1}% should be cheap",
            t.avg_call_edge
        );
        assert!(
            t.avg_field_access > 4.0 * t.avg_call_edge,
            "field-access checking {:.1}% should dwarf call-edge {:.1}%",
            t.avg_field_access,
            t.avg_call_edge
        );
        // Field-dense compress is the worst row (paper: 151.5%).
        let by_name = |n: &str| t.rows.iter().find(|r| r.bench == n).unwrap();
        assert!(by_name("compress").field_access > t.avg_field_access);
    }

    #[test]
    fn call_edge_column_tracks_entry_checks() {
        // Paper: "column 2 of Table 3 is identical to column 4 of Table 2"
        // (checks on method entries only). Same configuration here, modulo
        // the hoisting shim; allow a small tolerance.
        let t3 = run(Scale::Smoke);
        let t2 = crate::table2::run(Scale::Smoke);
        for (a, b) in t3.rows.iter().zip(&t2.rows) {
            assert!(
                (a.call_edge - b.entries).abs() < 2.0,
                "{}: no-dup call-edge {:.2}% vs entry checks {:.2}%",
                a.bench,
                a.call_edge,
                b.entries
            );
        }
    }
}
