//! Figure 7: the javac call-edge profile — per-edge sample percentages of
//! the perfect profile vs a profile sampled at interval 1,000, plus the
//! overlap score (the paper's instance scores 93.8%).

use std::collections::HashMap;
use std::fmt;

use isf_core::{Options, Strategy};
use isf_exec::Trigger;
use isf_profile::overlap::call_edge_overlap;
use isf_profile::CallEdgeKey;

use crate::runner::{instrument, perfect_profile, prepare, Kinds};
use crate::Scale;

/// One bar of the figure: a call edge with both sample-percentages.
#[derive(Clone, Debug)]
pub struct Bar {
    /// `caller -> callee (@site)` label.
    pub edge: String,
    /// Sample-percentage in the perfect profile.
    pub perfect_pct: f64,
    /// Sample-percentage in the sampled profile.
    pub sampled_pct: f64,
}

/// The reproduced Figure 7.
#[derive(Clone, Debug)]
pub struct Fig7 {
    /// Edges ranked by perfect sample-percentage, descending.
    pub bars: Vec<Bar>,
    /// Overlap percentage between the two profiles.
    pub overlap: f64,
    /// The sample interval used.
    pub interval: u64,
}

/// Runs the experiment on the `javac` benchmark.
pub fn run(scale: Scale) -> Fig7 {
    // Prime intervals sized to each scale's check count, so the sample
    // budget stays proportional to the paper's (interval 1,000 against
    // ~1.1e7 checks) and the deterministic counter cannot alias with the
    // parser's loop periods (§4.4).
    let interval = match scale {
        Scale::Smoke => 37,
        Scale::Default => 151,
        Scale::Paper => 1_009,
    };
    let w = isf_workloads::by_name("javac", scale).expect("javac exists");
    let b = prepare(&w);
    let perfect = perfect_profile(&b, Kinds::CallEdge);
    let (module, _, _) = instrument(
        &b.module,
        Kinds::CallEdge,
        &Options::new(Strategy::FullDuplication),
    );
    let sampled = crate::runner::run_module(&module, Trigger::Counter { interval });
    let overlap = call_edge_overlap(&perfect, &sampled.profile);

    let total_p: u64 = perfect.call_edges().values().sum();
    let total_s: u64 = sampled.profile.call_edges().values().sum();
    let s_map: &HashMap<CallEdgeKey, u64> = sampled.profile.call_edges();
    let mut bars: Vec<Bar> = perfect
        .call_edges()
        .iter()
        .map(|(&key, &count)| {
            let (caller, site, callee) = key;
            Bar {
                edge: format!(
                    "{} -> {} (@{})",
                    b.module.function(caller).name(),
                    b.module.function(callee).name(),
                    site.0
                ),
                perfect_pct: count as f64 / total_p.max(1) as f64 * 100.0,
                sampled_pct: s_map.get(&key).copied().unwrap_or(0) as f64 / total_s.max(1) as f64
                    * 100.0,
            }
        })
        .collect();
    bars.sort_by(|a, b| {
        b.perfect_pct
            .partial_cmp(&a.perfect_pct)
            .expect("percentages are finite")
            .then_with(|| a.edge.cmp(&b.edge))
    });
    Fig7 {
        bars,
        overlap,
        interval,
    }
}

impl Fig7 {
    /// Emits the figure as JSONL records (no-op when the emitter is off).
    pub fn emit_jsonl(&self) {
        use isf_obs::{emit, Json};
        if !emit::enabled() {
            return;
        }
        for bar in &self.bars {
            emit::record(&Json::obj([
                ("type", "row".into()),
                ("experiment", "fig7".into()),
                ("edge", bar.edge.as_str().into()),
                ("perfect_pct", bar.perfect_pct.into()),
                ("sampled_pct", bar.sampled_pct.into()),
            ]));
        }
        let mut summary = vec![
            ("type", "summary".into()),
            ("experiment", "fig7".into()),
            ("overlap_pct", self.overlap.into()),
            ("interval", self.interval.into()),
            ("edges", self.bars.len().into()),
        ];
        summary.extend(crate::runner::summary_profile_fields());
        emit::record(&Json::obj(summary));
    }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 7: javac call-edge profile, perfect vs sampled (interval {})",
            self.interval
        )?;
        writeln!(f, "{:>8} {:>8}  edge", "perf %", "samp %")?;
        for bar in self.bars.iter().take(50) {
            let len = (bar.perfect_pct.round() as usize).min(40);
            writeln!(
                f,
                "{:>8.2} {:>8.2}  {:<44} {}",
                bar.perfect_pct,
                bar.sampled_pct,
                bar.edge,
                "#".repeat(len.max(1))
            )?;
        }
        if self.bars.len() > 50 {
            writeln!(f, "... {} more edges", self.bars.len() - 50)?;
        }
        writeln!(
            f,
            "overlap: {:.1}% over {} edges (paper instance: 93.8%)",
            self.overlap,
            self.bars.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let fig = run(Scale::Smoke);
        // javac has the rich edge population the figure relies on.
        assert!(
            fig.bars.len() >= 25,
            "only {} distinct call edges",
            fig.bars.len()
        );
        // Ranked descending; percentages sum to ~100.
        for w in fig.bars.windows(2) {
            assert!(w[0].perfect_pct >= w[1].perfect_pct);
        }
        let sum: f64 = fig.bars.iter().map(|b| b.perfect_pct).sum();
        assert!((sum - 100.0).abs() < 1e-6);
        // The sampled profile is a high-overlap reconstruction.
        assert!(
            fig.overlap > 80.0,
            "overlap {:.1}% too low for the figure",
            fig.overlap
        );
        // The distribution is skewed (a few hot edges dominate), like the
        // paper's figure.
        assert!(fig.bars[0].perfect_pct > 3.0 * fig.bars[fig.bars.len() / 2].perfect_pct);
    }
}
