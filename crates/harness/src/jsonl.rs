//! Validation of the harness's JSONL output stream against the contract
//! recorded in `schemas/harness-jsonl.schema.json`.
//!
//! The checked-in schema file is the documentation of record; this module
//! is its executable mirror, used by the `validate-jsonl` subcommand and
//! by CI to reject malformed streams without external tooling. Keep the
//! two in sync: every record type and required field here must appear in
//! the schema, and vice versa.

use isf_obs::{json, Json};

/// One validation failure: the 1-based line and what is wrong with it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonlError {
    /// 1-based line number in the stream.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for JsonlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for JsonlError {}

fn fail(line: usize, message: impl Into<String>) -> JsonlError {
    JsonlError {
        line,
        message: message.into(),
    }
}

fn check_kind(value: &Json, kind: Kind) -> bool {
    match kind {
        Kind::Str => value.as_str().is_some(),
        Kind::Num => value.is_number(),
        Kind::Arr => matches!(value, Json::Arr(_)),
        Kind::Obj => matches!(value, Json::Obj(_)),
        Kind::Bool => matches!(value, Json::Bool(_)),
    }
}

fn require(record: &Json, fields: &[(&str, Kind)], line: usize) -> Result<(), JsonlError> {
    for &(name, kind) in fields {
        let value = record
            .get(name)
            .ok_or_else(|| fail(line, format!("missing required field `{name}`")))?;
        if !check_kind(value, kind) {
            return Err(fail(line, format!("field `{name}` has the wrong type")));
        }
    }
    Ok(())
}

/// Like [`require`], but the fields may be absent; present fields must
/// still have the right type.
fn optional(record: &Json, fields: &[(&str, Kind)], line: usize) -> Result<(), JsonlError> {
    for &(name, kind) in fields {
        if let Some(value) = record.get(name) {
            if !check_kind(value, kind) {
                return Err(fail(line, format!("field `{name}` has the wrong type")));
            }
        }
    }
    Ok(())
}

#[derive(Copy, Clone)]
enum Kind {
    Str,
    Num,
    Arr,
    Obj,
    Bool,
}

/// Validates a JSONL stream: every non-empty line must parse as a JSON
/// object of a known record type with its required fields. Returns the
/// number of records validated.
///
/// # Errors
///
/// Returns the first [`JsonlError`] encountered.
pub fn validate(stream: &str) -> Result<usize, JsonlError> {
    let mut records = 0;
    for (i, text) in stream.lines().enumerate() {
        let line = i + 1;
        if text.trim().is_empty() {
            continue;
        }
        let record = json::parse(text).map_err(|e| fail(line, format!("not valid JSON: {e}")))?;
        if !matches!(record, Json::Obj(_)) {
            return Err(fail(line, "record is not a JSON object"));
        }
        let kind = record
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| fail(line, "missing string field `type`"))?;
        match kind {
            "meta" => {
                require(
                    &record,
                    &[
                        ("schema", Kind::Str),
                        ("scale", Kind::Str),
                        ("experiments", Kind::Arr),
                    ],
                    line,
                )?;
                optional(&record, &[("resumed", Kind::Bool)], line)?;
            }
            "cell" => require(
                &record,
                &[
                    ("label", Kind::Str),
                    ("sim_cycles", Kind::Num),
                    ("instructions", Kind::Num),
                    ("prepares", Kind::Num),
                    ("wall_ns", Kind::Num),
                    ("mips", Kind::Num),
                ],
                line,
            )?,
            "error" => {
                require(
                    &record,
                    &[
                        ("label", Kind::Str),
                        ("kind", Kind::Str),
                        ("detail", Kind::Str),
                        ("attempts", Kind::Num),
                    ],
                    line,
                )?;
                let error_kind = record.get("kind").and_then(Json::as_str).unwrap_or("");
                if !matches!(error_kind, "trap" | "panic" | "budget" | "deadline") {
                    return Err(fail(
                        line,
                        format!(
                            "error `kind` must be `trap`, `panic`, `budget`, or `deadline`, got `{error_kind}`"
                        ),
                    ));
                }
            }
            "row" => require(&record, &[("experiment", Kind::Str)], line)?,
            // Schedule exploration (`--explore`): one record per verified
            // benchmark. `seed` is the base seed in hex-string form, so
            // full 64-bit values survive the JSON number round-trip.
            "explore" => require(
                &record,
                &[
                    ("bench", Kind::Str),
                    ("seed", Kind::Str),
                    ("decisions", Kind::Num),
                    ("random_schedules", Kind::Num),
                    ("pct_schedules", Kind::Num),
                    ("dfs_schedules", Kind::Num),
                    ("dfs_exhausted", Kind::Bool),
                ],
                line,
            )?,
            "summary" => {
                require(&record, &[("experiment", Kind::Str)], line)?;
                // Present only when self-profiling is enabled (`--profile`).
                optional(
                    &record,
                    &[
                        ("prep_cache_hits", Kind::Num),
                        ("prep_cache_misses", Kind::Num),
                    ],
                    line,
                )?;
            }
            // Self-profiling records (`--profile`): the aggregated metrics
            // registry and the per-(cat, name) span summaries.
            "metrics" => require(
                &record,
                &[("counters", Kind::Obj), ("histograms", Kind::Obj)],
                line,
            )?,
            "span-summary" => {
                require(&record, &[("spans", Kind::Arr)], line)?;
                if let Some(Json::Arr(spans)) = record.get("spans") {
                    for s in spans {
                        require(
                            s,
                            &[
                                ("cat", Kind::Str),
                                ("name", Kind::Str),
                                ("count", Kind::Num),
                                ("wall_ns", Kind::Num),
                                ("cpu_ns", Kind::Num),
                            ],
                            line,
                        )?;
                    }
                }
            }
            "phase" => require(
                &record,
                &[
                    ("experiment", Kind::Str),
                    ("name", Kind::Str),
                    ("count", Kind::Num),
                    ("wall_ns", Kind::Num),
                ],
                line,
            )?,
            // The cell journal written by `--journal` is itself JSONL, so
            // `validate-jsonl` accepts journal files too.
            "journal-meta" => require(
                &record,
                &[
                    ("schema", Kind::Str),
                    ("fingerprint", Kind::Str),
                    ("version", Kind::Str),
                    ("scale", Kind::Str),
                    ("experiments", Kind::Arr),
                    ("cell_budget", Kind::Num),
                    ("retries", Kind::Num),
                    ("fault_prob_bits", Kind::Num),
                    ("fault_seed", Kind::Num),
                    ("vm_config", Kind::Str),
                ],
                line,
            )?,
            "journal-cell" => {
                require(
                    &record,
                    &[
                        ("label", Kind::Str),
                        ("key", Kind::Str),
                        ("cell", Kind::Obj),
                        ("phases", Kind::Arr),
                    ],
                    line,
                )?;
                // `payload` is deliberately unconstrained: its shape is
                // the experiment's own codec (object, array, ...).
                optional(&record, &[("error", Kind::Obj)], line)?;
            }
            other => return Err(fail(line, format!("unknown record type `{other}`"))),
        }
        records += 1;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_stream() {
        let stream = concat!(
            "{\"type\":\"meta\",\"schema\":\"isf-harness-jsonl/1\",\"scale\":\"smoke\",\"experiments\":[\"table1\"]}\n",
            "{\"type\":\"cell\",\"label\":\"prepare/db\",\"sim_cycles\":1,\"instructions\":2,\"prepares\":0,\"wall_ns\":0,\"mips\":0}\n",
            "{\"type\":\"error\",\"label\":\"table1/db\",\"kind\":\"trap\",\"detail\":\"trap in `main`: division by zero\",\"attempts\":1}\n",
            "{\"type\":\"row\",\"experiment\":\"table1\",\"bench\":\"db\",\"call_edge_pct\":1.5}\n",
            "\n",
            "{\"type\":\"summary\",\"experiment\":\"table1\",\"avg_call_edge_pct\":1.5}\n",
            "{\"type\":\"phase\",\"experiment\":\"table1\",\"name\":\"run\",\"count\":3,\"wall_ns\":0}\n",
        );
        assert_eq!(validate(stream), Ok(6));
    }

    #[test]
    fn accepts_journal_records_and_resumed_meta() {
        let stream = concat!(
            "{\"type\":\"meta\",\"schema\":\"isf-harness-jsonl/1\",\"scale\":\"smoke\",\"experiments\":[\"table1\"],\"resumed\":true}\n",
            "{\"type\":\"journal-meta\",\"schema\":\"isf-journal/1\",\"fingerprint\":\"00ff00ff00ff00ff\",\
             \"version\":\"0.1.0\",\"scale\":\"smoke\",\"experiments\":[\"table1\"],\"cell_budget\":0,\
             \"retries\":1,\"fault_prob_bits\":0,\"fault_seed\":0,\"vm_config\":\"VmConfig { .. }\"}\n",
            "{\"type\":\"journal-cell\",\"label\":\"table1/db\",\"key\":\"0123456789abcdef\",\
             \"cell\":{\"label\":\"table1/db\"},\"payload\":[1,2],\"phases\":[]}\n",
        );
        assert_eq!(validate(stream), Ok(3));
    }

    #[test]
    fn rejects_malformed_journal_records() {
        let bad_resumed =
            "{\"type\":\"meta\",\"schema\":\"s\",\"scale\":\"smoke\",\"experiments\":[],\"resumed\":\"yes\"}";
        assert!(validate(bad_resumed)
            .unwrap_err()
            .message
            .contains("resumed"));

        let no_key = "{\"type\":\"journal-cell\",\"label\":\"x\",\"cell\":{},\"phases\":[]}";
        assert!(validate(no_key).unwrap_err().message.contains("key"));

        let bad_cell =
            "{\"type\":\"journal-cell\",\"label\":\"x\",\"key\":\"0\",\"cell\":7,\"phases\":[]}";
        assert!(validate(bad_cell).unwrap_err().message.contains("cell"));

        let no_fp =
            "{\"type\":\"journal-meta\",\"schema\":\"s\",\"version\":\"v\",\"scale\":\"smoke\",\
                     \"experiments\":[],\"cell_budget\":0,\"retries\":1,\"fault_prob_bits\":0,\
                     \"fault_seed\":0,\"vm_config\":\"c\"}";
        assert!(validate(no_fp).unwrap_err().message.contains("fingerprint"));
    }

    #[test]
    fn accepts_profiling_records() {
        let stream = concat!(
            "{\"type\":\"summary\",\"experiment\":\"table1\",\"avg_call_edge_pct\":1.5,\
             \"prep_cache_hits\":12,\"prep_cache_misses\":3}\n",
            "{\"type\":\"metrics\",\"counters\":{\"op.const.count\":10,\"prep.cache.hits\":2},\
             \"histograms\":{\"trigger.counter.sample_gap_cycles\":\
             {\"count\":1,\"sum\":5,\"min\":5,\"max\":5,\"buckets\":[[3,1]]}}}\n",
            "{\"type\":\"span-summary\",\"spans\":[{\"cat\":\"cell\",\"name\":\"table1/db\",\
             \"count\":1,\"wall_ns\":0,\"cpu_ns\":0}]}\n",
        );
        assert_eq!(validate(stream), Ok(3));
    }

    #[test]
    fn rejects_malformed_profiling_records() {
        let bad_hits = "{\"type\":\"summary\",\"experiment\":\"t\",\"prep_cache_hits\":\"lots\"}";
        assert!(validate(bad_hits)
            .unwrap_err()
            .message
            .contains("prep_cache_hits"));

        let no_histograms = "{\"type\":\"metrics\",\"counters\":{}}";
        assert!(validate(no_histograms)
            .unwrap_err()
            .message
            .contains("histograms"));

        let bad_span = "{\"type\":\"span-summary\",\"spans\":[{\"cat\":\"cell\",\"name\":\"x\"}]}";
        assert!(validate(bad_span).unwrap_err().message.contains("count"));
    }

    #[test]
    fn accepts_explore_records() {
        let stream = concat!(
            "{\"type\":\"explore\",\"bench\":\"pbob\",\"seed\":\"0x5eed\",\"decisions\":42,\
             \"random_schedules\":32,\"pct_schedules\":8,\"dfs_schedules\":0,\
             \"dfs_exhausted\":false}\n",
            "{\"type\":\"summary\",\"experiment\":\"explore\",\"verified\":2,\"failed\":0}\n",
        );
        assert_eq!(validate(stream), Ok(2));
    }

    #[test]
    fn rejects_malformed_explore_records() {
        let no_seed = "{\"type\":\"explore\",\"bench\":\"pbob\",\"decisions\":1,\
             \"random_schedules\":1,\"pct_schedules\":1,\"dfs_schedules\":0,\"dfs_exhausted\":false}";
        assert!(validate(no_seed).unwrap_err().message.contains("seed"));

        let numeric_seed = "{\"type\":\"explore\",\"bench\":\"pbob\",\"seed\":5,\"decisions\":1,\
             \"random_schedules\":1,\"pct_schedules\":1,\"dfs_schedules\":0,\"dfs_exhausted\":false}";
        assert!(
            validate(numeric_seed)
                .unwrap_err()
                .message
                .contains("wrong type"),
            "seed must be the hex string form"
        );
    }

    #[test]
    fn rejects_malformed_error_records() {
        let missing = "{\"type\":\"error\",\"label\":\"x\",\"kind\":\"trap\",\"detail\":\"d\"}";
        assert!(validate(missing).unwrap_err().message.contains("attempts"));
        let wrong =
            "{\"type\":\"error\",\"label\":\"x\",\"kind\":\"trap\",\"detail\":7,\"attempts\":1}";
        assert!(validate(wrong).unwrap_err().message.contains("wrong type"));
    }

    #[test]
    fn error_kind_is_a_closed_enum() {
        for kind in ["trap", "panic", "budget", "deadline"] {
            let good = format!(
                "{{\"type\":\"error\",\"label\":\"x\",\"kind\":\"{kind}\",\"detail\":\"d\",\"attempts\":1}}"
            );
            assert_eq!(validate(&good), Ok(1), "kind `{kind}` must be accepted");
        }
        let bad =
            "{\"type\":\"error\",\"label\":\"x\",\"kind\":\"timeout\",\"detail\":\"d\",\"attempts\":1}";
        let e = validate(bad).unwrap_err();
        assert!(e.message.contains("`timeout`"), "{e}");
        assert!(e.message.contains("deadline"), "{e}");
    }

    #[test]
    fn rejects_bad_records() {
        let bad_json = "{\"type\":\"meta\",";
        assert!(validate(bad_json)
            .unwrap_err()
            .message
            .contains("not valid JSON"));

        let no_type = "{\"label\":\"x\"}";
        assert!(validate(no_type).unwrap_err().message.contains("`type`"));

        let unknown = "{\"type\":\"mystery\"}";
        assert!(validate(unknown).unwrap_err().message.contains("unknown"));

        let missing = "{\"type\":\"cell\",\"label\":\"x\"}";
        let e = validate(missing).unwrap_err();
        assert!(e.message.contains("sim_cycles"), "{e}");

        let wrong_type = "{\"type\":\"phase\",\"experiment\":\"t\",\"name\":\"run\",\"count\":\"three\",\"wall_ns\":0}";
        assert!(validate(wrong_type)
            .unwrap_err()
            .message
            .contains("wrong type"));

        let not_object = "[1,2,3]";
        assert!(validate(not_object)
            .unwrap_err()
            .message
            .contains("not a JSON object"));
    }

    #[test]
    fn error_reports_line_numbers() {
        let stream = "{\"type\":\"row\",\"experiment\":\"t\"}\nnonsense\n";
        let e = validate(stream).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().starts_with("line 2:"));
    }
}
