//! Figure 8: the Jalapeño-specific yieldpoint optimization (§4.5).
//!
//! Part (A): framework overhead per benchmark with the checking code's
//! yieldpoints folded into the sampling checks (paper average: 1.4%,
//! vs 4.9% without the optimization).
//! Part (B): total sampling overhead vs interval with both example
//! instrumentations (paper: converges to ~1.5% instead of ~5%).

use std::fmt;

use isf_core::{Options, Strategy};
use isf_exec::Trigger;

use isf_obs::Json;

use crate::runner::{
    cell, instrument, overhead_pct, par_cells_journaled, prepare_for_runs, prepare_suite,
    run_module, run_prepared_module, split_results, CellError, JournalPayload, Kinds,
};
use crate::{mean, pct, write_errors, Scale};

/// One row of part (A).
#[derive(Clone, Debug)]
pub struct RowA {
    /// Benchmark name.
    pub bench: &'static str,
    /// Framework overhead with the yieldpoint optimization, percent.
    pub framework: f64,
    /// Framework overhead without it (Table 2's total), for the ratio.
    pub unoptimized: f64,
}

impl JournalPayload for (RowA, Vec<f64>) {
    fn encode(&self) -> Json {
        Json::obj([
            ("bench", self.0.bench.into()),
            ("framework", self.0.framework.into()),
            ("unoptimized", self.0.unoptimized.into()),
            (
                "totals",
                Json::Arr(self.1.iter().map(|&t| t.into()).collect()),
            ),
        ])
    }

    fn decode(v: &Json) -> Option<Self> {
        let row_a = RowA {
            bench: isf_workloads::canonical_name(v.get("bench")?.as_str()?)?,
            framework: v.get("framework")?.as_f64()?,
            unoptimized: v.get("unoptimized")?.as_f64()?,
        };
        let totals = v
            .get("totals")?
            .as_arr()?
            .iter()
            .map(|t| t.as_f64())
            .collect::<Option<Vec<f64>>>()?;
        Some((row_a, totals))
    }
}

/// One row of part (B).
#[derive(Clone, Debug)]
pub struct RowB {
    /// The sample interval.
    pub interval: u64,
    /// Total sampling overhead averaged over the suite, percent.
    pub total: f64,
}

/// The reproduced Figure 8 (both tables).
#[derive(Clone, Debug)]
pub struct Fig8 {
    /// Part (A): per-benchmark framework overhead.
    pub rows_a: Vec<RowA>,
    /// Average of part (A).
    pub avg_framework: f64,
    /// Average unoptimized framework overhead, for the ratio.
    pub avg_unoptimized: f64,
    /// Part (B): total sampling overhead per interval.
    pub rows_b: Vec<RowB>,
    /// Cells that failed (prepare or experiment), suite order.
    pub errors: Vec<CellError>,
}

fn yieldpoint_options() -> Options {
    Options::new(Strategy::FullDuplication).with_yieldpoint_optimization()
}

/// Runs both parts, one cell per benchmark: part (A)'s two framework
/// measurements plus the benchmark's part (B) interval series, which is
/// averaged across benchmarks afterwards.
pub fn run(scale: Scale) -> Fig8 {
    let suite = prepare_suite(scale);

    let results = par_cells_journaled(
        suite
            .benches
            .iter()
            .map(|b| {
                cell(format!("fig8/{}", b.name), move || {
                    let (opt, _, _) = instrument(&b.module, Kinds::None, &yieldpoint_options());
                    let framework = overhead_pct(&run_module(&opt, Trigger::Never), &b.baseline);
                    let (plain, _, _) = instrument(
                        &b.module,
                        Kinds::None,
                        &Options::new(Strategy::FullDuplication),
                    );
                    let unoptimized =
                        overhead_pct(&run_module(&plain, Trigger::Never), &b.baseline);
                    let row_a = RowA {
                        bench: b.name,
                        framework,
                        unoptimized,
                    };

                    let (m, _, _) = instrument(&b.module, Kinds::Both, &yieldpoint_options());
                    let prepared = prepare_for_runs(&m);
                    let baseline = b.baseline.cycles as f64;
                    let totals: Vec<f64> = crate::table4::INTERVALS
                        .iter()
                        .map(|&interval| {
                            let o = run_prepared_module(&prepared, Trigger::Counter { interval });
                            (o.cycles as f64 - baseline) / baseline * 100.0
                        })
                        .collect();
                    (row_a, totals)
                })
            })
            .collect(),
    );
    let (per_bench, cell_errors) = split_results(results);
    let mut errors = suite.errors;
    errors.extend(cell_errors);

    let rows_a: Vec<RowA> = per_bench.iter().map(|(a, _)| a.clone()).collect();
    let rows_b: Vec<RowB> = crate::table4::INTERVALS
        .iter()
        .enumerate()
        .map(|(k, &interval)| RowB {
            interval,
            total: mean(per_bench.iter().map(|(_, totals)| totals[k])),
        })
        .collect();

    Fig8 {
        avg_framework: mean(rows_a.iter().map(|r| r.framework)),
        avg_unoptimized: mean(rows_a.iter().map(|r| r.unoptimized)),
        rows_a,
        rows_b,
        errors,
    }
}

impl Fig8 {
    /// Emits the figure as JSONL records (no-op when the emitter is off).
    pub fn emit_jsonl(&self) {
        use isf_obs::{emit, Json};
        if !emit::enabled() {
            return;
        }
        for r in &self.rows_a {
            emit::record(&Json::obj([
                ("type", "row".into()),
                ("experiment", "fig8".into()),
                ("part", "a".into()),
                ("bench", r.bench.into()),
                ("framework_pct", r.framework.into()),
                ("unoptimized_pct", r.unoptimized.into()),
            ]));
        }
        for r in &self.rows_b {
            emit::record(&Json::obj([
                ("type", "row".into()),
                ("experiment", "fig8".into()),
                ("part", "b".into()),
                ("interval", r.interval.into()),
                ("total_pct", r.total.into()),
            ]));
        }
        let mut summary = vec![
            ("type", "summary".into()),
            ("experiment", "fig8".into()),
            ("avg_framework_pct", self.avg_framework.into()),
            ("avg_unoptimized_pct", self.avg_unoptimized.into()),
        ];
        summary.extend(crate::runner::summary_profile_fields());
        emit::record(&Json::obj(summary));
    }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 8 (A): yieldpoint-optimized framework overhead")?;
        writeln!(
            f,
            "{:<14} {:>14} {:>18}",
            "benchmark", "framework (%)", "unoptimized (%)"
        )?;
        for r in &self.rows_a {
            writeln!(
                f,
                "{:<14} {:>14} {:>18}",
                r.bench,
                pct(r.framework),
                pct(r.unoptimized)
            )?;
        }
        writeln!(
            f,
            "{:<14} {:>14} {:>18}",
            "average",
            pct(self.avg_framework),
            pct(self.avg_unoptimized)
        )?;
        writeln!(f, "(paper: 1.4% average, vs 4.9% unoptimized)")?;
        writeln!(f)?;
        writeln!(f, "Figure 8 (B): total sampling overhead, both kinds")?;
        writeln!(f, "{:>9} {:>11}", "interval", "total (%)")?;
        for r in &self.rows_b {
            writeln!(f, "{:>9} {:>11}", r.interval, pct(r.total))?;
        }
        writeln!(f, "(paper: 179.9% at interval 1, converging to ~1.5%)")?;
        write_errors(f, &self.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let fig = run(Scale::Smoke);
        assert_eq!(fig.rows_a.len(), 10);
        // The optimization pays: optimized average well below unoptimized.
        assert!(
            fig.avg_framework < fig.avg_unoptimized / 2.0,
            "optimized {:.1}% vs unoptimized {:.1}%",
            fig.avg_framework,
            fig.avg_unoptimized
        );
        assert!(fig.avg_framework >= 0.0);
        // Part (B): overhead decreases with the interval and converges
        // below the unoptimized framework average.
        for w in fig.rows_b.windows(2) {
            assert!(w[1].total <= w[0].total + 1e-6);
        }
        let floor = fig.rows_b.last().unwrap().total;
        assert!(
            floor < fig.avg_unoptimized,
            "converged overhead {floor:.1}% should undercut the plain framework"
        );
    }
}
