//! Command-line entry point: regenerate any table or figure of the paper,
//! optionally as a machine-readable JSONL stream, with crash-safe
//! durability for long runs.
//!
//! ```text
//! isf-harness [--scale smoke|default|paper] [--jobs N]
//!             [--emit json|off] [--emit-path FILE]
//!             [--retries N] [--cell-budget CYCLES]
//!             [--cell-deadline MS] [--run-deadline MS]
//!             [--cancel-after-cycles CYCLES]
//!             [--fault-inject p=<prob>[,seed=<s>]]
//!             [--journal FILE] [--resume] [--no-fuse] [--pgo]
//!             [--profile] [--trace-out FILE] <experiment>...
//! isf-harness --explore schedules=N[,seed=S] [--scale ...] [--jobs N]
//!             [--emit json|off] [--emit-path FILE] <benchmark>...|all
//! isf-harness bench-snapshot [--scale ...] [--out DIR]
//! isf-harness validate-jsonl <FILE>
//! experiments: table1 table2 table3 table4 table5 fig7 fig8 extras all
//! ```
//!
//! Experiment cells run on `N` worker threads (default: `ISF_JOBS` or the
//! machine's available parallelism). The VM is deterministic, so the
//! tables on stdout are byte-identical for every job count; per-cell
//! statistics go to stderr through the leveled logger
//! (`ISF_LOG=off|cells|debug`).
//!
//! With `--emit json` (or `ISF_EMIT=json`) the run also produces a JSONL
//! stream — one `meta` record, then per-cell metrics, table rows,
//! summaries, and phase timings — written to stdout (replacing the human
//! tables) or, with `--emit-path FILE`, to the file while the tables stay
//! on stdout. The stream is byte-stable across `--jobs` counts when
//! wall-clock fields are redacted (`ISF_EMIT_REDACT_WALL=1`); see
//! `schemas/harness-jsonl.schema.json` for the record contract.
//!
//! With `--journal FILE` (or `ISF_JOURNAL`) every finished cell is
//! appended to a crash-safe journal; SIGINT/SIGTERM drain in-flight cells
//! and exit with code 75 (resumable), and `--resume` replays the journal
//! so the completed run's stdout and JSONL are byte-identical to an
//! uninterrupted run's.
//!
//! With `--cell-deadline MS` (or `ISF_CELL_DEADLINE`) a watchdog thread
//! cooperatively cancels any cell attempt that runs longer than `MS`
//! wall-clock milliseconds; the cell is annotated (`!!`, a `deadline`
//! error record) while its siblings complete, and the run exits 75.
//! `--run-deadline MS` bounds the whole run: when it elapses the harness
//! stops claiming new cells, drains in-flight ones through the same
//! machinery as SIGINT, and exits 75 — with `--journal`, a later
//! `--resume` picks up exactly where the deadline stopped it.
//! `--cancel-after-cycles CYCLES` (or `ISF_CANCEL_AFTER`) cancels every
//! cell run at a fixed *simulated* cycle instead — deterministic, so
//! tests can exercise the deadline plumbing byte-reproducibly.
//!
//! With `--no-fuse` (or `ISF_FUSE=0`) the prepared engine skips the
//! superinstruction fusion pass. Fusion is observably equivalent — every
//! table, cycle count, and JSONL record is byte-identical either way —
//! so the flag exists for ablation measurements and the CI equivalence
//! diff, not for correctness.
//!
//! With `--pgo` (or `ISF_PGO=1`) the preparation cache serves each module
//! through a warmup-then-reprepare flow: a short profiling cell runs the
//! statically fused form, its folded profile is distilled into fusion
//! guidance, and the module is re-prepared with guided superinstructions
//! covering the call-dense sequences the static catalogue cannot express.
//! Observable results are byte-identical to a statically-fused (or
//! unfused) run; only fusion coverage moves.
//!
//! With `--profile` (or `ISF_PROFILE=1`) the VM self-profiles: engines
//! run through the per-opcode `ProfileSink`, dispatch/cycle attribution
//! and trigger gap histograms land in the metrics registry, a
//! fusion-coverage report prints to stderr, and the JSONL stream gains a
//! `metrics` and a `span-summary` record plus preparation-cache counters
//! on each `summary`. Cycle counts and traps are identical with and
//! without profiling; with it off, output is byte-identical to a build
//! without the subsystem. `--trace-out FILE` additionally records
//! hierarchical spans (run → phase → experiment → cell → attempt) and
//! writes them as Chrome trace-event JSON, loadable in Perfetto.
//!
//! With `--explore schedules=N[,seed=S]` the harness fuzzes the
//! green-thread scheduler instead of running experiments: for each named
//! benchmark it records a round-robin baseline, `N` seeded-random and a
//! smaller set of PCT-priority schedules, plus a bounded exhaustive DFS
//! when the schedule tree is shallow, replaying every schedule trace
//! byte-identically on all four engine configurations and asserting the
//! schedule-independent observables never vary. A failure prints the
//! benchmark, seed, and compact trace that reproduce the interleaving
//! deterministically; `--emit json` adds one `explore` record per
//! benchmark.

use std::path::PathBuf;
use std::process::ExitCode;

use isf_harness::cli::{self, CliError, Command, ExploreConfig, RunConfig, SnapshotConfig};
use isf_harness::{
    explore, extras, fig7, fig8, journal, jsonl, runner, snapshot, spin, table1, table2, table3,
    table4, table5,
};
use isf_obs::{emit, log, metrics, span, Json};

/// Registers a drain request for SIGINT/SIGTERM. The handler only flips
/// an atomic flag — async-signal-safe — and the worker pool does the
/// actual draining: in-flight cells finish, get journaled, and the
/// process exits with [`journal::RESUMABLE_EXIT`].
extern "C" fn on_interrupt(_sig: i32) {
    journal::request_drain();
}

fn install_drain_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `on_interrupt` is async-signal-safe (a single atomic store)
    // and matches the handler ABI `signal(2)` expects.
    unsafe {
        signal(SIGINT, on_interrupt);
        signal(SIGTERM, on_interrupt);
    }
}

fn usage_failure() -> ExitCode {
    log::error(cli::USAGE);
    ExitCode::FAILURE
}

/// Emits one `phase` record per accumulated phase, draining the global
/// accumulator. Called after each experiment so the timings attribute to
/// it. When span tracing is on, each phase total also enters the trace as
/// a completed span under the experiment it belongs to.
fn emit_phases(experiment: &str) {
    for p in emit::take_phases() {
        span::record_completed("phase", format!("{experiment}/{}", p.name), p.wall_ns);
        if !emit::enabled() {
            continue;
        }
        emit::record(&Json::obj([
            ("type", "phase".into()),
            ("experiment", experiment.to_owned().into()),
            ("name", p.name.into()),
            ("count", p.count.into()),
            ("wall_ns", emit::wall_ns(p.wall_ns)),
        ]));
    }
}

/// Derives and logs the fusion-coverage report: the share of each
/// benchmark's dynamic instruction stream the prepared engine executed
/// through fused superinstructions. Goes to stderr (never stdout, which
/// must stay byte-identical to a profiling-disabled run) and into the
/// metrics registry as `fusion.<bench>.*` counters.
fn report_fusion_coverage(scale: isf_harness::Scale) {
    log::cells("[profile] fusion coverage (dynamic instructions executed fused):");
    for c in runner::fusion_coverage(scale) {
        if runner::pgo() {
            log::cells(&format!(
                "[profile]   {:<10} {:>5.1}%  ({} / {} instructions, {} guided = {:.1}%)",
                c.name,
                c.coverage_pct,
                c.fused_instructions,
                c.total_instructions,
                c.guided_instructions,
                c.guided_pct()
            ));
        } else {
            log::cells(&format!(
                "[profile]   {:<10} {:>5.1}%  ({} / {} instructions)",
                c.name, c.coverage_pct, c.fused_instructions, c.total_instructions
            ));
        }
    }
}

/// Drains the span tracer and metrics registry at the end of a run:
/// writes the Chrome trace file (`--trace-out`) and appends the `metrics`
/// and `span-summary` records to the JSONL stream when profiling is
/// enabled. Entirely a no-op when neither profiling nor tracing was
/// requested, so default runs stay byte-identical.
fn finish_observability(cfg: &RunConfig, profiling: bool) -> Result<(), ExitCode> {
    if !profiling && cfg.trace_out.is_none() {
        return Ok(());
    }
    let events = span::take_events();
    if let Some(path) = &cfg.trace_out {
        let trace = span::chrome_trace(&events);
        if let Err(e) = std::fs::write(path, format!("{trace}\n")) {
            log::error(&format!("--trace-out {}: {e}", path.display()));
            return Err(ExitCode::FAILURE);
        }
        log::cells(&format!(
            "[trace] wrote {} span(s) to {}",
            events.len(),
            path.display()
        ));
    }
    if profiling && emit::enabled() {
        emit::record(&metrics::snapshot().to_json());
        emit::record(&span::summary_record(&span::summarize(&events)));
    }
    Ok(())
}

fn bench_snapshot(cfg: &SnapshotConfig) -> ExitCode {
    if let Some(n) = cfg.jobs {
        runner::set_jobs(n);
    }
    match snapshot::write(cfg.scale, &cfg.out) {
        Ok(path) => {
            log::cells(&format!("wrote {}", path.display()));
            ExitCode::SUCCESS
        }
        Err(e) => {
            log::error(&format!("bench-snapshot: {e}"));
            ExitCode::FAILURE
        }
    }
}

fn validate_jsonl(path: &str) -> ExitCode {
    let stream = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            log::error(&format!("validate-jsonl: {path}: {e}"));
            return ExitCode::FAILURE;
        }
    };
    match jsonl::validate(&stream) {
        Ok(n) => {
            println!("{path}: {n} records OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            log::error(&format!("validate-jsonl: {path}: {e}"));
            ExitCode::FAILURE
        }
    }
}

/// Attaches the cell journal when one is configured (`--journal` or
/// `ISF_JOURNAL`): fresh for a normal run, replaying for `--resume`.
/// Returns an error message when the run must not proceed.
fn attach_journal(cfg: &RunConfig) -> Result<(), String> {
    let journal_path = cfg.journal.clone().or_else(|| {
        std::env::var("ISF_JOURNAL")
            .ok()
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .map(PathBuf::from)
    });
    let Some(path) = journal_path else {
        if cfg.resume {
            return Err("--resume needs a journal: pass --journal FILE or set ISF_JOURNAL".into());
        }
        return Ok(());
    };
    let inputs = runner::run_inputs(cfg.scale, &cfg.experiments);
    if cfg.resume {
        let replayable = journal::open_resume(&path, &inputs)
            .map_err(|e| format!("cannot resume from {}: {e}", path.display()))?;
        log::cells(&format!(
            "[journal] resuming from {}: {replayable} finished cell(s) will be replayed",
            path.display()
        ));
    } else {
        journal::start_fresh(&path, &inputs)
            .map_err(|e| format!("cannot start journal {}: {e}", path.display()))?;
    }
    install_drain_handlers();
    Ok(())
}

/// Runs schedule exploration (`--explore`): one isolated cell per
/// benchmark, the report on stdout (or emitted as `explore` JSONL
/// records), nonzero exit when any benchmark failed verification — the
/// `!!` annotation and `error` record carry the seed and trace that
/// reproduce the failing schedule.
fn run_explore(cfg: &ExploreConfig) -> ExitCode {
    if let Some(n) = cfg.jobs {
        runner::set_jobs(n);
    }
    if let Some(json) = cfg.emit_json {
        emit::set_mode(if json {
            emit::EmitMode::Json
        } else {
            emit::EmitMode::Off
        });
    }
    let emitting = emit::enabled();
    let report_to_stdout = !emitting || cfg.emit_path.is_some();
    if emitting {
        emit::take_phases();
        emit::record(&Json::obj([
            ("type", "meta".into()),
            ("schema", "isf-harness-jsonl/1".into()),
            ("scale", snapshot::scale_name(cfg.scale).into()),
            (
                "experiments",
                Json::Arr(cfg.benches.iter().map(|e| e.as_str().into()).collect()),
            ),
        ]));
    }
    let report = explore::run(cfg.scale, cfg.spec, &cfg.benches);
    if report_to_stdout {
        println!("{report}");
    }
    report.emit_jsonl();
    for e in &report.errors {
        log::error(&format!(
            "isf-harness: explore: {e} (the seed in the message replays this schedule deterministically)"
        ));
    }
    if emitting {
        let stream = emit::drain();
        match &cfg.emit_path {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &stream) {
                    log::error(&format!("--emit-path {}: {e}", path.display()));
                    return ExitCode::FAILURE;
                }
            }
            None => print!("{stream}"),
        }
    }
    if report.errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run(cfg: &RunConfig) -> ExitCode {
    if let Some(n) = cfg.jobs {
        runner::set_jobs(n);
    }
    if let Some(n) = cfg.retries {
        runner::set_retries(n);
    }
    if let Some(n) = cfg.cell_budget {
        runner::set_cell_budget(n);
    }
    if let Some(ms) = cfg.cell_deadline {
        runner::set_cell_deadline(ms);
    }
    if let Some(n) = cfg.cancel_after {
        runner::set_cancel_after(n);
    }
    if let Some((p, seed)) = cfg.fault {
        runner::set_fault_injection(p, seed);
    }
    if cfg.no_fuse {
        isf_exec::set_fuse_mode(Some(isf_exec::FuseMode::Off));
    }
    if cfg.pgo {
        runner::set_pgo(true);
    }
    let profiling = cfg.profile
        || std::env::var("ISF_PROFILE")
            .map(|v| v.trim() == "1")
            .unwrap_or(false);
    if profiling {
        runner::set_profiling(true);
    }
    if profiling || cfg.trace_out.is_some() {
        span::set_enabled(true);
    }
    if let Some(json) = cfg.emit_json {
        emit::set_mode(if json {
            emit::EmitMode::Json
        } else {
            emit::EmitMode::Off
        });
    }
    if let Err(msg) = attach_journal(cfg) {
        log::error(&format!("isf-harness: {msg}"));
        return ExitCode::FAILURE;
    }
    if let Some(ms) = cfg.run_deadline.filter(|&ms| ms > 0) {
        // A detached timer: when the run deadline elapses it requests the
        // same drain SIGINT does — stop claiming cells, finish (and
        // journal) in-flight ones, exit resumable. If the run finishes
        // first the process exits and the timer dies with it.
        std::thread::Builder::new()
            .name("isf-run-deadline".into())
            .spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                journal::request_drain();
            })
            .expect("spawn run-deadline timer");
    }

    let emitting = emit::enabled();
    // When the JSONL stream goes to stdout, stdout must stay pure JSONL;
    // a file target keeps the human tables on stdout.
    let tables_to_stdout = !emitting || cfg.emit_path.is_some();
    if emitting {
        emit::take_phases(); // start the accumulator fresh
        let mut meta: Vec<(&'static str, Json)> = vec![
            ("type", "meta".into()),
            ("schema", "isf-harness-jsonl/1".into()),
            ("scale", snapshot::scale_name(cfg.scale).into()),
            (
                "experiments",
                Json::Arr(cfg.experiments.iter().map(|e| e.as_str().into()).collect()),
            ),
        ];
        // Only resumed runs carry the marker, so failure-free non-journal
        // runs stay byte-identical to pre-journal streams.
        if cfg.resume {
            meta.push(("resumed", true.into()));
        }
        emit::record(&Json::obj(meta));
    }

    let run_span = span::begin("run", "isf-harness");
    for (i, e) in cfg.experiments.iter().enumerate() {
        if i > 0 && tables_to_stdout {
            println!();
        }
        let _experiment_span = span::begin("experiment", e.as_str());
        macro_rules! experiment {
            ($module:ident) => {{
                let t = $module::run(cfg.scale);
                if tables_to_stdout {
                    println!("{t}");
                }
                t.emit_jsonl();
            }};
        }
        match e.as_str() {
            "table1" => experiment!(table1),
            "table2" => experiment!(table2),
            "table3" => experiment!(table3),
            "table4" => experiment!(table4),
            "table5" => experiment!(table5),
            "fig7" => experiment!(fig7),
            "extras" => experiment!(extras),
            "spin" => experiment!(spin),
            "fig8" | "fig8a" | "fig8b" => experiment!(fig8),
            other => {
                log::error(&format!("isf-harness: unknown experiment `{other}`"));
                return ExitCode::FAILURE;
            }
        }
        emit_phases(e);
    }
    drop(run_span);

    if profiling {
        report_fusion_coverage(cfg.scale);
    }
    if let Err(code) = finish_observability(cfg, profiling) {
        return code;
    }

    if emitting {
        let stream = emit::drain();
        match &cfg.emit_path {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &stream) {
                    log::error(&format!("--emit-path {}: {e}", path.display()));
                    return ExitCode::FAILURE;
                }
            }
            None => print!("{stream}"),
        }
    }
    journal::deactivate();
    if runner::deadline_hit() {
        // The run *completed* — every cell ran or was cancelled, tables
        // and JSONL were written — but at least one fresh cell was lost
        // to the deadline, so signal resumable like an interrupted run.
        let code = u8::try_from(journal::RESUMABLE_EXIT).expect("exit code fits u8");
        return ExitCode::from(code);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::parse(&args) {
        Ok(Command::Run(cfg)) => run(&cfg),
        Ok(Command::Explore(cfg)) => run_explore(&cfg),
        Ok(Command::BenchSnapshot(cfg)) => bench_snapshot(&cfg),
        Ok(Command::ValidateJsonl { path }) => validate_jsonl(&path),
        Ok(Command::Help) => {
            log::error(cli::USAGE);
            ExitCode::SUCCESS
        }
        Err(CliError::Bad(msg)) => {
            log::error(&format!("isf-harness: {msg}"));
            ExitCode::FAILURE
        }
        Err(CliError::Usage) => usage_failure(),
    }
}
