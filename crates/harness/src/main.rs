//! Command-line entry point: regenerate any table or figure of the paper.
//!
//! ```text
//! isf-harness [--scale smoke|default|paper] [--jobs N] <experiment>...
//! experiments: table1 table2 table3 table4 table5 fig7 fig8 all
//! ```
//!
//! Experiment cells run on `N` worker threads (default: `ISF_JOBS` or the
//! machine's available parallelism). The VM is deterministic, so the
//! tables on stdout are byte-identical for every job count; per-cell
//! statistics go to stderr.

use std::process::ExitCode;

use isf_harness::{extras, fig7, fig8, runner, table1, table2, table3, table4, table5, Scale};

fn usage() -> ExitCode {
    eprintln!(
        "usage: isf-harness [--scale smoke|default|paper] [--jobs N] <experiment>...\n\
         experiments: table1 table2 table3 table4 table5 fig7 fig8 extras all\n\
         N defaults to $ISF_JOBS, then the machine's available parallelism"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut scale = Scale::Default;
    let mut experiments: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(v) = args.next() else { return usage() };
                scale = match v.as_str() {
                    "smoke" => Scale::Smoke,
                    "default" => Scale::Default,
                    "paper" => Scale::Paper,
                    _ => return usage(),
                };
            }
            "--jobs" => {
                let Some(v) = args.next() else { return usage() };
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => runner::set_jobs(n),
                    _ => return usage(),
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => experiments.push(other.to_owned()),
        }
    }
    if experiments.is_empty() {
        return usage();
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = [
            "table1", "table2", "table3", "table4", "table5", "fig7", "fig8",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    }
    for (i, e) in experiments.iter().enumerate() {
        if i > 0 {
            println!();
        }
        match e.as_str() {
            "table1" => println!("{}", table1::run(scale)),
            "table2" => println!("{}", table2::run(scale)),
            "table3" => println!("{}", table3::run(scale)),
            "table4" => println!("{}", table4::run(scale)),
            "table5" => println!("{}", table5::run(scale)),
            "fig7" => println!("{}", fig7::run(scale)),
            "extras" => println!("{}", extras::run(scale)),
            "fig8" | "fig8a" | "fig8b" => println!("{}", fig8::run(scale)),
            _ => return usage(),
        }
    }
    ExitCode::SUCCESS
}
