//! Command-line entry point: regenerate any table or figure of the paper,
//! optionally as a machine-readable JSONL stream.
//!
//! ```text
//! isf-harness [--scale smoke|default|paper] [--jobs N]
//!             [--emit json|off] [--emit-path FILE] <experiment>...
//! isf-harness bench-snapshot [--scale ...] [--out DIR]
//! isf-harness validate-jsonl <FILE>
//! experiments: table1 table2 table3 table4 table5 fig7 fig8 extras all
//! ```
//!
//! Experiment cells run on `N` worker threads (default: `ISF_JOBS` or the
//! machine's available parallelism). The VM is deterministic, so the
//! tables on stdout are byte-identical for every job count; per-cell
//! statistics go to stderr through the leveled logger
//! (`ISF_LOG=off|cells|debug`).
//!
//! With `--emit json` (or `ISF_EMIT=json`) the run also produces a JSONL
//! stream — one `meta` record, then per-cell metrics, table rows,
//! summaries, and phase timings — written to stdout (replacing the human
//! tables) or, with `--emit-path FILE`, to the file while the tables stay
//! on stdout. The stream is byte-stable across `--jobs` counts when
//! wall-clock fields are redacted (`ISF_EMIT_REDACT_WALL=1`); see
//! `schemas/harness-jsonl.schema.json` for the record contract.

use std::path::PathBuf;
use std::process::ExitCode;

use isf_harness::{
    extras, fig7, fig8, jsonl, runner, snapshot, table1, table2, table3, table4, table5, Scale,
};
use isf_obs::{emit, log, Json};

fn usage() -> ExitCode {
    log::error(
        "usage: isf-harness [--scale smoke|default|paper] [--jobs N]\n\
         \x20                  [--emit json|off] [--emit-path FILE]\n\
         \x20                  [--retries N] [--cell-budget CYCLES]\n\
         \x20                  [--fault-inject p=<prob>[,seed=<s>]] <experiment>...\n\
         \x20      isf-harness bench-snapshot [--scale smoke|default|paper] [--jobs N] [--out DIR]\n\
         \x20      isf-harness validate-jsonl <FILE>\n\
         experiments: table1 table2 table3 table4 table5 fig7 fig8 extras all\n\
         N defaults to $ISF_JOBS, then the machine's available parallelism;\n\
         --retries defaults to $ISF_RETRIES (0), --cell-budget to $ISF_CELL_BUDGET (uncapped)",
    );
    ExitCode::FAILURE
}

fn parse_scale(v: &str) -> Option<Scale> {
    match v {
        "smoke" => Some(Scale::Smoke),
        "default" => Some(Scale::Default),
        "paper" => Some(Scale::Paper),
        _ => None,
    }
}

/// Emits one `phase` record per accumulated phase, draining the global
/// accumulator. Called after each experiment so the timings attribute to
/// it.
fn emit_phases(experiment: &str) {
    for p in emit::take_phases() {
        if !emit::enabled() {
            continue;
        }
        emit::record(&Json::obj([
            ("type", "phase".into()),
            ("experiment", experiment.to_owned().into()),
            ("name", p.name.into()),
            ("count", p.count.into()),
            ("wall_ns", emit::wall_ns(p.wall_ns)),
        ]));
    }
}

fn bench_snapshot(args: &[String]) -> ExitCode {
    let mut scale = Scale::Smoke;
    let mut out = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(v) = it.next().and_then(|v| parse_scale(v)) else {
                    return usage();
                };
                scale = v;
            }
            "--jobs" => {
                let Some(n) = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                else {
                    return usage();
                };
                runner::set_jobs(n);
            }
            "--out" => {
                let Some(v) = it.next() else { return usage() };
                out = PathBuf::from(v);
            }
            _ => return usage(),
        }
    }
    match snapshot::write(scale, &out) {
        Ok(path) => {
            log::cells(&format!("wrote {}", path.display()));
            ExitCode::SUCCESS
        }
        Err(e) => {
            log::error(&format!("bench-snapshot: {e}"));
            ExitCode::FAILURE
        }
    }
}

fn validate_jsonl(args: &[String]) -> ExitCode {
    let [path] = args else { return usage() };
    let stream = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            log::error(&format!("validate-jsonl: {path}: {e}"));
            return ExitCode::FAILURE;
        }
    };
    match jsonl::validate(&stream) {
        Ok(n) => {
            println!("{path}: {n} records OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            log::error(&format!("validate-jsonl: {path}: {e}"));
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("bench-snapshot") => return bench_snapshot(&args[1..]),
        Some("validate-jsonl") => return validate_jsonl(&args[1..]),
        _ => {}
    }

    let mut scale = Scale::Default;
    let mut emit_path: Option<PathBuf> = None;
    let mut experiments: Vec<String> = Vec::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(v) = args.next().and_then(|v| parse_scale(&v)) else {
                    return usage();
                };
                scale = v;
            }
            "--jobs" => {
                let Some(v) = args.next() else { return usage() };
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => runner::set_jobs(n),
                    _ => return usage(),
                }
            }
            "--emit" => match args.next().as_deref() {
                Some("json") => emit::set_mode(emit::EmitMode::Json),
                Some("off") => emit::set_mode(emit::EmitMode::Off),
                _ => return usage(),
            },
            "--retries" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage();
                };
                runner::set_retries(n);
            }
            "--cell-budget" => {
                let Some(n) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return usage();
                };
                runner::set_cell_budget(n);
            }
            "--fault-inject" => {
                let Some(spec) = args.next() else {
                    return usage();
                };
                match runner::parse_fault_spec(&spec) {
                    Ok((p, seed)) => runner::set_fault_injection(p, seed),
                    Err(e) => {
                        log::error(&format!("--fault-inject: {e}"));
                        return usage();
                    }
                }
            }
            "--emit-path" => {
                let Some(v) = args.next() else { return usage() };
                emit_path = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => experiments.push(other.to_owned()),
        }
    }
    if experiments.is_empty() {
        return usage();
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = [
            "table1", "table2", "table3", "table4", "table5", "fig7", "fig8",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    }

    let emitting = emit::enabled();
    // When the JSONL stream goes to stdout, stdout must stay pure JSONL;
    // a file target keeps the human tables on stdout.
    let tables_to_stdout = !emitting || emit_path.is_some();
    if emitting {
        emit::take_phases(); // start the accumulator fresh
        emit::record(&Json::obj([
            ("type", "meta".into()),
            ("schema", "isf-harness-jsonl/1".into()),
            ("scale", snapshot::scale_name(scale).into()),
            (
                "experiments",
                Json::Arr(experiments.iter().map(|e| e.as_str().into()).collect()),
            ),
        ]));
    }

    for (i, e) in experiments.iter().enumerate() {
        if i > 0 && tables_to_stdout {
            println!();
        }
        macro_rules! experiment {
            ($module:ident) => {{
                let t = $module::run(scale);
                if tables_to_stdout {
                    println!("{t}");
                }
                t.emit_jsonl();
            }};
        }
        match e.as_str() {
            "table1" => experiment!(table1),
            "table2" => experiment!(table2),
            "table3" => experiment!(table3),
            "table4" => experiment!(table4),
            "table5" => experiment!(table5),
            "fig7" => experiment!(fig7),
            "extras" => experiment!(extras),
            "fig8" | "fig8a" | "fig8b" => experiment!(fig8),
            _ => return usage(),
        }
        emit_phases(e);
    }

    if emitting {
        let stream = emit::drain();
        match emit_path {
            Some(path) => {
                if let Err(e) = std::fs::write(&path, &stream) {
                    log::error(&format!("--emit-path {}: {e}", path.display()));
                    return ExitCode::FAILURE;
                }
            }
            None => print!("{stream}"),
        }
    }
    ExitCode::SUCCESS
}
