//! The hung-cell watchdog: one lazily-started timer thread that fires
//! [`CancelToken`]s when a registered deadline elapses.
//!
//! A worker about to run a cell attempt registers `(token, deadline)`
//! with [`watch`] and holds the returned guard while the work runs; the
//! guard deregisters on drop, so a cell that finishes in time costs the
//! watchdog two short registry locks and nothing else. If the deadline
//! elapses first, the watchdog thread fires the token with
//! [`CancelToken::cancel_from`] — a compare-and-swap against the epoch
//! captured at registration — so a fire that races the cell's completion
//! can never cancel whatever the worker thread runs next.
//!
//! The watchdog does not classify, retry, or report anything: the
//! cancelled engine unwinds with `TrapKind::Cancelled` through the
//! ordinary trap path and the cell isolation layer in [`crate::runner`]
//! turns it into a [`CellResult::Deadline`]. Wall-clock deadlines are
//! inherently nondeterministic, which is why everything observable about
//! a deadlined cell (the error detail, the zeroed run counters) is
//! derived from configuration, not from how far the cell happened to get.
//!
//! [`CellResult::Deadline`]: crate::runner::CellResult::Deadline

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use isf_exec::CancelToken;

/// One armed deadline: when to fire, and the token/epoch pair to fire at.
struct Entry {
    deadline: Instant,
    token: CancelToken,
    snapshot: u64,
}

#[derive(Default)]
struct Registry {
    entries: HashMap<u64, Entry>,
    next_id: u64,
}

struct Inner {
    registry: Mutex<Registry>,
    wake: Condvar,
}

fn lock(inner: &Inner) -> MutexGuard<'_, Registry> {
    inner.registry.lock().unwrap_or_else(|p| p.into_inner())
}

/// The process-wide watchdog, started on first use. The thread parks on
/// the condvar whenever nothing is armed, so a harness run that never
/// configures a deadline pays exactly one idle thread — and not even
/// that unless [`watch`] is called.
fn instance() -> &'static Arc<Inner> {
    static INSTANCE: OnceLock<Arc<Inner>> = OnceLock::new();
    INSTANCE.get_or_init(|| {
        let inner = Arc::new(Inner {
            registry: Mutex::new(Registry::default()),
            wake: Condvar::new(),
        });
        let thread_inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("isf-watchdog".into())
            .spawn(move || run_loop(&thread_inner))
            .expect("spawn watchdog thread");
        inner
    })
}

fn run_loop(inner: &Inner) {
    let mut reg = lock(inner);
    loop {
        let now = Instant::now();
        let mut next: Option<Instant> = None;
        reg.entries.retain(|_, e| {
            if e.deadline <= now {
                // The CAS misses when the epoch moved on — the cell
                // finished and the worker re-armed — so a late fire is
                // a no-op, never a kill of the thread's next cell.
                e.token.cancel_from(e.snapshot);
                false
            } else {
                next = Some(next.map_or(e.deadline, |n| n.min(e.deadline)));
                true
            }
        });
        reg = match next {
            Some(deadline) => {
                let timeout = deadline.saturating_duration_since(now);
                inner
                    .wake
                    .wait_timeout(reg, timeout)
                    .map(|(g, _)| g)
                    .unwrap_or_else(|p| p.into_inner().0)
            }
            None => inner.wake.wait(reg).unwrap_or_else(|p| p.into_inner()),
        };
    }
}

/// Registration handle returned by [`watch`]; dropping it disarms the
/// deadline (if it has not fired yet).
pub(crate) struct WatchGuard {
    id: u64,
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let inner = instance();
        lock(inner).entries.remove(&self.id);
        // No notify: a spurious timer wakeup for a removed entry just
        // recomputes the next deadline.
    }
}

/// Arms the watchdog: after `timeout`, fire `token` at its current epoch.
/// The returned guard disarms on drop. A `timeout` too large to represent
/// as an `Instant` is treated as "never" (nothing is registered).
pub(crate) fn watch(token: &CancelToken, timeout: Duration) -> WatchGuard {
    let Some(deadline) = Instant::now().checked_add(timeout) else {
        return WatchGuard { id: 0 };
    };
    let inner = instance();
    let mut reg = lock(inner);
    reg.next_id += 1;
    let id = reg.next_id;
    reg.entries.insert(
        id,
        Entry {
            deadline,
            token: token.clone(),
            snapshot: token.epoch(),
        },
    );
    drop(reg);
    inner.wake.notify_one();
    WatchGuard { id }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Polls `cond` for up to two seconds.
    fn eventually(cond: impl Fn() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < Duration::from_secs(2) {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    #[test]
    fn elapsed_deadline_fires_the_token() {
        let token = CancelToken::new();
        let snapshot = token.epoch();
        let _guard = watch(&token, Duration::from_millis(10));
        assert!(
            eventually(|| token.is_cancelled(snapshot)),
            "deadline never fired"
        );
    }

    #[test]
    fn dropped_guard_disarms_before_the_deadline() {
        let token = CancelToken::new();
        let snapshot = token.epoch();
        let guard = watch(&token, Duration::from_millis(40));
        drop(guard);
        std::thread::sleep(Duration::from_millis(120));
        assert!(
            !token.is_cancelled(snapshot),
            "disarmed deadline still fired"
        );
    }

    #[test]
    fn stale_fire_cannot_touch_the_next_epoch() {
        let token = CancelToken::new();
        let first = token.epoch();
        let _guard = watch(&token, Duration::from_millis(10));
        assert!(eventually(|| token.is_cancelled(first)));
        // The next cell on this worker re-reads the epoch; the already-
        // fired watchdog entry is gone and cannot advance it again.
        let second = token.epoch();
        std::thread::sleep(Duration::from_millis(60));
        assert!(!token.is_cancelled(second), "stale fire landed twice");
    }

    #[test]
    fn many_deadlines_fire_independently() {
        let tokens: Vec<CancelToken> = (0..8).map(|_| CancelToken::new()).collect();
        let snapshots: Vec<u64> = tokens.iter().map(CancelToken::epoch).collect();
        let guards: Vec<WatchGuard> = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| {
                // Even indices fire fast; odd ones would fire much later.
                let ms = if i % 2 == 0 { 10 } else { 60_000 };
                watch(t, Duration::from_millis(ms))
            })
            .collect();
        assert!(eventually(|| tokens
            .iter()
            .zip(&snapshots)
            .enumerate()
            .all(|(i, (t, &s))| i % 2 != 0 || t.is_cancelled(s))));
        for (i, (t, &s)) in tokens.iter().zip(&snapshots).enumerate() {
            if i % 2 != 0 {
                assert!(!t.is_cancelled(s), "distant deadline fired early");
            }
        }
        drop(guards);
    }
}
