//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§4).
//!
//! One module per experiment, each with a `run(scale)` entry point
//! returning a typed result that knows how to print itself in the paper's
//! layout:
//!
//! | module | reproduces |
//! |--------|------------|
//! | [`table1`] | exhaustive instrumentation overhead |
//! | [`table2`] | Full-Duplication framework overhead + breakdown + space + compile time |
//! | [`table3`] | No-Duplication checking overhead per instrumentation |
//! | [`table4`] | sampled overhead and accuracy vs sample interval |
//! | [`table5`] | timer-based vs counter-based trigger accuracy |
//! | [`fig7`]   | the javac call-edge profile (perfect vs sampled series) |
//! | [`fig8`]   | Jalapeño-specific (yieldpoint) overheads, parts (A) and (B) |
//! | [`extras`] | beyond the paper: sampled path profiling, selective instrumentation |
//! | [`spin`]   | diagnostic: a deliberately non-terminating cell, for exercising `--cell-deadline` |
//!
//! Absolute percentages depend on the cost model; what must match the
//! paper is the *shape* — which benchmarks are expensive, which strategy
//! wins where, and where the accuracy/overhead trade-off bends. The test
//! suite asserts those shapes at smoke scale; `EXPERIMENTS.md` records a
//! full-scale paper-vs-measured comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod explore;
pub mod extras;
pub mod fig7;
pub mod fig8;
pub mod journal;
pub mod jsonl;
pub mod runner;
pub mod snapshot;
pub mod spin;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
mod watchdog;

pub use isf_workloads::Scale;

/// Formats a percentage in the paper's style (one decimal).
pub(crate) fn pct(x: f64) -> String {
    format!("{x:.1}")
}

/// Arithmetic mean.
pub(crate) fn mean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.into_iter().collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Appends one `!! label [kind]: detail` line per failed cell to a table's
/// rendering. Writes nothing when every cell succeeded, so clean runs stay
/// byte-identical to output from before cells could fail.
pub(crate) fn write_errors(
    f: &mut std::fmt::Formatter<'_>,
    errors: &[runner::CellError],
) -> std::fmt::Result {
    for e in errors {
        writeln!(f, "!! {e}")?;
    }
    Ok(())
}
