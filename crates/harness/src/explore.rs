//! Schedule exploration (`--explore`): runs each benchmark under many
//! recorded thread schedules and proves the scheduling seam's contract
//! end to end.
//!
//! For every benchmark the mode records a round-robin baseline, then `N`
//! seeded-random schedules (plus a handful of PCT priority schedules and,
//! for programs with at most [`DFS_DECISION_CEILING`] round-robin decision
//! points, a bounded exhaustive DFS over the schedule tree), asserting on
//! each one:
//!
//! * the recorded [`ScheduleTrace`] replays **byte-identically** on all
//!   four engine configurations — naive, prepared-unfused, prepared-fused,
//!   prepared-fused-profiled — and every configuration reports the same
//!   result;
//! * naive and unfused-prepared per-opcode profiles are equal, and
//!   profiled totals reconcile with the outcome's `cycles` /
//!   `instructions` counters;
//! * the schedule-independent observables ([`Outcome::schedule_invariant_eq`]:
//!   stdout, the aggregated profile, check/sample/yield/entry/backedge
//!   counters) match the round-robin baseline;
//! * per-thread `CounterPerThread` sample counts are a
//!   schedule-independent multiset (permutation-equivalent across
//!   schedules).
//!
//! A violated assertion panics with the benchmark, the schedule's seed,
//! and the trace's compact form; the cell engine catches it, annotates the
//! benchmark with a `!!` line (and an `error` JSONL record), and the run
//! exits nonzero — re-running with the printed seed reproduces the exact
//! schedule deterministically on every engine configuration.

use std::collections::BTreeMap;
use std::fmt;

use isf_core::{instrument_module, Options, Strategy};
use isf_exec::{
    run_naive_sched, run_prepared_sched, ExecLimits, FuseMode, NoMetrics, NoTrace, OpProfile,
    Outcome, PreparedModule, SchedControl, SchedPolicy, ScheduleTrace, TraceBuffer, Trigger,
    VmConfig, VmError,
};
use isf_ir::Module;
use isf_obs::Json;
use isf_workloads::Workload;

use crate::runner::{cell, par_cells_isolated, plan_for, split_results, CellError, Kinds};
use crate::{write_errors, Scale};

/// Programs whose round-robin run has at most this many decision points
/// also get a bounded exhaustive DFS over the schedule tree.
pub const DFS_DECISION_CEILING: usize = 10;

/// Cap on DFS-enumerated schedules, so a bushy tree stays bounded.
pub const DFS_SCHEDULE_CAP: usize = 128;

/// Sampling interval of the per-thread counter trigger exploration runs
/// execute under — per-thread, so sample counts are schedule-invariant.
const SAMPLE_INTERVAL: u64 = 13;

/// Fuel cap for exploration runs: generous, since instrumented workloads
/// at paper scale stay well below it, but finite so a scheduling bug that
/// livelocks a program is reported instead of hanging the harness.
const EXPLORE_FUEL: u64 = 50_000_000_000;

/// A parsed `--explore schedules=N[,seed=S]` spec.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ExploreSpec {
    /// Number of seeded-random schedules per benchmark.
    pub schedules: u32,
    /// Base seed the per-schedule seeds are derived from.
    pub seed: u64,
}

/// Parses `schedules=N[,seed=S]` (either order, `seed` optional, default
/// seed `0x5EED`).
///
/// # Errors
///
/// Returns a one-line message naming what is wrong with the spec.
pub fn parse_spec(spec: &str) -> Result<ExploreSpec, String> {
    let mut schedules = None;
    let mut seed = 0x5EED;
    for part in spec.split(',') {
        let Some((key, value)) = part.split_once('=') else {
            return Err(format!(
                "expected `schedules=N[,seed=S]`, got `{part}` in `{spec}`"
            ));
        };
        match key {
            "schedules" => {
                let n = value
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| (1..=100_000).contains(&n))
                    .ok_or_else(|| {
                        format!("`schedules` must be an integer in 1..=100000, got `{value}`")
                    })?;
                schedules = Some(n);
            }
            "seed" => {
                // Accept the `0x` form too: failure reports print the seed in
                // hex, and `seed=<copied value>` must replay them verbatim.
                let parsed = match value
                    .strip_prefix("0x")
                    .or_else(|| value.strip_prefix("0X"))
                {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => value.parse::<u64>(),
                };
                seed = parsed.map_err(|_| {
                    format!(
                        "`seed` must be a non-negative integer (decimal or 0x-hex), got `{value}`"
                    )
                })?;
            }
            other => {
                return Err(format!(
                    "unknown key `{other}` in `{spec}` (expected `schedules` and optional `seed`)"
                ));
            }
        }
    }
    let schedules = schedules.ok_or_else(|| format!("`{spec}` is missing `schedules=N`"))?;
    Ok(ExploreSpec { schedules, seed })
}

/// splitmix64-style derivation of schedule `i`'s seed from the base seed,
/// so neighbouring indices get decorrelated streams.
fn derive_seed(base: u64, i: u64) -> u64 {
    let mut z = base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One benchmark's exploration report.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Decision points in the round-robin baseline schedule.
    pub decisions: usize,
    /// Seeded-random schedules recorded and verified.
    pub random: u32,
    /// PCT priority schedules recorded and verified.
    pub pct: u32,
    /// DFS-enumerated schedules verified (0 when the tree was too deep).
    pub dfs: usize,
    /// Whether the DFS enumerated the whole tree (as opposed to being
    /// skipped for depth or stopped by [`DFS_SCHEDULE_CAP`]).
    pub dfs_exhausted: bool,
}

/// The exploration's outcome across all requested benchmarks.
#[derive(Clone, Debug)]
pub struct Explore {
    /// The spec the run used.
    pub spec: ExploreSpec,
    /// Per-benchmark reports, submission order.
    pub rows: Vec<Row>,
    /// Benchmarks whose exploration failed an assertion (or trapped).
    pub errors: Vec<CellError>,
}

/// Runs schedule exploration over `benches`, one isolated cell per
/// benchmark.
pub fn run(scale: Scale, spec: ExploreSpec, benches: &[String]) -> Explore {
    let workloads: Vec<Workload> = benches
        .iter()
        .map(|name| {
            isf_workloads::by_name(name, scale)
                .unwrap_or_else(|| panic!("benchmark `{name}` was validated by the CLI"))
        })
        .collect();
    let results = par_cells_isolated(
        workloads
            .iter()
            .map(|w| {
                cell(format!("explore/{}", w.name()), move || {
                    explore_bench(w, spec)
                })
            })
            .collect(),
    );
    let (rows, errors) = split_results(results);
    Explore { spec, rows, errors }
}

/// Instruments a workload with call-edge profiling under Full-Duplication,
/// so runs execute checks and the per-thread trigger has something to fire
/// on (an uninstrumented module never samples).
fn instrumented(module: &Module) -> Module {
    let plan = plan_for(module, Kinds::CallEdge);
    let (out, _) = instrument_module(module, &plan, &Options::new(Strategy::FullDuplication))
        .expect("call-edge Full-Duplication is a valid configuration");
    out
}

/// One recorded schedule: the run result, its trace, and the sorted
/// multiset of per-thread sample counts (from the burst-trace sink).
struct Recorded {
    result: Result<Outcome, VmError>,
    trace: ScheduleTrace,
    samples_by_thread: Vec<u64>,
}

/// Records one schedule on the fused prepared engine under `ctl`,
/// collecting burst records for the per-thread sample multiset.
fn record(bench: &str, fused: &PreparedModule, cfg: &VmConfig, mut ctl: SchedControl) -> Recorded {
    let mut buf = TraceBuffer::new();
    let result = run_prepared_sched(fused, cfg, &mut buf, &mut NoMetrics, &mut ctl);
    let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
    for r in buf.records() {
        *counts.entry(r.thread).or_insert(0) += 1;
    }
    if let Ok(outcome) = &result {
        assert_eq!(
            counts.values().sum::<u64>(),
            outcome.samples_taken,
            "{bench}: burst records must account for every sample"
        );
    }
    let mut samples_by_thread: Vec<u64> = counts.into_values().collect();
    samples_by_thread.sort_unstable();
    Recorded {
        result,
        trace: ctl.take_trace(),
        samples_by_thread,
    }
}

/// Replays `rec`'s trace on all four engine configurations and asserts the
/// full cross-configuration contract. `what` names the schedule (policy +
/// seed) for failure messages.
fn verify_replays(bench: &str, module: &Module, cfg: &VmConfig, rec: &Recorded, what: &str) {
    let compact = rec.trace.to_compact_string();
    let mut replays: Vec<(
        &'static str,
        Result<Outcome, VmError>,
        ScheduleTrace,
        OpProfile,
    )> = Vec::new();

    let mut profile = OpProfile::new();
    let mut ctl = SchedControl::replay(rec.trace.clone());
    let result = run_naive_sched(module, cfg, &mut NoTrace, &mut profile, &mut ctl);
    replays.push(("naive", result, ctl.take_trace(), profile));

    let unfused = PreparedModule::prepare_with(module, &cfg.cost, FuseMode::Off);
    let mut profile = OpProfile::new();
    let mut ctl = SchedControl::replay(rec.trace.clone());
    let result = run_prepared_sched(&unfused, cfg, &mut NoTrace, &mut profile, &mut ctl);
    replays.push(("prepared/unfused", result, ctl.take_trace(), profile));

    let fused = PreparedModule::prepare_with(module, &cfg.cost, FuseMode::Fuse);
    let mut ctl = SchedControl::replay(rec.trace.clone());
    let result = run_prepared_sched(&fused, cfg, &mut NoTrace, &mut NoMetrics, &mut ctl);
    replays.push(("prepared/fused", result, ctl.take_trace(), OpProfile::new()));

    let mut profile = OpProfile::new();
    let mut ctl = SchedControl::replay(rec.trace.clone());
    let result = run_prepared_sched(&fused, cfg, &mut NoTrace, &mut profile, &mut ctl);
    replays.push(("prepared/fused+profiled", result, ctl.take_trace(), profile));

    for (label, result, trace, _) in &replays {
        assert_eq!(
            trace, &rec.trace,
            "{bench}: {what}: {label}: replayed trace diverged from recording (trace {compact})"
        );
        assert_eq!(
            result, &rec.result,
            "{bench}: {what}: {label}: replayed result diverged (trace {compact})"
        );
    }
    assert_eq!(
        &replays[0].3, &replays[1].3,
        "{bench}: {what}: naive vs unfused per-opcode profiles diverged (trace {compact})"
    );
    if let Ok(outcome) = &rec.result {
        for (label, _, _, profile) in [&replays[0], &replays[1], &replays[3]] {
            assert_eq!(
                profile.total_cycles(),
                outcome.cycles,
                "{bench}: {what}: {label}: profile cycles don't reconcile (trace {compact})"
            );
            assert_eq!(
                profile.total_instructions(),
                outcome.instructions,
                "{bench}: {what}: {label}: profile instructions don't reconcile (trace {compact})"
            );
        }
    }
}

/// Asserts the cross-schedule invariants of `rec` against the round-robin
/// baseline.
fn verify_invariants(bench: &str, baseline: &Recorded, rec: &Recorded, what: &str) {
    let compact = rec.trace.to_compact_string();
    let base = baseline
        .result
        .as_ref()
        .expect("the baseline completed (checked before exploring)");
    let outcome = rec.result.as_ref().unwrap_or_else(|e| {
        panic!("{bench}: {what}: run failed under this schedule: {e} (trace {compact})")
    });
    assert!(
        base.schedule_invariant_eq(outcome),
        "{bench}: {what}: a schedule-independent observable changed (trace {compact})"
    );
    assert_eq!(
        rec.samples_by_thread, baseline.samples_by_thread,
        "{bench}: {what}: per-thread sample counts are not permutation-equivalent (trace {compact})"
    );
}

/// Bounded exhaustive DFS over the schedule tree: enumerates schedules in
/// lexicographic order by forcing choice prefixes, verifying each one,
/// until the tree is exhausted or [`DFS_SCHEDULE_CAP`] is reached.
/// Returns the number of schedules verified and whether the tree was
/// fully enumerated.
fn dfs_explore(
    bench: &str,
    module: &Module,
    cfg: &VmConfig,
    fused: &PreparedModule,
    baseline: &Recorded,
) -> (usize, bool) {
    let mut prefix: Vec<u32> = Vec::new();
    let mut runs = 0;
    loop {
        if runs >= DFS_SCHEDULE_CAP {
            return (runs, false);
        }
        let rec = record(bench, fused, cfg, SchedControl::prefix(prefix.clone()));
        runs += 1;
        let what = format!("dfs schedule #{runs}");
        verify_invariants(bench, baseline, &rec, &what);
        verify_replays(bench, module, cfg, &rec, &what);
        // Backtrack: bump the deepest choice that still has an untried
        // sibling; the tree is exhausted when none does.
        let choices = &rec.trace.choices;
        let Some(i) = (0..choices.len()).rfind(|&i| choices[i].pos + 1 < choices[i].count) else {
            return (runs, true);
        };
        prefix = choices[..i].iter().map(|c| c.pos).collect();
        prefix.push(choices[i].pos + 1);
    }
}

/// Explores one benchmark: round-robin baseline, seeded-random and PCT
/// schedules, and the bounded DFS where the tree is shallow enough.
fn explore_bench(w: &Workload, spec: ExploreSpec) -> Row {
    let bench = w.name();
    let module = instrumented(&w.compile());
    let cfg = VmConfig {
        trigger: Trigger::CounterPerThread {
            interval: SAMPLE_INTERVAL,
        },
        limits: ExecLimits::cycles(EXPLORE_FUEL),
        ..VmConfig::default()
    };
    let fused = PreparedModule::prepare_with(&module, &cfg.cost, FuseMode::Fuse);

    let baseline = record(
        bench,
        &fused,
        &cfg,
        SchedControl::recording(SchedPolicy::RoundRobin),
    );
    if let Err(e) = &baseline.result {
        panic!("{bench}: round-robin baseline failed: {e}");
    }
    verify_replays(bench, &module, &cfg, &baseline, "round-robin baseline");
    let decisions = baseline.trace.len();

    // A run with no decision points is the same execution under every
    // policy; one confirming schedule proves that, the rest would be
    // byte-for-byte repeats.
    let random_schedules = if decisions == 0 { 1 } else { spec.schedules };
    for i in 0..random_schedules {
        let seed = derive_seed(spec.seed, u64::from(i));
        let what = format!("seeded-random schedule seed={seed:#x}");
        let rec = record(
            bench,
            &fused,
            &cfg,
            SchedControl::recording(SchedPolicy::SeededRandom { seed }),
        );
        if decisions == 0 {
            assert!(
                rec.trace.is_empty(),
                "{bench}: {what}: recorded a decision the round-robin baseline never hit"
            );
        }
        verify_invariants(bench, &baseline, &rec, &what);
        verify_replays(bench, &module, &cfg, &rec, &what);
    }

    let pct_schedules = if decisions == 0 {
        1
    } else {
        spec.schedules.div_ceil(4).min(8)
    };
    for i in 0..pct_schedules {
        let seed = derive_seed(spec.seed ^ 0x9C7_9C7, u64::from(i));
        let depth = 1 + i % 3;
        let what = format!("pct schedule seed={seed:#x} depth={depth}");
        let rec = record(
            bench,
            &fused,
            &cfg,
            SchedControl::recording(SchedPolicy::PctPriority { seed, depth }),
        );
        verify_invariants(bench, &baseline, &rec, &what);
        verify_replays(bench, &module, &cfg, &rec, &what);
    }

    let (dfs, dfs_exhausted) = if decisions <= DFS_DECISION_CEILING {
        dfs_explore(bench, &module, &cfg, &fused, &baseline)
    } else {
        (0, false)
    };

    Row {
        bench,
        decisions,
        random: random_schedules,
        pct: pct_schedules,
        dfs,
        dfs_exhausted,
    }
}

impl Explore {
    /// Emits the report as JSONL records (no-op when the emitter is off).
    pub fn emit_jsonl(&self) {
        use isf_obs::emit;
        if !emit::enabled() {
            return;
        }
        for r in &self.rows {
            emit::record(&Json::obj([
                ("type", "explore".into()),
                ("bench", r.bench.into()),
                ("seed", format!("{:#x}", self.spec.seed).into()),
                ("decisions", r.decisions.into()),
                ("random_schedules", u64::from(r.random).into()),
                ("pct_schedules", u64::from(r.pct).into()),
                ("dfs_schedules", r.dfs.into()),
                ("dfs_exhausted", r.dfs_exhausted.into()),
            ]));
        }
        let mut summary = vec![
            ("type", "summary".into()),
            ("experiment", "explore".into()),
            ("verified", self.rows.len().into()),
            ("failed", self.errors.len().into()),
        ];
        summary.extend(crate::runner::summary_profile_fields());
        emit::record(&Json::obj(summary));
    }
}

impl fmt::Display for Explore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Schedule exploration: {} random schedule(s) per benchmark, seed {:#x}",
            self.spec.schedules, self.spec.seed
        )?;
        writeln!(
            f,
            "{:<14} {:>10} {:>8} {:>6} {:>10}",
            "benchmark", "decisions", "random", "pct", "dfs"
        )?;
        for r in &self.rows {
            let dfs = if r.dfs == 0 && !r.dfs_exhausted {
                "-".to_owned()
            } else if r.dfs_exhausted {
                format!("{} (all)", r.dfs)
            } else {
                format!("{} (cap)", r.dfs)
            };
            writeln!(
                f,
                "{:<14} {:>10} {:>8} {:>6} {:>10}",
                r.bench, r.decisions, r.random, r.pct, dfs
            )?;
        }
        writeln!(
            f,
            "{} of {} benchmark(s) verified on all 4 engine configurations",
            self.rows.len(),
            self.rows.len() + self.errors.len()
        )?;
        write_errors(f, &self.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_with_and_without_seed() {
        assert_eq!(
            parse_spec("schedules=32"),
            Ok(ExploreSpec {
                schedules: 32,
                seed: 0x5EED
            })
        );
        assert_eq!(
            parse_spec("schedules=4,seed=99"),
            Ok(ExploreSpec {
                schedules: 4,
                seed: 99
            })
        );
        assert_eq!(
            parse_spec("seed=7,schedules=1"),
            Ok(ExploreSpec {
                schedules: 1,
                seed: 7
            })
        );
        // The hex form round-trips the seed a failure report prints.
        assert_eq!(
            parse_spec("schedules=1,seed=0xfeed"),
            Ok(ExploreSpec {
                schedules: 1,
                seed: 0xFEED
            })
        );
    }

    #[test]
    fn spec_rejects_malformed_input() {
        for bad in [
            "",
            "schedules=0",
            "schedules=-1",
            "schedules=many",
            "schedules=100001",
            "seed=7",
            "schedules=4,seed=x",
            "schedules=4,bogus=1",
            "32",
        ] {
            let e = parse_spec(bad).expect_err(bad);
            assert!(!e.contains('\n'), "`{bad}`: must be one line: {e}");
        }
    }

    #[test]
    fn derived_seeds_are_decorrelated() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(1, 0), "derivation is deterministic");
    }

    /// End-to-end over the in-process API: a multithreaded benchmark with
    /// real decision points and a single-threaded one (empty traces, DFS
    /// exhausts immediately) both verify clean at smoke scale.
    #[test]
    fn explores_one_threaded_and_one_single_threaded_benchmark() {
        let spec = ExploreSpec {
            schedules: 2,
            seed: 0xA5,
        };
        let report = run(Scale::Smoke, spec, &["volano".to_owned(), "db".to_owned()]);
        assert!(
            report.errors.is_empty(),
            "exploration failed: {:?}",
            report.errors
        );
        assert_eq!(report.rows.len(), 2);
        let volano = &report.rows[0];
        assert!(volano.decisions > 0, "volano must interleave");
        assert_eq!(volano.random, 2);
        if volano.decisions <= DFS_DECISION_CEILING {
            assert!(volano.dfs >= 1, "a shallow tree must be DFS-explored");
        } else {
            assert_eq!(volano.dfs, 0, "a deep tree skips the DFS");
        }
        let db = &report.rows[1];
        assert_eq!(db.decisions, 0, "db is single-threaded");
        assert_eq!(db.random, 1, "no decisions: one confirming schedule");
        assert_eq!(db.dfs, 1, "the empty tree has exactly one schedule");
        assert!(db.dfs_exhausted);
        let rendered = report.to_string();
        assert!(rendered.contains("volano"), "{rendered}");
        assert!(rendered.contains("2 of 2"), "{rendered}");
    }
}
