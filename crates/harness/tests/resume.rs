//! End-to-end durability tests driving the `isf-harness` binary: a run
//! killed or interrupted partway leaves a journal from which `--resume`
//! reproduces the uninterrupted run's output byte for byte.

use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_isf-harness");

/// Exit code of a drained (interrupted but resumable) run; mirrors
/// `isf_harness::journal::RESUMABLE_EXIT`.
const RESUMABLE_EXIT: i32 = 75;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("isf-resume-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// A harness invocation with deterministic output: wall-clock fields
/// redacted, per-cell logging off so stderr stays small.
fn harness(args: &[&str]) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.args(args)
        .env("ISF_EMIT_REDACT_WALL", "1")
        .env("ISF_LOG", "off")
        .env_remove("ISF_JOURNAL")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd
}

struct Output {
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

fn run_to_end(mut cmd: Command) -> Output {
    let out = cmd.output().expect("spawn isf-harness");
    Output {
        code: out.status.code(),
        stdout: String::from_utf8(out.stdout).expect("stdout is UTF-8"),
        stderr: String::from_utf8(out.stderr).expect("stderr is UTF-8"),
    }
}

/// Waits until the journal at `path` holds at least `lines` complete
/// lines (header included), so a kill lands after real progress.
fn wait_for_journal_lines(path: &Path, lines: usize, child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let have = std::fs::read(path)
            .map(|b| b.iter().filter(|&&c| c == b'\n').count())
            .unwrap_or(0);
        if have >= lines {
            return;
        }
        if let Some(status) = child.try_wait().expect("poll child") {
            panic!("harness exited ({status:?}) before the journal reached {lines} lines");
        }
        assert!(
            Instant::now() < deadline,
            "journal {} never reached {lines} lines",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Drops the `,"resumed":true` marker a resumed stream's meta record
/// carries; everything else must already match the uninterrupted run.
fn strip_resumed_marker(stream: &str) -> String {
    stream.replacen(",\"resumed\":true", "", 1)
}

#[test]
fn resume_after_sigkill_is_byte_identical_across_job_counts() {
    for jobs in ["1", "4"] {
        let dir = TempDir::new(&format!("kill{jobs}"));
        let args = |journal: &Path| {
            vec![
                "--scale".to_owned(),
                "smoke".to_owned(),
                "--jobs".to_owned(),
                jobs.to_owned(),
                "--emit".to_owned(),
                "json".to_owned(),
                "--journal".to_owned(),
                journal.display().to_string(),
                "table1".to_owned(),
                "table3".to_owned(),
            ]
        };

        // The uninterrupted reference.
        let ref_journal = dir.path("reference.journal");
        let reference = run_to_end(harness(
            &args(&ref_journal)
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>(),
        ));
        assert_eq!(
            reference.code,
            Some(0),
            "reference run failed: {}",
            reference.stderr
        );
        assert!(!reference.stdout.is_empty());

        // The victim: SIGKILL once the journal shows a finished cell —
        // no drain, no cleanup, exactly what a crash or OOM kill leaves.
        let victim_journal = dir.path("victim.journal");
        let mut child = harness(
            &args(&victim_journal)
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>(),
        )
        .spawn()
        .expect("spawn victim");
        wait_for_journal_lines(&victim_journal, 2, &mut child);
        child.kill().expect("SIGKILL victim");
        child.wait().expect("reap victim");

        // Resume must replay the journal and complete, and the completed
        // stream must be byte-identical to the uninterrupted one (modulo
        // the resumed marker on the meta record).
        let mut resume_args = args(&victim_journal);
        resume_args.push("--resume".to_owned());
        let resumed = run_to_end(harness(
            &resume_args.iter().map(String::as_str).collect::<Vec<_>>(),
        ));
        assert_eq!(
            resumed.code,
            Some(0),
            "resumed run failed: {}",
            resumed.stderr
        );
        assert!(
            resumed.stdout.contains("\"resumed\":true"),
            "--resume must mark the meta record"
        );
        assert_eq!(
            strip_resumed_marker(&resumed.stdout),
            reference.stdout,
            "--jobs {jobs}: resumed stream differs from the uninterrupted run"
        );
    }
}

#[test]
fn sigint_drains_to_the_resumable_exit_code_and_resume_completes() {
    let dir = TempDir::new("drain");
    let journal = dir.path("drain.journal");
    let journal_str = journal.display().to_string();
    let args = [
        "--scale",
        "smoke",
        "--jobs",
        "1",
        "--emit",
        "json",
        "--journal",
        &journal_str,
        "table4",
    ];

    let reference = run_to_end(harness(&[
        "--scale",
        "smoke",
        "--jobs",
        "1",
        "--emit",
        "json",
        "--journal",
        &dir.path("reference.journal").display().to_string(),
        "table4",
    ]));
    assert_eq!(
        reference.code,
        Some(0),
        "reference run failed: {}",
        reference.stderr
    );

    let mut child = harness(&args).spawn().expect("spawn victim");
    wait_for_journal_lines(&journal, 2, &mut child);
    let interrupted = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("send SIGINT")
        .success();
    assert!(interrupted, "kill -INT failed");
    let status = child.wait().expect("reap victim");
    assert_eq!(
        status.code(),
        Some(RESUMABLE_EXIT),
        "a drained run must exit with the resumable code"
    );
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .expect("piped stderr")
        .read_to_string(&mut stderr)
        .expect("read stderr");
    assert!(
        stderr.contains("interrupted"),
        "drain should say it was interrupted: {stderr}"
    );

    let resumed = run_to_end(harness(
        &args.iter().copied().chain(["--resume"]).collect::<Vec<_>>(),
    ));
    assert_eq!(
        resumed.code,
        Some(0),
        "resumed run failed: {}",
        resumed.stderr
    );
    assert_eq!(
        strip_resumed_marker(&resumed.stdout),
        reference.stdout,
        "resumed stream differs from the uninterrupted run"
    );
}

#[test]
fn stale_journal_is_refused_with_a_field_diagnostic() {
    let dir = TempDir::new("stale");
    let journal = dir.path("stale.journal");
    let journal_str = journal.display().to_string();

    let first = run_to_end(harness(&[
        "--scale",
        "smoke",
        "--journal",
        &journal_str,
        "table1",
    ]));
    assert_eq!(first.code, Some(0), "seed run failed: {}", first.stderr);

    // Same journal, different scale: a silent reuse would replay smoke
    // results into a default-scale table.
    let stale = run_to_end(harness(&[
        "--scale",
        "default",
        "--journal",
        &journal_str,
        "--resume",
        "table1",
    ]));
    assert_eq!(stale.code, Some(1), "stale resume must fail");
    assert!(
        stale.stderr.contains("stale journal"),
        "diagnostic must name the refusal class: {}",
        stale.stderr
    );
    assert!(
        stale
            .stderr
            .contains("scale: journal has smoke, this run has default"),
        "diagnostic must name the changed field: {}",
        stale.stderr
    );
    assert!(
        stale.stdout.is_empty(),
        "a refused resume must not run any experiment"
    );
}

#[test]
fn resume_without_a_journal_is_a_clear_error() {
    let out = run_to_end(harness(&["--resume", "table1"]));
    assert_eq!(out.code, Some(1));
    assert!(
        out.stderr.contains("--resume needs a journal"),
        "{}",
        out.stderr
    );

    let missing = run_to_end(harness(&[
        "--resume",
        "--journal",
        "/nonexistent/isf.journal",
        "table1",
    ]));
    assert_eq!(missing.code, Some(1));
    assert!(
        missing.stderr.contains("cannot resume from"),
        "{}",
        missing.stderr
    );
}
