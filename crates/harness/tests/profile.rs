//! End-to-end tests of the self-profiling surface driving the
//! `isf-harness` binary: `--profile` must never change the tables or the
//! pre-existing JSONL records (only append `metrics` / `span-summary`
//! ones), the profiled stream must be byte-deterministic across worker
//! counts under wall-clock redaction, and `--trace-out` must produce a
//! Chrome trace-event document.

use std::path::PathBuf;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_isf-harness");

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("isf-profile-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

struct Output {
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

/// Runs the harness with redacted wall clocks and quiet logging, so
/// every byte of output is deterministic and comparable.
fn harness(args: &[&str]) -> Output {
    let out = Command::new(BIN)
        .args(args)
        .env("ISF_EMIT_REDACT_WALL", "1")
        .env("ISF_LOG", "off")
        .env_remove("ISF_JOURNAL")
        .env_remove("ISF_PROFILE")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn isf-harness");
    Output {
        code: out.status.code(),
        stdout: String::from_utf8(out.stdout).expect("stdout is UTF-8"),
        stderr: String::from_utf8(out.stderr).expect("stderr is UTF-8"),
    }
}

fn read(path: &PathBuf) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn assert_ok(out: &Output) {
    assert_eq!(out.code, Some(0), "harness failed: {}", out.stderr);
}

#[test]
fn profile_flag_keeps_tables_identical_and_appends_new_records() {
    let dir = TempDir::new("flag");
    let plain_jsonl = dir.path("plain.jsonl");
    let prof_jsonl = dir.path("profiled.jsonl");

    let base = |jsonl: &PathBuf| {
        vec![
            "--scale".to_owned(),
            "smoke".to_owned(),
            "--emit".to_owned(),
            "json".to_owned(),
            "--emit-path".to_owned(),
            jsonl.display().to_string(),
            "table1".to_owned(),
        ]
    };

    let plain_args = base(&plain_jsonl);
    let plain = harness(&plain_args.iter().map(String::as_str).collect::<Vec<_>>());
    assert_ok(&plain);

    let mut prof_args = base(&prof_jsonl);
    prof_args.insert(0, "--profile".to_owned());
    let prof = harness(&prof_args.iter().map(String::as_str).collect::<Vec<_>>());
    assert_ok(&prof);

    // The human-facing tables must be unaffected by profiling: identical
    // cycles, traps, and formatting, byte for byte.
    assert_eq!(
        prof.stdout, plain.stdout,
        "--profile changed the stdout tables"
    );

    let plain_stream = read(&plain_jsonl);
    let prof_stream = read(&prof_jsonl);
    for ty in ["\"type\":\"metrics\"", "\"type\":\"span-summary\""] {
        assert!(
            !plain_stream.contains(ty),
            "unprofiled stream contains {ty}"
        );
        assert_eq!(
            prof_stream.matches(ty).count(),
            1,
            "profiled stream should hold exactly one {ty} record"
        );
    }
    // The profile layer's own counters should show up in the snapshot.
    assert!(
        prof_stream.contains("prep.cache."),
        "metrics record lacks preparation-cache counters"
    );
    // The fusion-coverage report goes to stderr, never stdout.
    assert!(
        prof.stderr.is_empty() || !prof.stdout.contains("fusion coverage"),
        "fusion coverage leaked into stdout"
    );

    // Both streams must satisfy the schema validator.
    for path in [&plain_jsonl, &prof_jsonl] {
        let v = harness(&["validate-jsonl", &path.display().to_string()]);
        assert_eq!(
            v.code,
            Some(0),
            "validate-jsonl rejected {}: {}",
            path.display(),
            v.stderr
        );
    }
}

#[test]
fn profiled_stream_is_byte_identical_across_job_counts() {
    let dir = TempDir::new("jobs");
    let mut streams = Vec::new();
    let mut stdouts = Vec::new();
    for jobs in ["1", "4"] {
        let jsonl = dir.path(&format!("j{jobs}.jsonl"));
        let out = harness(&[
            "--profile",
            "--scale",
            "smoke",
            "--jobs",
            jobs,
            "--emit",
            "json",
            "--emit-path",
            &jsonl.display().to_string(),
            // The full suite: per-experiment summaries snapshot the
            // metrics registry mid-run, which is where worker-count
            // nondeterminism would show up first.
            "all",
        ]);
        assert_ok(&out);
        streams.push(read(&jsonl));
        stdouts.push(out.stdout);
    }
    assert_eq!(
        streams[0], streams[1],
        "profiled JSONL (metrics + span summaries included) must not depend on worker count"
    );
    assert_eq!(
        stdouts[0], stdouts[1],
        "tables must not depend on worker count"
    );
}

#[test]
fn trace_out_writes_a_chrome_trace_document() {
    let dir = TempDir::new("trace");
    let trace = dir.path("trace.json");

    // Tracing alone (no --profile) must also leave stdout untouched.
    let plain = harness(&["--scale", "smoke", "table1"]);
    assert_ok(&plain);
    let traced = harness(&[
        "--trace-out",
        &trace.display().to_string(),
        "--scale",
        "smoke",
        "table1",
    ]);
    assert_ok(&traced);
    assert_eq!(
        traced.stdout, plain.stdout,
        "--trace-out changed the stdout tables"
    );

    let doc = read(&trace);
    let trimmed = doc.trim();
    assert!(
        trimmed.starts_with('{') && trimmed.ends_with('}'),
        "trace is not a JSON object"
    );
    assert!(
        doc.contains("\"traceEvents\":["),
        "trace lacks the traceEvents array"
    );
    // Complete events for the span hierarchy, with thread ids for
    // Perfetto's track layout.
    for key in [
        "\"ph\":\"X\"",
        "\"pid\":",
        "\"tid\":",
        "\"cell\"",
        "\"run\"",
    ] {
        assert!(doc.contains(key), "trace lacks {key}");
    }
}
