//! Regression test: the silent panic hook the cell isolation layer
//! installs must be *removed* when the cell group finishes, restoring
//! whatever hook was there before.
//!
//! The original implementation installed the hook through a
//! `std::sync::Once` and never took it back out. That leaked the swap
//! past the group — and worse: if embedding code replaced the process
//! hook between two groups, the silencer was gone for good (the `Once`
//! had already fired), so in-cell panics in every later group sprayed
//! backtraces through the embedder's hook.
//!
//! Lives in its own integration-test binary on purpose: the process
//! panic hook is global, and unit tests running concurrently with other
//! cell groups would race the swap.

use std::panic;
use std::sync::atomic::{AtomicU32, Ordering};

use isf_harness::runner::{cell, par_cells_isolated, CellResult};

static HOOK_A: AtomicU32 = AtomicU32::new(0);
static HOOK_B: AtomicU32 = AtomicU32::new(0);

fn probe_panic() {
    let _ = panic::catch_unwind(|| panic!("probe"));
}

#[test]
fn the_cell_hook_is_restored_and_reinstalled_per_group() {
    let original = panic::take_hook();
    panic::set_hook(Box::new(|_| {
        HOOK_A.fetch_add(1, Ordering::SeqCst);
    }));

    // Group 1: an in-cell panic is silenced — caught, classified, and
    // never delegated to the installed hook.
    let results = par_cells_isolated(vec![
        cell("hook/panics", || -> u64 { panic!("in-cell") }),
        cell("hook/ok", || 7u64),
    ]);
    assert!(matches!(results[0], CellResult::Panicked(_)));
    assert!(matches!(results[1], CellResult::Ok(7)));
    assert_eq!(
        HOOK_A.load(Ordering::SeqCst),
        0,
        "in-cell panics must be silenced, not delegated"
    );

    // The group is over: hook A is the process hook again, so an
    // out-of-cell panic rings it.
    probe_panic();
    assert_eq!(
        HOOK_A.load(Ordering::SeqCst),
        1,
        "the pre-group hook was not restored"
    );

    // Replace the hook between groups — the regression scenario. The
    // next group must still silence its in-cell panics (the silencer is
    // installed per group, not once per process) and must restore hook B
    // afterwards.
    panic::set_hook(Box::new(|_| {
        HOOK_B.fetch_add(1, Ordering::SeqCst);
    }));
    let results = par_cells_isolated(vec![cell("hook/panics-again", || -> u64 {
        panic!("in-cell, second group")
    })]);
    assert!(matches!(results[0], CellResult::Panicked(_)));
    assert_eq!(
        HOOK_B.load(Ordering::SeqCst),
        0,
        "a group after a hook swap must still silence in-cell panics"
    );
    probe_panic();
    assert_eq!(HOOK_B.load(Ordering::SeqCst), 1);
    assert_eq!(HOOK_A.load(Ordering::SeqCst), 1, "hook A is long gone");

    panic::set_hook(original);
}
