//! Golden-corpus pin: the default round-robin scheduler must keep the
//! harness's observable output **byte-identical** to the streams captured
//! before the scheduling seam existed.
//!
//! The two files under `tests/golden/` were generated at the commit
//! immediately preceding the seam, with:
//!
//! ```text
//! ISF_EMIT_REDACT_WALL=1 isf-harness --scale smoke --jobs 2 \
//!     --emit json --emit-path roundrobin_all_smoke.jsonl all \
//!     > roundrobin_all_smoke.txt
//! ```
//!
//! Wall-clock redaction zeroes the only machine-dependent fields, so the
//! comparison is exact on any host. If this test fails, the scheduling
//! refactor changed an observable of the default round-robin policy —
//! that is a regression, not a reason to regenerate the goldens.
//!
//! The second test drives `--explore` end to end through the binary: the
//! report renders, the exit code is clean, and the emitted stream (with
//! its `explore` records) passes `validate-jsonl`.

use std::path::PathBuf;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_isf-harness");

fn golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

struct Output {
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

/// Runs the harness with redacted wall clocks and quiet logging, so every
/// byte of output is deterministic and comparable.
fn harness(args: &[&str]) -> Output {
    let out = Command::new(BIN)
        .args(args)
        .env("ISF_EMIT_REDACT_WALL", "1")
        .env("ISF_LOG", "off")
        .env_remove("ISF_JOURNAL")
        .env_remove("ISF_PROFILE")
        .env_remove("ISF_FUSE")
        .env_remove("ISF_PGO")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn isf-harness");
    Output {
        code: out.status.code(),
        stdout: String::from_utf8(out.stdout).expect("stdout is UTF-8"),
        stderr: String::from_utf8(out.stderr).expect("stderr is UTF-8"),
    }
}

fn temp_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("isf-golden-{tag}-{}.jsonl", std::process::id()))
}

#[test]
fn round_robin_all_experiments_match_the_pre_seam_goldens() {
    let jsonl_path = temp_file("all");
    let out = harness(&[
        "--scale",
        "smoke",
        "--jobs",
        "2",
        "--emit",
        "json",
        "--emit-path",
        &jsonl_path.display().to_string(),
        "all",
    ]);
    assert_eq!(out.code, Some(0), "harness failed: {}", out.stderr);

    assert_eq!(
        out.stdout,
        golden("roundrobin_all_smoke.txt"),
        "stdout tables diverged from the pre-seam golden capture"
    );
    let stream = std::fs::read_to_string(&jsonl_path).expect("read emitted stream");
    std::fs::remove_file(&jsonl_path).ok();
    assert_eq!(
        stream,
        golden("roundrobin_all_smoke.jsonl"),
        "JSONL stream diverged from the pre-seam golden capture"
    );
}

#[test]
fn explore_mode_verifies_a_benchmark_and_emits_valid_jsonl() {
    let jsonl_path = temp_file("explore");
    let path_str = jsonl_path.display().to_string();
    let out = harness(&[
        "--explore",
        "schedules=2,seed=5",
        "--scale",
        "smoke",
        "--jobs",
        "2",
        "--emit",
        "json",
        "--emit-path",
        &path_str,
        "pbob",
    ]);
    assert_eq!(out.code, Some(0), "explore failed: {}", out.stderr);
    assert!(
        out.stdout.contains("1 of 1 benchmark(s) verified"),
        "unexpected report:\n{}",
        out.stdout
    );
    assert!(out.stdout.contains("pbob"), "{}", out.stdout);

    let stream = std::fs::read_to_string(&jsonl_path).expect("read emitted stream");
    assert!(
        stream.contains("\"type\":\"explore\",\"bench\":\"pbob\",\"seed\":\"0x5\""),
        "missing explore record:\n{stream}"
    );
    let validated = harness(&["validate-jsonl", &path_str]);
    std::fs::remove_file(&jsonl_path).ok();
    assert_eq!(
        validated.code,
        Some(0),
        "explore stream failed validation: {}",
        validated.stderr
    );
}

#[test]
fn explore_runs_are_byte_deterministic() {
    let args = [
        "--explore",
        "schedules=2,seed=9",
        "--scale",
        "smoke",
        "pbob",
    ];
    let a = harness(&args);
    let b = harness(&args);
    assert_eq!(a.code, Some(0), "explore failed: {}", a.stderr);
    assert_eq!(a.stdout, b.stdout, "explore report is not deterministic");
}
