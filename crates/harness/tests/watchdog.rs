//! End-to-end deadline tests driving the `isf-harness` binary: a hung
//! cell under `--cell-deadline` is cooperatively cancelled and annotated
//! while its siblings complete, the whole-run `--run-deadline` drains to
//! the resumable exit code, and both compose with `--journal`/`--resume`.

use std::path::PathBuf;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_isf-harness");

/// Exit code of a deadlined (or drained) but resumable run; mirrors
/// `isf_harness::journal::RESUMABLE_EXIT`.
const RESUMABLE_EXIT: i32 = 75;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("isf-watchdog-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

struct Output {
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

/// Runs the harness with deterministic output: wall-clock fields
/// redacted, per-cell logging off so stderr stays small.
fn harness(args: &[&str]) -> Output {
    let out = Command::new(BIN)
        .args(args)
        .env("ISF_EMIT_REDACT_WALL", "1")
        .env("ISF_LOG", "off")
        .env_remove("ISF_JOURNAL")
        .env_remove("ISF_CELL_DEADLINE")
        .env_remove("ISF_CANCEL_AFTER")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn isf-harness");
    Output {
        code: out.status.code(),
        stdout: String::from_utf8(out.stdout).expect("stdout is UTF-8"),
        stderr: String::from_utf8(out.stderr).expect("stderr is UTF-8"),
    }
}

/// Drops the `,"resumed":true` marker a resumed stream's meta record
/// carries; everything else must already match the uninterrupted run.
fn strip_resumed_marker(stream: &str) -> String {
    stream.replacen(",\"resumed\":true", "", 1)
}

#[test]
fn a_hung_cell_deadlines_while_its_siblings_complete() {
    let dir = TempDir::new("hang");
    let jsonl = dir.path("spin.jsonl");
    let out = harness(&[
        "--scale",
        "smoke",
        "--jobs",
        "4",
        "--cell-deadline",
        "500",
        "--emit",
        "json",
        "--emit-path",
        &jsonl.display().to_string(),
        "spin",
    ]);
    assert_eq!(
        out.code,
        Some(RESUMABLE_EXIT),
        "a deadlined run must exit resumable: {}",
        out.stderr
    );
    // The table reports every sibling and annotates the hung cell.
    for sibling in ["count-a", "count-b", "count-c"] {
        assert!(
            out.stdout.contains(sibling),
            "missing {sibling}: {}",
            out.stdout
        );
    }
    assert!(
        out.stdout
            .contains("!! spin/hang [deadline]: cell deadline of 500 ms exceeded"),
        "missing deadline annotation: {}",
        out.stdout
    );
    assert!(
        out.stdout.contains("3 of 4 cells completed"),
        "{}",
        out.stdout
    );
    // The JSONL stream carries a typed error record and still validates.
    let stream = std::fs::read_to_string(&jsonl).expect("read emitted stream");
    assert!(
        stream.contains(
            "{\"type\":\"error\",\"label\":\"spin/hang\",\"kind\":\"deadline\",\
             \"detail\":\"cell deadline of 500 ms exceeded\",\"attempts\":1}"
        ),
        "missing deadline error record: {stream}"
    );
    isf_harness::jsonl::validate(&stream).expect("deadline stream validates");
}

#[test]
fn deadline_output_is_byte_identical_across_job_counts() {
    let dir = TempDir::new("jobs");
    let run = |jobs: &str| {
        let jsonl = dir.path(&format!("spin-{jobs}.jsonl"));
        let out = harness(&[
            "--scale",
            "smoke",
            "--jobs",
            jobs,
            "--cell-deadline",
            "500",
            "--emit",
            "json",
            "--emit-path",
            &jsonl.display().to_string(),
            "spin",
        ]);
        assert_eq!(out.code, Some(RESUMABLE_EXIT), "{}", out.stderr);
        let stream = std::fs::read_to_string(&jsonl).expect("read emitted stream");
        (out.stdout, stream)
    };
    let (serial_stdout, serial_stream) = run("1");
    let (parallel_stdout, parallel_stream) = run("4");
    assert_eq!(
        serial_stdout, parallel_stdout,
        "deadlined table depends on the job count"
    );
    assert_eq!(
        serial_stream, parallel_stream,
        "deadlined JSONL depends on the job count"
    );
}

#[test]
fn a_deadlined_journaled_run_resumes_cleanly() {
    let dir = TempDir::new("journal");
    let journal = dir.path("spin.journal");
    let args = |extra: &[&str]| {
        let mut v = vec![
            "--scale".to_owned(),
            "smoke".to_owned(),
            "--jobs".to_owned(),
            "2".to_owned(),
            "--cell-deadline".to_owned(),
            "500".to_owned(),
            "--emit".to_owned(),
            "json".to_owned(),
            "--journal".to_owned(),
            journal.display().to_string(),
            "spin".to_owned(),
        ];
        v.extend(extra.iter().map(|s| (*s).to_owned()));
        v
    };

    let first_args = args(&[]);
    let first = harness(&first_args.iter().map(String::as_str).collect::<Vec<_>>());
    assert_eq!(first.code, Some(RESUMABLE_EXIT), "{}", first.stderr);

    // Every cell — the deadlined one included — was journaled, so the
    // resume replays the whole run without fresh deadlines and exits 0,
    // byte-identical modulo the resumed marker.
    let resume_args = args(&["--resume"]);
    let resumed = harness(&resume_args.iter().map(String::as_str).collect::<Vec<_>>());
    assert_eq!(
        resumed.code,
        Some(0),
        "replaying a journaled deadline must not exit resumable again: {}",
        resumed.stderr
    );
    assert!(resumed.stdout.contains("\"resumed\":true"));
    assert_eq!(strip_resumed_marker(&resumed.stdout), first.stdout);
}

#[test]
fn run_deadline_drains_and_resume_completes_byte_identically() {
    let dir = TempDir::new("run-deadline");
    let reference = harness(&[
        "--scale",
        "smoke",
        "--jobs",
        "2",
        "--emit",
        "json",
        "--journal",
        &dir.path("reference.journal").display().to_string(),
        "table1",
    ]);
    assert_eq!(reference.code, Some(0), "{}", reference.stderr);

    // A 1 ms run deadline fires before the first cell can be claimed:
    // the run drains through the interrupt machinery and exits 75.
    let journal = dir.path("deadline.journal");
    let journal_str = journal.display().to_string();
    let cut = harness(&[
        "--scale",
        "smoke",
        "--jobs",
        "2",
        "--run-deadline",
        "1",
        "--emit",
        "json",
        "--journal",
        &journal_str,
        "table1",
    ]);
    assert_eq!(
        cut.code,
        Some(RESUMABLE_EXIT),
        "a run past its deadline must exit resumable: {}",
        cut.stderr
    );
    assert!(
        cut.stderr.contains("interrupted"),
        "the drain should report itself: {}",
        cut.stderr
    );

    // Resuming (without the deadline) completes the run, byte-identical
    // to the uninterrupted reference.
    let resumed = harness(&[
        "--scale",
        "smoke",
        "--jobs",
        "2",
        "--emit",
        "json",
        "--journal",
        &journal_str,
        "--resume",
        "table1",
    ]);
    assert_eq!(resumed.code, Some(0), "{}", resumed.stderr);
    assert_eq!(strip_resumed_marker(&resumed.stdout), reference.stdout);
}

#[test]
fn cancel_after_cycles_is_deterministic_and_fingerprinted() {
    let dir = TempDir::new("cancel-after");
    // The deterministic injection hook: identical invocations produce
    // identical streams, whatever the job count.
    let run = |jobs: &str| {
        let jsonl = dir.path(&format!("ca-{jobs}.jsonl"));
        let out = harness(&[
            "--scale",
            "smoke",
            "--jobs",
            jobs,
            "--cancel-after-cycles",
            "10000",
            "--emit",
            "json",
            "--emit-path",
            &jsonl.display().to_string(),
            "spin",
        ]);
        assert_eq!(out.code, Some(RESUMABLE_EXIT), "{}", out.stderr);
        let stream = std::fs::read_to_string(&jsonl).expect("read emitted stream");
        (out.stdout, stream)
    };
    let (serial_stdout, serial_stream) = run("1");
    let (parallel_stdout, parallel_stream) = run("4");
    assert_eq!(serial_stdout, parallel_stdout);
    assert_eq!(serial_stream, parallel_stream);
    assert!(
        serial_stream.contains("\"detail\":\"cancelled after 10000 simulated cycles\""),
        "{serial_stream}"
    );

    // Because the cancellation point changes what cells compute, a
    // journal written under one `--cancel-after-cycles` must refuse to
    // resume under another.
    let journal = dir.path("ca.journal");
    let journal_str = journal.display().to_string();
    let seed = harness(&[
        "--scale",
        "smoke",
        "--cancel-after-cycles",
        "10000",
        "--journal",
        &journal_str,
        "spin",
    ]);
    assert_eq!(seed.code, Some(RESUMABLE_EXIT), "{}", seed.stderr);
    let stale = harness(&[
        "--scale",
        "smoke",
        "--cancel-after-cycles",
        "20000",
        "--journal",
        &journal_str,
        "--resume",
        "spin",
    ]);
    assert_eq!(
        stale.code,
        Some(1),
        "stale resume must fail: {}",
        stale.stderr
    );
    assert!(
        stale.stderr.contains("stale journal"),
        "diagnostic must name the refusal class: {}",
        stale.stderr
    );
}
