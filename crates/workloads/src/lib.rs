//! The benchmark suite: ten Jive programs standing in for the paper's
//! SPECjvm98 (input size 10), `opt-compiler`, pBOB and VolanoMark suite
//! (§4.1).
//!
//! The originals are unavailable (and would need a JVM); each stand-in is
//! written to match the *instrumentation-relevant shape* of its namesake,
//! which is what the paper's per-benchmark columns measure:
//!
//! | name           | character                                        | expects |
//! |----------------|--------------------------------------------------|---------|
//! | `compress`     | tight compression loop, very field-dense         | highest field-access overhead, high backedge-check overhead |
//! | `jess`         | rule engine, many tiny method calls              | highest-tier call-edge overhead |
//! | `db`           | chunky array scans per operation                 | low overhead everywhere |
//! | `javac`        | recursive-descent compiler, many distinct edges  | call-dense; the Figure 7 profile |
//! | `mpegaudio`    | numeric kernels calling small helpers in loops   | high call *and* field overhead, high backedge-check overhead |
//! | `mtrt`         | ray tracer, vector-method calls                  | call-dense, moderate fields |
//! | `jack`         | parser generator, field-heavy state machine      | field-dense, moderate calls |
//! | `opt_compiler` | visitor over an IR tree, virtual dispatch        | highest call-edge overhead |
//! | `pbob`         | multi-threaded transaction benchmark             | moderate calls, exercises per-thread counters |
//! | `volano`       | multi-threaded chat rooms, array message traffic | low field, moderate call |
//!
//! Every program is deterministic (seeded in-language LCG) and prints a
//! final checksum, so instrumented and transformed runs can be checked for
//! semantic equivalence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod programs;

use isf_ir::Module;

/// How big a run should be. The same program text is generated with
/// different iteration counts.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Tiny runs for unit tests (≈10⁵ simulated cycles).
    Smoke,
    /// The default for the experiment harness (≈10⁶–10⁷ cycles).
    Default,
    /// Larger runs for the published tables (≈10⁸ cycles, ~10⁵ checks per
    /// benchmark); use with release builds.
    Paper,
}

impl Scale {
    /// The iteration multiplier applied to each program's base size.
    pub fn factor(self) -> u64 {
        match self {
            Scale::Smoke => 1,
            Scale::Default => 12,
            Scale::Paper => 400,
        }
    }
}

/// One benchmark program.
#[derive(Clone, Debug)]
pub struct Workload {
    name: &'static str,
    description: &'static str,
    multithreaded: bool,
    source: String,
}

impl Workload {
    /// The benchmark's name (paper spelling, `_` for `-`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description of the workload's character.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// Whether the program spawns threads.
    pub fn is_multithreaded(&self) -> bool {
        self.multithreaded
    }

    /// The generated Jive source.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Compiles the program.
    ///
    /// # Panics
    ///
    /// Panics if the generated source fails to compile — the sources are
    /// fixed templates, so that is a bug in this crate.
    pub fn compile(&self) -> Module {
        isf_frontend::compile(&self.source)
            .unwrap_or_else(|e| panic!("workload `{}` failed to compile: {e}", self.name))
    }
}

/// The full suite in the paper's table order.
pub fn suite(scale: Scale) -> Vec<Workload> {
    let f = scale.factor();
    vec![
        Workload {
            name: "compress",
            description: "RLE/LZ-style compression, tight field-dense loop",
            multithreaded: false,
            source: programs::compress(f),
        },
        Workload {
            name: "jess",
            description: "rule engine matching facts with tiny methods",
            multithreaded: false,
            source: programs::jess(f),
        },
        Workload {
            name: "db",
            description: "in-memory database with chunky scan operations",
            multithreaded: false,
            source: programs::db(f),
        },
        Workload {
            name: "javac",
            description: "recursive-descent compiler over a synthetic token stream",
            multithreaded: false,
            source: programs::javac(f),
        },
        Workload {
            name: "mpegaudio",
            description: "numeric decode kernels calling small helpers",
            multithreaded: false,
            source: programs::mpegaudio(f),
        },
        Workload {
            name: "mtrt",
            description: "ray tracer with vector-method arithmetic",
            multithreaded: false,
            source: programs::mtrt(f),
        },
        Workload {
            name: "jack",
            description: "parser generator, field-heavy state machine",
            multithreaded: false,
            source: programs::jack(f),
        },
        Workload {
            name: "opt_compiler",
            description: "optimizing compiler running on its own IR, virtual dispatch",
            multithreaded: false,
            source: programs::opt_compiler(f),
        },
        Workload {
            name: "pbob",
            description: "portable business object benchmark, threaded transactions",
            multithreaded: true,
            source: programs::pbob(f),
        },
        Workload {
            name: "volano",
            description: "chat-room message fan-out across threads",
            multithreaded: true,
            source: programs::volano(f),
        },
    ]
}

/// Looks a workload up by name.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    suite(scale).into_iter().find(|w| w.name == name)
}

/// All benchmark names, in suite order.
pub fn names() -> Vec<&'static str> {
    suite(Scale::Smoke).into_iter().map(|w| w.name).collect()
}

/// The `'static` suite name equal to `name`, if there is one — how
/// deserialized data (e.g. journaled experiment cells) gets back the
/// static benchmark names the result types carry.
pub fn canonical_name(name: &str) -> Option<&'static str> {
    names().into_iter().find(|n| *n == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isf_exec::{run, ExecLimits, VmConfig};

    #[test]
    fn all_workloads_compile_and_run_deterministically() {
        for w in suite(Scale::Smoke) {
            let m = w.compile();
            let cfg = VmConfig {
                limits: ExecLimits::cycles(200_000_000),
                ..VmConfig::default()
            };
            let a = run(&m, &cfg).unwrap_or_else(|e| panic!("{} trapped: {e}", w.name()));
            let b = run(&m, &cfg).unwrap();
            assert_eq!(a.output, b.output, "{} must be deterministic", w.name());
            assert!(!a.output.is_empty(), "{} must print a checksum", w.name());
            assert!(
                a.cycles > 10_000,
                "{} too small: {} cycles",
                w.name(),
                a.cycles
            );
        }
    }

    #[test]
    fn scale_grows_run_length() {
        let cfg = VmConfig::default();
        let smoke = run(&by_name("db", Scale::Smoke).unwrap().compile(), &cfg)
            .unwrap()
            .cycles;
        let default = run(&by_name("db", Scale::Default).unwrap().compile(), &cfg)
            .unwrap()
            .cycles;
        assert!(default > 4 * smoke);
    }

    #[test]
    fn multithreaded_workloads_actually_switch_threads() {
        for name in ["pbob", "volano"] {
            let w = by_name(name, Scale::Smoke).unwrap();
            assert!(w.is_multithreaded());
            let o = run(&w.compile(), &VmConfig::default()).unwrap();
            assert!(o.thread_switches > 0, "{name} never interleaved");
        }
    }

    #[test]
    fn suite_has_ten_benchmarks_in_paper_order() {
        assert_eq!(
            names(),
            vec![
                "compress",
                "jess",
                "db",
                "javac",
                "mpegaudio",
                "mtrt",
                "jack",
                "opt_compiler",
                "pbob",
                "volano"
            ]
        );
        assert!(by_name("nope", Scale::Smoke).is_none());
    }
}
