//! The Jive sources of the ten benchmarks. Each generator takes the scale
//! factor and substitutes iteration counts into a fixed template via the
//! `@N@` markers, keeping the program *shape* (and therefore its
//! instrumentation character) constant across scales.
//!
//! The bodies are sized against the execution engine's cost model so that
//! the per-benchmark overhead columns land in the paper's regimes: method
//! bodies of one to a few hundred simulated cycles (entry checks cost ~1%,
//! call-edge instrumentation tens of percent), loop iterations from ~60
//! cycles (`compress`, `mpegaudio` — high backedge-check cost) to several
//! hundred (`db`, `volano` — negligible backedge-check cost), and field
//! densities from ~2% of cycles (`db`, `volano`) to ~15% (`compress`,
//! `jack`). The LCG is written inline in hot loops — Jalapeño's optimizing
//! compiler would have inlined such a helper at O2, and keeping it a call
//! would drown every benchmark in tiny-call edges.

fn fill(template: &str, substitutions: &[(&str, u64)]) -> String {
    let mut out = template.to_owned();
    for (marker, value) in substitutions {
        out = out.replace(marker, &value.to_string());
    }
    debug_assert!(!out.contains('@'), "unsubstituted marker in template");
    out
}

/// `_201_compress`: RLE/hash compression processing 4-byte blocks per
/// method call; each byte touches the state object's fields many times.
/// Suite extremes: field density and backedge-check cost.
pub fn compress(f: u64) -> String {
    fill(
        r"
class State {
    field inPos; field outPos; field checksum; field prev; field runLen;
    field hashA; field hashB; field window;
    method compress_block(data, out) {
        var stop = self.inPos + 4;
        while (self.inPos < stop) {
            var b = data[self.inPos];
            self.hashA = (self.hashA * 31 + b) % 65521;
            self.hashB = (self.hashB + self.hashA) % 65521;
            self.window = ((self.window << 8) | (b & 255)) % 4294967296;
            if (b == self.prev) {
                self.runLen = self.runLen + 1;
                if (self.runLen == 255) {
                    out[self.outPos] = self.runLen;
                    self.outPos = self.outPos + 1;
                    self.runLen = 0;
                }
            } else {
                if (self.runLen > 0) {
                    out[self.outPos] = self.runLen;
                    self.outPos = self.outPos + 1;
                }
                out[self.outPos] = b;
                self.outPos = self.outPos + 1;
                self.prev = b;
                self.runLen = 0;
            }
            self.checksum = (self.checksum + b * 31 + self.hashB) % 1000000007;
            self.inPos = self.inPos + 1;
        }
        return self.outPos;
    }
}
fn main() {
    var n = 512;
    var data = array(n);
    var seed = 42;
    var i = 0;
    while (i < n) {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        // Skewed byte distribution so runs actually occur.
        if (seed % 4 == 0) { data[i] = 7; } else { data[i] = seed % 256; }
        i = i + 1;
    }
    var out = array(n * 2);
    var s = new State;
    s.prev = -1;
    var pass = 0;
    while (pass < @PASSES@) {
        s.inPos = 0; s.outPos = 0; s.prev = -1; s.runLen = 0;
        while (s.inPos < n) {
            s.compress_block(data, out);
        }
        pass = pass + 1;
    }
    print(s.checksum);
    print(s.outPos);
}",
        &[("@PASSES@", 3 * f)],
    )
}

/// `_202_jess`: a forward-chaining rule engine; each (rule, fact) match is
/// one straight-line scoring method of ~150 cycles — the call-dense tier.
pub fn jess(f: u64) -> String {
    fill(
        r"
class Fact { field kind; field value; field salience; field next; }
class Rule {
    field kind; field lo; field hi; field weight; field bias;
    field firedCount; field score; field next;
    method matches(fact) {
        if (fact.kind != self.kind) { return 0; }
        var v = fact.value;
        var inRange = 0;
        if (v >= self.lo) {
            if (v <= self.hi) { inRange = 1; }
        }
        var sc = (v - self.lo) * self.weight + fact.salience * self.bias;
        sc = (sc * 17 + v * 3 - self.hi) % 100003;
        if (sc < 0) { sc = 0 - sc; }
        // Alpha-memory hash probe and partial-match arithmetic.
        var h1 = (v * 2654435761) % 1048576;
        var h2 = (h1 ^ (h1 >> 7)) % 65536;
        var slot = (h2 * self.weight + self.bias) % 8191;
        var probe = (slot * 31 + v) % 127;
        var beta = (probe * self.lo + h2 % 61) % 100003;
        var join1 = (beta * 13 + fact.salience * 7) % 65536;
        var join2 = (join1 ^ slot) % 8191;
        sc = (sc + join2 % 211) % 100003;
        self.score = (self.score + sc) % 1000000007;
        if (inRange == 1) {
            if (sc % 7 != 3) { return 1; }
        }
        return 0;
    }
    method fire(fact) {
        self.firedCount = self.firedCount + 1;
        var gain = (fact.value - self.lo) * self.weight;
        fact.salience = (fact.salience + 1) % 1000003;
        return gain % 100003;
    }
}
fn main() {
    var seed = 7;
    var rules = null;
    var r = 0;
    while (r < 8) {
        var rule = new Rule;
        rule.kind = r % 4;
        seed = (seed * 1103515245 + 12345) % 2147483648;
        rule.lo = seed % 100;
        rule.hi = rule.lo + 60;
        rule.weight = 1 + seed % 9;
        rule.bias = 1 + seed % 5;
        rule.next = rules;
        rules = rule;
        r = r + 1;
    }
    var facts = null;
    var fcount = 0;
    while (fcount < 24) {
        var fact = new Fact;
        fact.kind = fcount % 4;
        seed = (seed * 1103515245 + 12345) % 2147483648;
        fact.value = seed % 200;
        fact.salience = seed % 10;
        fact.next = facts;
        facts = fact;
        fcount = fcount + 1;
    }
    var agenda = 0;
    var round = 0;
    while (round < @ROUNDS@) {
        var rule = rules;
        while (rule != null) {
            var fact = facts;
            while (fact != null) {
                if (rule.matches(fact) == 1) {
                    agenda = (agenda + rule.fire(fact)) % 1000000007;
                }
                fact = fact.next;
            }
            rule = rule.next;
        }
        round = round + 1;
    }
    var fired = 0;
    var rule2 = rules;
    while (rule2 != null) { fired = fired + rule2.firedCount; rule2 = rule2.next; }
    print(agenda);
    print(fired);
}",
        &[("@ROUNDS@", 4 * f)],
    )
}

/// `_209_db`: an in-memory database; each query is one call that scans 128
/// records eight at a time with straight-line per-record math, so checks
/// and instrumentation alike vanish in the noise — the cheap extreme.
pub fn db(f: u64) -> String {
    fill(
        r"
class Db { field size; field hits; field total; field peak; }
fn scan_range(values, lo, needle) {
    // 16 iterations x 8 records, straight-line inside the iteration.
    var acc = 0;
    var i = lo;
    var stop = lo + 128;
    while (i < stop) {
        var v0 = values[i];
        var v1 = values[i + 1];
        var v2 = values[i + 2];
        var v3 = values[i + 3];
        var v4 = values[i + 4];
        var v5 = values[i + 5];
        var v6 = values[i + 6];
        var v7 = values[i + 7];
        acc = acc + (v0 ^ needle) % 127 + (v1 >> 2);
        acc = acc + (v2 & 1023) - (v3 % 61);
        acc = acc + (v4 ^ v5) % 255;
        acc = acc + (v6 * 3 + v7) % 8191;
        var key0 = (v0 * 31 + v4) % 65521;
        var key1 = (v1 * 31 + v5) % 65521;
        var key2 = (v2 * 31 + v6) % 65521;
        var key3 = (v3 * 31 + v7) % 65521;
        var sel = (key0 ^ key1) % 8191 + (key2 ^ key3) % 8191;
        var rank = (sel * 13 + needle % 255) % 100003;
        acc = acc + rank % 509;
        if (acc > 1000000007) { acc = acc % 1000000007; }
        i = i + 8;
    }
    return acc;
}
fn update_range(values, lo, delta) {
    var i = lo;
    var stop = lo + 128;
    var touched = 0;
    while (i < stop) {
        values[i] = (values[i] + delta) % 1000003;
        values[i + 1] = (values[i + 1] * 3 + delta) % 1000003;
        values[i + 2] = (values[i + 2] + (delta >> 1)) % 1000003;
        values[i + 3] = (values[i + 3] ^ delta) % 1000003;
        values[i + 4] = (values[i + 4] + delta * 5) % 1000003;
        values[i + 5] = (values[i + 5] * 7 - delta) % 1000003;
        values[i + 6] = (values[i + 6] + (delta << 1)) % 1000003;
        values[i + 7] = (values[i + 7] ^ (delta >> 2)) % 1000003;
        touched = touched + 8;
        i = i + 8;
    }
    return touched;
}
fn main() {
    var n = 1024;
    var values = array(n);
    var seed = 99;
    var i = 0;
    while (i < n) {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        values[i] = seed % 1000003;
        i = i + 1;
    }
    var db = new Db;
    db.size = n;
    var q = 0;
    var checksum = 0;
    while (q < @QUERIES@) {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        var lo = seed % (n - 128);
        if (q % 8 == 0) { busy(400); }  // page fetch from simulated disk
        if (q % 4 == 0) {
            db.hits = db.hits + update_range(values, lo, q);
        } else {
            var got = scan_range(values, lo, seed);
            checksum = (checksum + got) % 1000000007;
            if (got > db.peak) { db.peak = got; }
        }
        db.total = db.total + 1;
        q = q + 1;
    }
    print(checksum);
    print(db.hits);
    print(db.total);
}",
        &[("@QUERIES@", 40 * f)],
    )
}

/// `_213_javac`: a recursive-descent expression compiler over a synthetic
/// token stream, emitting three-address code into a buffer. Rich in
/// distinct (caller, site, callee) edges — the Figure 7 benchmark.
pub fn javac(f: u64) -> String {
    fill(
        r"
// Token kinds: 0 = NUM, 1 = '+', 2 = '-', 3 = '*', 4 = '(', 5 = ')',
// 6 = EOF, 7 = '~' (unary).
class Emitter {
    field code; field at; field regs; field checksum;
    method emit(op, a, b) {
        var r = self.regs;
        self.regs = r + 1;
        var slot = self.at;
        var word = op * 16777216 + a * 4096 + b;
        self.code[slot] = word;
        self.at = slot + 1;
        // Peephole window: look back two instructions for a fusable pair,
        // and fold an addressing-mode estimate into the checksum.
        var prev = 0;
        if (slot > 0) { prev = self.code[slot - 1]; }
        var prevOp = prev / 16777216;
        var fused = 0;
        if (prevOp == op) {
            fused = ((prev ^ word) >> 12) % 4096;
        } else {
            fused = (prev + word) % 4096;
        }
        var mode = (a * 3 + b * 5 + fused) % 97;
        var sched = (word % 8191) * (1 + mode % 3);
        var lat = (sched >> 4) % 61;
        self.checksum = (self.checksum * 31 + op * 7 + a * 3 + b + lat) % 1000000007;
        if (self.at >= 8192) { self.at = 0; }
        if (self.regs >= 4096) { self.regs = 0; }
        return r;
    }
}
class Parser {
    field toks; field vals; field pos; field sum; field depth; field errors;
    field em;
    method expect(kind) {
        if (self.toks[self.pos] == kind) { self.pos = self.pos + 1; return 1; }
        self.errors = self.errors + 1;
        return 0;
    }
    method parse_primary() {
        var t = self.toks[self.pos];
        if (t == 0) {
            var v = self.vals[self.pos];
            self.pos = self.pos + 1;
            // Constant-pool canonicalization before emitting the load.
            var canon = (v * 2654435761) % 1048576;
            canon = (canon ^ (canon >> 9)) % 65536;
            var pool = (canon * 13 + v % 251) % 4096;
            return self.em.emit(1, pool, v % 17);
        }
        if (t == 4) {
            self.pos = self.pos + 1;
            self.depth = self.depth + 1;
            var inner = self.parse_expr();
            self.depth = self.depth - 1;
            self.expect(5);
            return inner;
        }
        self.errors = self.errors + 1;
        self.pos = self.pos + 1;
        return 0;
    }
    method parse_unary() {
        if (self.toks[self.pos] == 7) {
            self.pos = self.pos + 1;
            var r = self.parse_unary();
            return self.em.emit(5, r % 4096, 0);
        }
        return self.parse_primary();
    }
    method parse_factor() {
        var v = self.parse_unary();
        while (self.toks[self.pos] == 3) {
            self.pos = self.pos + 1;
            var rhs = self.parse_unary();
            v = self.em.emit(4, v % 4096, rhs % 4096);
        }
        return v;
    }
    method parse_expr() {
        var v = self.parse_factor();
        var going = true;
        while (going) {
            var t = self.toks[self.pos];
            if (t == 1) {
                self.pos = self.pos + 1;
                v = self.em.emit(2, v % 4096, self.parse_factor() % 4096);
            } else {
                if (t == 2) {
                    self.pos = self.pos + 1;
                    v = self.em.emit(3, v % 4096, self.parse_factor() % 4096);
                } else {
                    going = false;
                }
            }
        }
        return v;
    }
    method parse_program() {
        self.pos = 0;
        while (self.toks[self.pos] != 6) {
            self.sum = (self.sum + self.parse_expr()) % 1000000007;
        }
        return self.sum;
    }
}
fn emit_token(toks, vals, at, kind, value) {
    toks[at] = kind;
    vals[at] = value;
    return at + 1;
}
fn main() {
    // Generate a valid token stream: units are NUM, ~NUM, or
    // ( NUM op NUM ), joined by +, -, *.
    var cap = 2048;
    var toks = array(cap);
    var vals = array(cap);
    var seed = 1234;
    var at = 0;
    var units = 0;
    while (units < 220) {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        var pick = seed % 4;
        if (pick == 0) {
            at = emit_token(toks, vals, at, 4, 0);
            seed = (seed * 1103515245 + 12345) % 2147483648;
            at = emit_token(toks, vals, at, 0, seed % 997);
            seed = (seed * 1103515245 + 12345) % 2147483648;
            at = emit_token(toks, vals, at, 1 + seed % 3, 0);
            seed = (seed * 1103515245 + 12345) % 2147483648;
            at = emit_token(toks, vals, at, 0, seed % 997);
            at = emit_token(toks, vals, at, 5, 0);
        } else {
            if (pick == 1) {
                at = emit_token(toks, vals, at, 7, 0);
            }
            seed = (seed * 1103515245 + 12345) % 2147483648;
            at = emit_token(toks, vals, at, 0, seed % 997);
        }
        units = units + 1;
        if (units < 220) {
            seed = (seed * 1103515245 + 12345) % 2147483648;
            at = emit_token(toks, vals, at, 1 + seed % 3, 0);
        }
    }
    at = emit_token(toks, vals, at, 6, 0);
    var p = new Parser;
    p.toks = toks;
    p.vals = vals;
    var em = new Emitter;
    em.code = array(8192);
    p.em = em;
    var pass = 0;
    while (pass < @PASSES@) {
        p.sum = 0;
        print(p.parse_program());
        pass = pass + 1;
    }
    print(p.errors);
    print(em.checksum);
}",
        &[("@PASSES@", f)],
    )
}

/// `_222_mpegaudio`: subband synthesis — an 8-tap filter method per sample
/// plus a tight windowing loop. High call *and* field density, high
/// backedge-check cost.
pub fn mpegaudio(f: u64) -> String {
    fill(
        r"
class Filter {
    field c0; field c1; field c2; field c3;
    field c4; field c5; field c6; field c7;
    field h0; field h1; field acc;
    method step(x) {
        var t = x * self.c0 + self.h0 * self.c1 + self.h1 * self.c2;
        t = t + (x >> 2) * self.c3 - self.h0 * self.c4;
        t = (t + self.h1 * self.c5) % 1000000007;
        var u = (x ^ self.h0) * self.c6 + self.h1 * self.c7;
        u = (u + (t >> 3)) % 1000000007;
        self.h1 = self.h0;
        self.h0 = x;
        self.acc = (self.acc + t + u) % 1000000007;
        return t % 65536;
    }
}
fn main() {
    var n = 384;
    var samples = array(n);
    var seed = 5150;
    var i = 0;
    while (i < n) {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        samples[i] = seed % 65536 - 32768;
        i = i + 1;
    }
    var fl = new Filter;
    fl.c0 = 31; fl.c1 = 17; fl.c2 = 7; fl.c3 = 3;
    fl.c4 = 11; fl.c5 = 13; fl.c6 = 5; fl.c7 = 2;
    var out = 0;
    var frame = 0;
    while (frame < @FRAMES@) {
        var s = 0;
        while (s < n) {
            out = (out + fl.step(samples[s])) % 1000000007;
            s = s + 1;
        }
        // Windowing pass: tight array loop, no calls.
        var w = 0;
        while (w < n) {
            samples[w] = (samples[w] * 3 + w) % 65536;
            samples[w + 1] = (samples[w + 1] * 5 - w) % 65536;
            samples[w + 2] = (samples[w + 2] + 7) % 65536;
            samples[w + 3] = (samples[w + 3] ^ w) % 65536;
            w = w + 4;
        }
        frame = frame + 1;
    }
    print(out);
    print(fl.acc);
}",
        &[("@FRAMES@", 2 * f)],
    )
}

/// `_227_mtrt`: a miniature ray tracer — per-pixel sphere intersection and
/// shading methods of ~180 cycles each; call-dense, moderate fields.
pub fn mtrt(f: u64) -> String {
    fill(
        r"
class Sphere {
    field cx; field cy; field cz; field r2; field albedo; field id; field next;
    method hit(ox, oy, oz, dx, dy, dz) {
        // Fixed-point discriminant test against the squared radius,
        // followed by a cheap shading estimate when hit.
        var lx = self.cx - ox;
        var ly = self.cy - oy;
        var lz = self.cz - oz;
        var tca = lx * dx + ly * dy + lz * dz;
        if (tca < 0) { return -1; }
        var ll = lx * lx + ly * ly + lz * lz;
        var d2 = ll - (tca * tca) / 1024;
        if (d2 > self.r2) { return -1; }
        var thc = self.r2 - d2;
        var depth = tca - thc / 64;
        var ndotl = (lx * 3 + ly * 5 + lz * 7) % 255;
        if (ndotl < 0) { ndotl = 0 - ndotl; }
        var shade = (self.albedo * ndotl + depth % 97) % 65536;
        shade = (shade * 13 + ll % 31) % 65536;
        var spec = (ndotl * ndotl) % 4096;
        var fog = (depth * 3 + tca) % 255;
        shade = (shade + spec % 61 + fog % 17) % 65536;
        return self.id * 65536 + shade;
    }
}
fn trace(spheres, ox, oy, oz, dx, dy, dz) {
    var s = spheres;
    var best = -1;
    while (s != null) {
        var h = s.hit(ox, oy, oz, dx, dy, dz);
        if (h >= 0) { best = h; }
        s = s.next;
    }
    return best;
}
fn main() {
    var seed = 31337;
    var spheres = null;
    var k = 0;
    while (k < 6) {
        var sp = new Sphere;
        seed = (seed * 1103515245 + 12345) % 2147483648;
        sp.cx = seed % 64 - 32;
        seed = (seed * 1103515245 + 12345) % 2147483648;
        sp.cy = seed % 64 - 32;
        sp.cz = 64 + k * 16;
        sp.r2 = 300 + k * 40;
        sp.albedo = 50 + k * 31;
        sp.id = k;
        sp.next = spheres;
        spheres = sp;
        k = k + 1;
    }
    var image = 0;
    var frame = 0;
    while (frame < @FRAMES@) {
        var y = 0;
        while (y < 12) {
            var x = 0;
            while (x < 12) {
                var hit = trace(spheres, 0, 0, 0, x - 6, y - 6, 32);
                image = (image * 31 + hit + 2) % 1000000007;
                x = x + 1;
            }
            y = y + 1;
        }
        frame = frame + 1;
    }
    print(image);
}",
        &[("@FRAMES@", 2 * f)],
    )
}

/// `_228_jack`: a parser generator — a very field-heavy lexer state
/// machine (~14 field touches per character) with occasional emit calls.
pub fn jack(f: u64) -> String {
    fill(
        r"
class Lexer {
    field state; field pos; field line; field col; field tokens;
    field sum; field runs; field lastKind; field width;
    method emit(kind) {
        self.tokens = self.tokens + 1;
        self.lastKind = kind;
        var w = self.width;
        self.width = 0;
        self.sum = (self.sum * 31 + kind * 7 + self.line * 3 + w) % 1000000007;
        return self.tokens;
    }
}
fn main() {
    var n = 768;
    var input = array(n);
    var seed = 2020;
    var i = 0;
    while (i < n) {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        input[i] = seed % 96;
        i = i + 1;
    }
    var lx = new Lexer;
    var pass = 0;
    while (pass < @PASSES@) {
        lx.state = 0; lx.pos = 0; lx.line = 1; lx.col = 0; lx.runs = lx.runs + 1;
        while (lx.pos < n) {
            var c = input[lx.pos];
            lx.col = lx.col + 1;
            lx.width = lx.width + 1;
            if (lx.state == 0) {
                if (c < 26) { lx.state = 1; }
                else {
                    if (c < 36) { lx.state = 2; }
                    else {
                        if (c == 90) {
                            lx.line = lx.line + 1;
                            lx.col = 0;
                        }
                        lx.width = 0;
                    }
                }
            } else {
                if (lx.state == 1) {
                    if (c >= 26) { lx.emit(1); lx.state = 0; }
                } else {
                    if (c >= 36 || c < 26) { lx.emit(2); lx.state = 0; }
                }
            }
            lx.sum = (lx.sum + c * lx.state) % 1000000007;
            lx.pos = lx.pos + 1;
        }
        pass = pass + 1;
    }
    print(lx.sum);
    print(lx.tokens);
}",
        &[("@PASSES@", 2 * f)],
    )
}

/// `opt-compiler`: the optimizing compiler run on (a stand-in for) its own
/// IR — virtually-dispatched folding/evaluation passes over an expression
/// tree. The call-edge extreme; almost no backedges.
pub fn opt_compiler(f: u64) -> String {
    fill(
        r"
class Node {
    field left; field right; field value; field kind; field flags;
    method eval(env) { return 0; }
    method size() { return 1; }
}
class ConstNode : Node {
    method eval(env) {
        var v = self.value;
        var folded = (v * 3 + env % 17) % 1000000007;
        self.flags = (self.flags | 1) % 256;
        return (v + folded % 5) % 1000000007;
    }
    method size() { return 1; }
}
class VarNode : Node {
    method eval(env) {
        var slot = self.value;
        var looked = (env * 31 + slot * 7) % 100003;
        self.flags = (self.flags | 2) % 256;
        return (looked * 5 + slot) % 1000000007;
    }
    method size() { return 1; }
}
class AddNode : Node {
    method eval(env) {
        var l = self.left.eval(env);
        var r = self.right.eval(env + 1);
        var folded = (l + r) % 1000000007;
        // Strength-reduction and availability bookkeeping the real pass
        // would do.
        var cse = (l * 31 + r) % 65536;
        if (cse % 64 == self.flags % 64) { self.flags = (self.flags + 4) % 256; }
        var range = (l % 1024) + (r % 1024);
        if (range > 1024) { folded = (folded + 1) % 1000000007; }
        var avail = (cse * 2654435761) % 1048576;
        avail = (avail ^ (avail >> 11)) % 65536;
        var vn = (avail * 7 + l % 8191) % 100003;
        var parity = (vn ^ r) % 127;
        folded = (folded + parity % 3) % 1000000007;
        return folded;
    }
    method size() { return 1 + self.left.size() + self.right.size(); }
}
class MulNode : Node {
    method eval(env) {
        var l = self.left.eval(env);
        var r = self.right.eval(env + 2);
        var folded = (l * r) % 1000000007;
        var shift = r % 63;
        if (shift % 2 == 0) { folded = (folded + (l << 1) % 65536) % 1000000007; }
        var cse = (l ^ r) % 65536;
        if (cse % 32 == self.flags % 32) { self.flags = (self.flags + 8) % 256; }
        var vn = (cse * 2654435761) % 1048576;
        vn = (vn ^ (vn >> 13)) % 65536;
        var lat = (vn * 5 + shift) % 8191;
        folded = (folded + lat % 7) % 1000000007;
        return folded;
    }
    method size() { return 1 + self.left.size() + self.right.size(); }
}
fn build(depth, seed) {
    if (depth == 0) {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        if (seed % 2 == 0) {
            var c = new ConstNode;
            c.value = seed % 1000;
            return c;
        }
        var v = new VarNode;
        v.value = seed % 50;
        return v;
    }
    seed = (seed * 1103515245 + 12345) % 2147483648;
    var n = null;
    if (seed % 2 == 0) { n = new AddNode; } else { n = new MulNode; }
    n.left = build(depth - 1, seed);
    n.right = build(depth - 1, seed + depth * 101);
    return n;
}
fn main() {
    var tree = build(7, 4242);
    print(tree.size());
    var acc = 0;
    var pass = 0;
    while (pass < @PASSES@) {
        acc = (acc + tree.eval(pass)) % 1000000007;
        pass = pass + 1;
    }
    print(acc);
}",
        &[("@PASSES@", 5 * f)],
    )
}

/// `pBOB`: the portable business object benchmark — threaded order
/// transactions of a few hundred cycles each against per-thread
/// warehouses.
pub fn pbob(f: u64) -> String {
    fill(
        r"
class Warehouse {
    field stock; field orders; field cash; field tax; field discount; field id;
    method new_order(amount, seed) {
        if (self.stock < amount) {
            self.stock = self.stock + 1000;
        }
        self.stock = self.stock - amount;
        self.orders = self.orders + 1;
        var price = amount * 3 + seed % 17;
        var taxed = price + (price * self.tax) / 100;
        var disc = (taxed * self.discount) / 100;
        var net = taxed - disc;
        // Order-line pricing for five lines, straight-line.
        var l1 = (net * 7 + amount) % 100003;
        var l2 = (l1 * 13 + seed) % 100003;
        var l3 = (l2 * 11 + amount * amount) % 100003;
        var l4 = (l3 * 5 + (seed >> 3)) % 100003;
        var l5 = (l4 * 3 + 1) % 100003;
        var freight = (amount * 19 + seed % 43) % 8191;
        var credit = (net * 3 - freight) % 100003;
        if (credit < 0) { credit = 0 - credit; }
        var ledger = (l5 ^ credit) % 65536;
        self.cash = (self.cash + net + l5 + ledger % 13) % 1000000007;
        return self.orders;
    }
    method payment(amount) {
        var fee = amount / 50 + 1;
        var credited = amount - fee;
        if (credited < 0) { credited = 0; }
        self.cash = (self.cash + credited) % 1000000007;
        self.tax = (self.tax + fee) % 23;
        return self.cash;
    }
}
class Result { field value; }
fn worker(wh, out, txns, seed) {
    var t = 0;
    while (t < txns) {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        if (seed % 3 == 0) {
            wh.payment(seed % 500);
        } else {
            wh.new_order(seed % 20 + 1, seed);
        }
        t = t + 1;
    }
    out.value = (wh.cash + wh.orders * 31 + wh.stock) % 1000000007;
}
fn main() {
    var txns = @TXNS@;
    var wh0 = new Warehouse; wh0.stock = 5000; wh0.tax = 7; wh0.discount = 3;
    var wh1 = new Warehouse; wh1.stock = 5000; wh1.tax = 8; wh1.discount = 2;
    var wh2 = new Warehouse; wh2.stock = 5000; wh2.tax = 6; wh2.discount = 4;
    var wh3 = new Warehouse; wh3.stock = 5000; wh3.tax = 9; wh3.discount = 1;
    var r0 = new Result; var r1 = new Result; var r2 = new Result; var r3 = new Result;
    var t0 = spawn worker(wh0, r0, txns, 11);
    var t1 = spawn worker(wh1, r1, txns, 22);
    var t2 = spawn worker(wh2, r2, txns, 33);
    var t3 = spawn worker(wh3, r3, txns, 44);
    join(t0); join(t1); join(t2); join(t3);
    var total = (r0.value + r1.value + r2.value + r3.value) % 1000000007;
    print(total);
    print(wh0.orders + wh1.orders + wh2.orders + wh3.orders);
}",
        &[("@TXNS@", 70 * f)],
    )
}

/// `VolanoMark`: chat rooms — per-message encode + straight-line fan-out to
/// eight subscriber slots plus a simulated socket flush; chunky iterations,
/// few fields.
pub fn volano(f: u64) -> String {
    fill(
        r"
class Room { field seq; field checksum; }
fn broadcast(buffer, base, msg) {
    // Straight-line fan-out to eight subscriber slots.
    var k0 = (msg * 31 + 1) % 65536;
    var k1 = (k0 * 31 + 2) % 65536;
    var k2 = (k1 * 31 + 3) % 65536;
    var k3 = (k2 * 31 + 4) % 65536;
    var k4 = (k3 * 31 + 5) % 65536;
    var k5 = (k4 * 31 + 6) % 65536;
    var k6 = (k5 * 31 + 7) % 65536;
    var k7 = (k6 * 31 + 8) % 65536;
    buffer[base] = k0;
    buffer[base + 1] = k1;
    buffer[base + 2] = k2;
    buffer[base + 3] = k3;
    buffer[base + 4] = k4;
    buffer[base + 5] = k5;
    buffer[base + 6] = k6;
    buffer[base + 7] = k7;
    return (k7 + k3) % 97;
}
fn encode(msg, seed) {
    // Frame header + escaping arithmetic, straight-line.
    var h = (msg * 2654435761) % 4294967296;
    h = (h ^ (h >> 13)) % 4294967296;
    h = (h * 97 + seed % 255) % 4294967296;
    var crc = (h % 65521) * 3 + (msg % 255);
    var flen = 16 + msg % 48;
    var esc1 = ((h >> 8) & 255) % 127;
    var esc2 = ((h >> 16) & 255) % 127;
    var esc3 = ((h >> 24) & 255) % 127;
    var pad = (flen + esc1 + esc2 + esc3) % 64;
    var mac = (crc * 31 + pad) % 65521;
    mac = (mac ^ (mac >> 5)) % 65521;
    var framed = h % 1000003 + crc * flen % 100003 + mac % 251;
    return framed % 1000003;
}
fn connection(room, buffer, base, messages, seed) {
    var m = 0;
    while (m < messages) {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        if (m % 16 == 0) { busy(250); }  // simulated socket flush
        var framed = encode(seed % 100000, seed);
        var ack = broadcast(buffer, base, framed);
        room.seq = room.seq + 1;
        // Commutative update: two connections share a room, and thread
        // interleaving legitimately varies with instrumentation timing.
        room.checksum = (room.checksum + ack * 31 + framed % 97) % 1000000007;
        m = m + 1;
    }
}
fn main() {
    var messages = @MESSAGES@;
    var buffer = array(4 * 32);
    var room0 = new Room;
    var room1 = new Room;
    var c0 = spawn connection(room0, buffer, 0, messages, 101);
    var c1 = spawn connection(room0, buffer, 32, messages, 202);
    var c2 = spawn connection(room1, buffer, 64, messages, 303);
    var c3 = spawn connection(room1, buffer, 96, messages, 404);
    join(c0); join(c1); join(c2); join(c3);
    print(room0.checksum);
    print(room1.checksum);
    print(room0.seq + room1.seq);
}",
        &[("@MESSAGES@", 90 * f)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn templates_fully_substituted() {
        for f in [1, 12] {
            for src in [
                compress(f),
                jess(f),
                db(f),
                javac(f),
                mpegaudio(f),
                mtrt(f),
                jack(f),
                opt_compiler(f),
                pbob(f),
                volano(f),
            ] {
                assert!(!src.contains('@'));
            }
        }
    }

    #[test]
    fn scale_factor_appears_in_source() {
        assert!(compress(7).contains("pass < 21"));
        assert!(pbob(2).contains("var txns = 140"));
    }
}
