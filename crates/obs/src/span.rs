//! Hierarchical span tracing for the harness: wall + CPU time per named
//! region, exportable as Chrome trace-event JSON (loadable in Perfetto)
//! and summarizable as a deterministic JSONL `span-summary` record.
//!
//! Spans nest by scope on each thread (run → phase → experiment on the
//! main thread; cell → attempt on workers), which is exactly the nesting
//! Perfetto reconstructs from complete (`"ph":"X"`) duration events that
//! share a track. Recording is runtime-gated ([`set_enabled`], default
//! off) and collection mirrors the metrics registry: events buffer in a
//! thread-local vector that flushes into a process-global list on thread
//! exit and at [`take_events`], so worker spans survive their threads.
//!
//! CPU time comes from `/proc/thread-self/schedstat` (nanoseconds of
//! on-CPU time for the calling thread); on platforms without procfs the
//! field reads 0. Wall and CPU fields are nondeterministic, so the
//! summary renders them through the emitter's redaction mode — counts
//! and names alone make the `--jobs` determinism contract.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::emit;
use crate::json::Json;

/// Process-wide span-recording gate (default off).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables span recording for subsequently opened spans.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether spans are currently being recorded.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process trace epoch: timestamps are measured from the first use.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Stable per-thread track id for trace rendering (main thread is 1 if it
/// touches spans first; worker ids follow registration order).
fn thread_track() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TRACK: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TRACK.with(|t| *t)
}

/// Nanoseconds of CPU time the calling thread has consumed, from
/// `/proc/thread-self/schedstat` (0 where procfs is unavailable).
#[must_use]
pub fn thread_cpu_ns() -> u64 {
    std::fs::read_to_string("/proc/thread-self/schedstat")
        .ok()
        .and_then(|s| s.split_whitespace().next().and_then(|f| f.parse().ok()))
        .unwrap_or(0)
}

/// One completed span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Hierarchy level (`run`, `phase`, `experiment`, `cell`, `attempt`).
    pub cat: &'static str,
    /// Span name within its level (experiment or cell label, …).
    pub name: String,
    /// Track (thread) the span ran on.
    pub track: u64,
    /// Start offset from the trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub wall_ns: u64,
    /// Thread CPU time consumed between open and close, nanoseconds.
    pub cpu_ns: u64,
}

static GLOBAL: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());

/// Thread-local event buffer that flushes to [`GLOBAL`] on thread exit,
/// so spans recorded on pool workers survive the pool.
struct LocalEvents(Vec<SpanEvent>);

impl Drop for LocalEvents {
    fn drop(&mut self) {
        if let Ok(mut global) = GLOBAL.lock() {
            global.append(&mut self.0);
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalEvents> = const { RefCell::new(LocalEvents(Vec::new())) };
}

fn push_event(event: SpanEvent) {
    LOCAL.with(|l| l.borrow_mut().0.push(event));
}

/// An open span; records a [`SpanEvent`] when dropped. Obtained from
/// [`begin`].
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when recording was disabled at open time (drop is free).
    open: Option<(&'static str, String, Instant, u64)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((cat, name, started, cpu0)) = self.open.take() else {
            return;
        };
        let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let start_ns =
            u64::try_from(started.duration_since(epoch()).as_nanos()).unwrap_or(u64::MAX);
        push_event(SpanEvent {
            cat,
            name,
            track: thread_track(),
            start_ns,
            wall_ns,
            cpu_ns: thread_cpu_ns().saturating_sub(cpu0),
        });
    }
}

/// Opens a span at hierarchy level `cat` with the given name. The span
/// closes (and records) when the returned guard drops; when recording is
/// disabled the guard is inert.
#[must_use]
pub fn begin(cat: &'static str, name: impl Into<String>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { open: None };
    }
    let _ = epoch();
    SpanGuard {
        open: Some((cat, name.into(), Instant::now(), thread_cpu_ns())),
    }
}

/// Records an already-measured span ending now — how pre-aggregated phase
/// totals enter the trace without having carried a guard through worker
/// code. No-op while recording is disabled.
pub fn record_completed(cat: &'static str, name: impl Into<String>, wall_ns: u64) {
    if !enabled() {
        return;
    }
    let now = u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX);
    push_event(SpanEvent {
        cat,
        name: name.into(),
        track: thread_track(),
        start_ns: now.saturating_sub(wall_ns),
        wall_ns,
        cpu_ns: 0,
    });
}

/// Flushes the calling thread's buffer and drains every recorded span,
/// ordered by (start, track) for stable rendering. Call from the main
/// thread after parallel sections join.
#[must_use]
pub fn take_events() -> Vec<SpanEvent> {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if let Ok(mut global) = GLOBAL.lock() {
            global.append(&mut l.0);
        }
    });
    let mut events = std::mem::take(&mut *GLOBAL.lock().expect("span store poisoned"));
    events.sort_by(|a, b| (a.start_ns, a.track, &a.name).cmp(&(b.start_ns, b.track, &b.name)));
    events
}

/// Per-(cat, name) aggregate of recorded spans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSummary {
    /// Hierarchy level.
    pub cat: String,
    /// Span name.
    pub name: String,
    /// How many spans aggregated.
    pub count: u64,
    /// Total wall nanoseconds.
    pub wall_ns: u64,
    /// Total CPU nanoseconds.
    pub cpu_ns: u64,
}

/// Aggregates events per `(cat, name)`, sorted by key. Counts and names
/// are deterministic for a given run plan; wall/CPU totals are not and
/// must be rendered through the emitter's redaction.
#[must_use]
pub fn summarize(events: &[SpanEvent]) -> Vec<SpanSummary> {
    let mut agg: BTreeMap<(String, String), (u64, u64, u64)> = BTreeMap::new();
    for e in events {
        let entry = agg
            .entry((e.cat.to_owned(), e.name.clone()))
            .or_insert((0, 0, 0));
        entry.0 += 1;
        entry.1 = entry.1.saturating_add(e.wall_ns);
        entry.2 = entry.2.saturating_add(e.cpu_ns);
    }
    agg.into_iter()
        .map(|((cat, name), (count, wall_ns, cpu_ns))| SpanSummary {
            cat,
            name,
            count,
            wall_ns,
            cpu_ns,
        })
        .collect()
}

/// Renders span summaries as a JSONL `span-summary` record, wall/CPU
/// fields subject to the emitter's redaction mode.
#[must_use]
pub fn summary_record(summaries: &[SpanSummary]) -> Json {
    Json::obj([
        ("type", "span-summary".into()),
        (
            "spans",
            Json::Arr(
                summaries
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("cat", s.cat.as_str().into()),
                            ("name", s.name.as_str().into()),
                            ("count", s.count.into()),
                            ("wall_ns", emit::wall_ns(s.wall_ns)),
                            ("cpu_ns", emit::wall_ns(s.cpu_ns)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Renders events as a Chrome trace-event JSON document (the
/// `traceEvents` array form), loadable in Perfetto / `chrome://tracing`.
/// Timestamps and durations are microseconds as the format requires;
/// per-event args carry the exact nanosecond wall and CPU figures.
#[must_use]
pub fn chrome_trace(events: &[SpanEvent]) -> Json {
    let mut trace: Vec<Json> = vec![Json::obj([
        ("name", "process_name".into()),
        ("ph", "M".into()),
        ("pid", 1u64.into()),
        ("args", Json::obj([("name", "isf-harness".into())])),
    ])];
    trace.extend(events.iter().map(|e| {
        Json::obj([
            ("name", e.name.as_str().into()),
            ("cat", e.cat.into()),
            ("ph", "X".into()),
            ("ts", (e.start_ns / 1_000).into()),
            ("dur", (e.wall_ns / 1_000).max(1).into()),
            ("pid", 1u64.into()),
            ("tid", e.track.into()),
            (
                "args",
                Json::obj([("wall_ns", e.wall_ns.into()), ("cpu_ns", e.cpu_ns.into())]),
            ),
        ])
    }));
    Json::obj([
        ("traceEvents", Json::Arr(trace)),
        ("displayTimeUnit", "ms".into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Span state is process-global; tests that enable recording
    /// serialize here and drain what they produced.
    static SPAN_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = SPAN_LOCK.lock().expect("span lock");
        set_enabled(false);
        drop(begin("cell", "t/disabled"));
        record_completed("phase", "p/disabled", 5);
        assert!(take_events()
            .iter()
            .all(|e| e.name != "t/disabled" && e.name != "p/disabled"));
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let _guard = SPAN_LOCK.lock().expect("span lock");
        let _ = take_events();
        set_enabled(true);
        {
            let _outer = begin("experiment", "t/outer");
            for _ in 0..2 {
                let _inner = begin("cell", "t/inner");
            }
        }
        let worker = std::thread::spawn(|| {
            let _span = begin("cell", "t/worker");
        });
        worker.join().expect("span worker");
        set_enabled(false);
        let events = take_events();
        assert_eq!(events.len(), 4);
        // Inner spans start no earlier and end no later than the outer.
        let outer = events.iter().find(|e| e.name == "t/outer").expect("outer");
        for inner in events.iter().filter(|e| e.name == "t/inner") {
            assert!(inner.start_ns >= outer.start_ns);
            assert!(inner.start_ns + inner.wall_ns <= outer.start_ns + outer.wall_ns);
        }
        let summaries = summarize(&events);
        assert_eq!(
            summaries
                .iter()
                .map(|s| (s.cat.as_str(), s.name.as_str(), s.count))
                .collect::<Vec<_>>(),
            vec![
                ("cell", "t/inner", 2),
                ("cell", "t/worker", 1),
                ("experiment", "t/outer", 1),
            ]
        );
        assert!(take_events().is_empty(), "take drains the store");
    }

    #[test]
    fn summary_record_and_chrome_trace_render() {
        let events = vec![SpanEvent {
            cat: "cell",
            name: "table1/compress".into(),
            track: 2,
            start_ns: 5_000,
            wall_ns: 1_500,
            cpu_ns: 900,
        }];
        let summaries = summarize(&events);
        let record = summary_record(&summaries).to_string();
        assert!(record.starts_with("{\"type\":\"span-summary\",\"spans\":["));
        assert!(record.contains("\"cat\":\"cell\""));
        assert!(record.contains("\"count\":1"));
        crate::json::parse(&record).expect("span-summary parses");

        let trace = chrome_trace(&events);
        let text = trace.to_string();
        crate::json::parse(&text).expect("chrome trace parses");
        let arr = trace
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("events");
        assert_eq!(arr.len(), 2, "metadata + one span");
        let span = &arr[1];
        assert_eq!(span.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(span.get("ts").and_then(Json::as_u64), Some(5));
        assert_eq!(span.get("tid").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn cpu_clock_is_monotone() {
        let a = thread_cpu_ns();
        let mut x = 0u64;
        for i in 0..200_000u64 {
            x = x.wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = thread_cpu_ns();
        assert!(b >= a);
    }
}
