//! The self-profiling metrics registry: named counters and power-of-two
//! bucket histograms, sharded per thread, aggregated at drain.
//!
//! # Design
//!
//! Recording takes **no locks**: each thread accumulates into its own
//! thread-local [`Shard`], and a shard merges into the process-global
//! accumulator only at coarse drain points — an explicit [`flush_thread`]
//! (the harness flushes after each cell), thread exit (worker threads of
//! a parallel section), and when the main thread takes a [`snapshot`].
//! Counters and histograms are commutative monoids, so the aggregate is
//! identical for any interleaving and any `--jobs` count; keys are
//! `BTreeMap`-ordered, so a snapshot's rendering is byte-deterministic.
//!
//! The registry is **runtime-gated** ([`set_enabled`], default off):
//! recording sites in cold harness code pay one atomic load when
//! disabled. Hot-loop profiling does not go through the registry at all —
//! the engines record into an `isf_exec::OpProfile` behind the
//! compile-time `ProfileSink` parameter, and the harness folds the
//! finished profile into the registry per run.
//!
//! Keys are free-form dotted names registered by their recording sites.
//! The harness's established namespaces: `op.<opcode>.*` (per-opcode
//! dispatch/instruction/cycle totals), `profile.*` (per-run folded
//! totals, including `profile.guided_instructions`), `fusion.<bench>.*`
//! (coverage totals — `fused_instructions`, `guided_instructions`,
//! `total_instructions`), `prep.cache.*` (preparation-cache hits and
//! misses), `pgo.*` (profile-guided preparation warmups), and
//! `trigger.<kind>.*` (sampling-cadence histograms).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::json::Json;

/// Process-wide registry gate (default off: recording is a no-op and the
/// output stream stays byte-identical to a build without the registry).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables the registry for subsequent recordings.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the registry is currently recording.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A power-of-two-bucket histogram over `u64` values.
///
/// Bucket 0 counts zero values; bucket `i ≥ 1` counts values in
/// `[2^(i-1), 2^i)`. Alongside the buckets it tracks count, sum, min and
/// max, so drain-time consumers can report both the distribution shape
/// and exact extrema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index `value` falls into.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Occupied buckets as `(bucket_index, count)` pairs in index order.
    pub fn buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Renders the histogram as its JSON object: count/sum/min/max plus
    /// the occupied buckets as `[bucket_index, count]` pairs.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", self.count().into()),
            ("sum", self.sum().into()),
            ("min", self.min().into()),
            ("max", self.max().into()),
            (
                "buckets",
                Json::Arr(
                    self.buckets()
                        .map(|(i, c)| Json::Arr(vec![(i as u64).into(), c.into()]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One thread's (or the aggregate's) named counters and histograms.
#[derive(Debug, Default)]
struct Shard {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Shard {
    const fn new() -> Self {
        Shard {
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    fn merge_into(&mut self, global: &mut Shard) {
        for (name, v) in std::mem::take(&mut self.counters) {
            *global.counters.entry(name).or_insert(0) += v;
        }
        for (name, h) in std::mem::take(&mut self.histograms) {
            global.histograms.entry(name).or_default().merge(&h);
        }
    }
}

static GLOBAL: Mutex<Shard> = Mutex::new(Shard::new());

/// The thread-local shard, wrapped so thread exit flushes it into the
/// global accumulator — worker threads of a parallel section contribute
/// their recordings without any explicit drain call.
struct LocalShard(Shard);

impl Drop for LocalShard {
    fn drop(&mut self) {
        if let Ok(mut global) = GLOBAL.lock() {
            self.0.merge_into(&mut global);
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalShard> = const { RefCell::new(LocalShard(Shard::new())) };
}

/// Adds `delta` to counter `name` on this thread's shard. No-op while the
/// registry is disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if let Some(v) = l.0.counters.get_mut(name) {
            *v += delta;
        } else {
            l.0.counters.insert(name.to_owned(), delta);
        }
    });
}

/// Records `value` into histogram `name` on this thread's shard. No-op
/// while the registry is disabled.
pub fn histogram_record(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if let Some(h) = l.0.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            l.0.histograms.insert(name.to_owned(), h);
        }
    });
}

/// Flushes this thread's shard into the global accumulator now (thread
/// exit does this implicitly for worker threads).
pub fn flush_thread() {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if let Ok(mut global) = GLOBAL.lock() {
            l.0.merge_into(&mut global);
        }
    });
}

/// An aggregated, drain-time view of the registry: every counter and
/// histogram merged across thread shards, keys sorted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// A counter's aggregated value (0 when never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot as a JSONL `metrics` record.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("type", "metrics".into()),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), v.into()))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Flushes the calling thread's shard and returns the aggregated
/// registry contents. Call from the main thread after parallel sections
/// join: worker shards were flushed when their threads exited, so the
/// snapshot is complete and deterministic for any `--jobs` count.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    flush_thread();
    let global = GLOBAL.lock().expect("metrics registry poisoned");
    MetricsSnapshot {
        counters: global.counters.clone(),
        histograms: global.histograms.clone(),
    }
}

/// Clears the registry (the calling thread's shard and the global
/// accumulator). Intended for tests that assert on deltas.
pub fn reset() {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.0.counters.clear();
        l.0.histograms.clear();
    });
    let mut global = GLOBAL.lock().expect("metrics registry poisoned");
    global.counters.clear();
    global.histograms.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Registry state is process-global; tests that enable it serialize
    /// here so they don't observe each other's recordings.
    static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);

        let mut h = Histogram::new();
        for v in [0, 1, 3, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1007);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (10, 1)]);

        let mut other = Histogram::new();
        other.record(3);
        h.merge(&other);
        assert_eq!(h.count(), 6);
        assert_eq!(h.buckets().find(|&(i, _)| i == 2), Some((2, 3)));
    }

    #[test]
    fn empty_histogram_reports_zero_extrema() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.count(), 0);
        let json = h.to_json().to_string();
        assert!(json.contains("\"count\":0"));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let _guard = REGISTRY_LOCK.lock().expect("registry lock");
        reset();
        set_enabled(false);
        counter_add("test.disabled", 7);
        histogram_record("test.disabled.h", 7);
        let snap = snapshot();
        assert_eq!(snap.counter("test.disabled"), 0);
        assert!(!snap.histograms.contains_key("test.disabled.h"));
    }

    #[test]
    fn counters_and_histograms_aggregate_across_threads() {
        let _guard = REGISTRY_LOCK.lock().expect("registry lock");
        reset();
        set_enabled(true);
        let threads: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    counter_add("test.aggregate", 10);
                    histogram_record("test.aggregate.h", 1 << i);
                })
            })
            .collect();
        for t in threads {
            t.join().expect("metrics worker");
        }
        counter_add("test.aggregate", 2);
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counter("test.aggregate"), 42);
        let h = snap.histograms.get("test.aggregate.h").expect("histogram");
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1 + 2 + 4 + 8);
        reset();
    }

    #[test]
    fn snapshot_renders_a_metrics_record() {
        let _guard = REGISTRY_LOCK.lock().expect("registry lock");
        reset();
        set_enabled(true);
        counter_add("b.second", 2);
        counter_add("a.first", 1);
        histogram_record("gap", 5);
        let snap = snapshot();
        set_enabled(false);
        let text = snap.to_json().to_string();
        // BTreeMap ordering: keys render sorted regardless of touch order.
        assert!(
            text.starts_with("{\"type\":\"metrics\",\"counters\":{\"a.first\":1,\"b.second\":2}")
        );
        assert!(text
            .contains("\"gap\":{\"count\":1,\"sum\":5,\"min\":5,\"max\":5,\"buckets\":[[3,1]]}"));
        crate::json::parse(&text).expect("metrics record parses");
        reset();
    }
}
