//! Machine-readable experiment output: a JSONL record stream plus a
//! phase-timing accumulator.
//!
//! The emitter is deliberately *thread-local*: the harness's worker pool
//! computes cells on many threads, but every record is emitted by the
//! main thread **in submission order** after the parallel section joins.
//! That is what makes the stream byte-stable across `--jobs` counts, and
//! it also keeps concurrently running tests from polluting each other's
//! captured output.
//!
//! Wall-clock fields are inherently nondeterministic, so the emitter has
//! a redaction mode ([`set_redact`], or `ISF_EMIT_REDACT_WALL=1`) that
//! zeroes them; everything else in a record — simulated cycles,
//! instruction counts, labels, ordering — is deterministic by
//! construction.
//!
//! Phase timings (compile / instrument / prepare / run) are accumulated
//! in a process-global table because the phases themselves run on worker
//! threads; only the main thread drains it ([`take_phases`]).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use crate::json::Json;

/// What the thread-local emitter does with records.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum EmitMode {
    /// Discard records (the default unless `ISF_EMIT=json`).
    Off,
    /// Buffer records as JSONL lines for [`drain`].
    Json,
}

struct EmitState {
    mode: EmitMode,
    redact_wall: bool,
    buffer: String,
}

impl EmitState {
    fn from_env() -> Self {
        let mode = match std::env::var("ISF_EMIT").ok().as_deref().map(str::trim) {
            Some("json") => EmitMode::Json,
            _ => EmitMode::Off,
        };
        let redact_wall = matches!(
            std::env::var("ISF_EMIT_REDACT_WALL")
                .ok()
                .as_deref()
                .map(str::trim),
            Some("1") | Some("true")
        );
        EmitState {
            mode,
            redact_wall,
            buffer: String::new(),
        }
    }
}

thread_local! {
    static STATE: RefCell<EmitState> = RefCell::new(EmitState::from_env());
}

/// Sets this thread's emit mode, overriding `ISF_EMIT`.
pub fn set_mode(mode: EmitMode) {
    STATE.with(|s| s.borrow_mut().mode = mode);
}

/// This thread's emit mode (`ISF_EMIT=json` enables [`EmitMode::Json`]).
pub fn mode() -> EmitMode {
    STATE.with(|s| s.borrow().mode)
}

/// Whether records are currently being captured on this thread.
pub fn enabled() -> bool {
    mode() == EmitMode::Json
}

/// Sets wall-clock redaction for this thread, overriding
/// `ISF_EMIT_REDACT_WALL`.
pub fn set_redact(redact: bool) {
    STATE.with(|s| s.borrow_mut().redact_wall = redact);
}

/// Whether wall-clock fields are being redacted to `0` on this thread.
pub fn redacting_wall() -> bool {
    STATE.with(|s| s.borrow().redact_wall)
}

/// A wall-clock nanosecond field: the measured value, or `0` under
/// redaction so the stream stays byte-stable.
pub fn wall_ns(ns: u64) -> Json {
    if redacting_wall() {
        Json::UInt(0)
    } else {
        Json::UInt(ns)
    }
}

/// A wall-clock-derived rate field (e.g. MIPS): the measured value, or
/// `0` under redaction.
pub fn wall_rate(rate: f64) -> Json {
    if redacting_wall() {
        Json::UInt(0)
    } else {
        Json::Num(rate)
    }
}

/// Appends one record to this thread's JSONL buffer (no-op when the
/// emitter is off). Call only from the thread that will [`drain`].
pub fn record(value: &Json) {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        if s.mode == EmitMode::Json {
            use std::fmt::Write;
            writeln!(s.buffer, "{value}").expect("String write is infallible");
        }
    });
}

/// Takes everything buffered on this thread: a JSONL string, one record
/// per `\n`-terminated line (empty when nothing was recorded).
pub fn drain() -> String {
    STATE.with(|s| std::mem::take(&mut s.borrow_mut().buffer))
}

/// Appends one `error` record — a failed experiment cell — to this
/// thread's JSONL buffer (no-op when the emitter is off). `kind` is the
/// failure class (`trap`, `panic`, `budget`), `detail` the human-readable
/// cause, `attempts` how many times the cell ran including retries. Every
/// field is deterministic, so error records stay byte-stable across job
/// counts like the rest of the stream.
pub fn error(label: &str, kind: &str, detail: &str, attempts: u64) {
    record(&Json::obj([
        ("type", "error".into()),
        ("label", label.into()),
        ("kind", kind.into()),
        ("detail", detail.into()),
        ("attempts", attempts.into()),
    ]));
}

/// Accumulated wall time for one named phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseTotal {
    /// The phase name (`compile`, `instrument`, `prepare`, `run`, ...).
    pub name: String,
    /// How many timed sections contributed.
    pub count: u64,
    /// Total wall nanoseconds across those sections.
    pub wall_ns: u64,
}

static PHASES: Mutex<BTreeMap<String, (u64, u64)>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// When a capture is active on this thread, every [`phase`] call is
    /// additionally tallied here, attributing timed sections to the cell
    /// the thread is currently running — the harness journals these so a
    /// resumed run can replay a skipped cell's phase contributions.
    static CAPTURE: RefCell<Option<BTreeMap<String, (u64, u64)>>> = const { RefCell::new(None) };
}

/// Starts attributing this thread's [`phase`] calls to a per-cell capture
/// (in addition to the global accumulator). Ended by [`take_phase_capture`].
pub fn begin_phase_capture() {
    CAPTURE.with(|c| *c.borrow_mut() = Some(BTreeMap::new()));
}

/// Ends the capture started by [`begin_phase_capture`], returning the
/// sections attributed to it, sorted by phase name. Empty when no capture
/// was active.
pub fn take_phase_capture() -> Vec<PhaseTotal> {
    CAPTURE.with(|c| {
        c.borrow_mut()
            .take()
            .map(|map| {
                map.into_iter()
                    .map(|(name, (count, wall_ns))| PhaseTotal {
                        name,
                        count,
                        wall_ns,
                    })
                    .collect()
            })
            .unwrap_or_default()
    })
}

/// Adds one timed section to the global accumulator for `name`. Safe to
/// call from worker threads.
pub fn phase(name: &str, wall: Duration) {
    let ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
    add_phase_total(name, 1, ns);
    CAPTURE.with(|c| {
        if let Some(map) = c.borrow_mut().as_mut() {
            let entry = map.entry(name.to_owned()).or_insert((0, 0));
            entry.0 += 1;
            entry.1 = entry.1.saturating_add(ns);
        }
    });
}

/// Adds a pre-aggregated phase total straight to the global accumulator —
/// how the harness re-injects a journal-replayed cell's phase sections so
/// a resumed run's `phase` records match an uninterrupted run's.
pub fn add_phase_total(name: &str, count: u64, wall_ns: u64) {
    let mut phases = PHASES.lock().expect("phase accumulator poisoned");
    let entry = phases.entry(name.to_owned()).or_insert((0, 0));
    entry.0 += count;
    entry.1 = entry.1.saturating_add(wall_ns);
}

/// Drains the global phase accumulator, returning totals sorted by phase
/// name. Call from the main thread after parallel sections join.
pub fn take_phases() -> Vec<PhaseTotal> {
    let mut phases = PHASES.lock().expect("phase accumulator poisoned");
    std::mem::take(&mut *phases)
        .into_iter()
        .map(|(name, (count, wall_ns))| PhaseTotal {
            name,
            count,
            wall_ns,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_buffer_only_when_enabled() {
        // Thread-local state: isolate from other tests by running on a
        // dedicated thread.
        std::thread::spawn(|| {
            set_mode(EmitMode::Off);
            record(&Json::obj([("type", "x".into())]));
            assert_eq!(drain(), "");
            set_mode(EmitMode::Json);
            assert!(enabled());
            record(&Json::obj([("type", "a".into())]));
            record(&Json::obj([("type", "b".into())]));
            assert_eq!(drain(), "{\"type\":\"a\"}\n{\"type\":\"b\"}\n");
            assert_eq!(drain(), "", "drain takes the buffer");
        })
        .join()
        .expect("emit test thread");
    }

    #[test]
    fn error_records_have_the_contract_shape() {
        std::thread::spawn(|| {
            set_mode(EmitMode::Json);
            error("table1/db", "trap", "trap in `main`: division by zero", 2);
            assert_eq!(
                drain(),
                "{\"type\":\"error\",\"label\":\"table1/db\",\"kind\":\"trap\",\
                 \"detail\":\"trap in `main`: division by zero\",\"attempts\":2}\n"
            );
        })
        .join()
        .expect("error record test thread");
    }

    #[test]
    fn redaction_zeroes_wall_fields() {
        std::thread::spawn(|| {
            set_redact(false);
            assert_eq!(wall_ns(123), Json::UInt(123));
            assert_eq!(wall_rate(1.5), Json::Num(1.5));
            set_redact(true);
            assert!(redacting_wall());
            assert_eq!(wall_ns(123), Json::UInt(0));
            assert_eq!(wall_rate(1.5), Json::UInt(0));
        })
        .join()
        .expect("redact test thread");
    }

    #[test]
    fn phase_capture_attributes_sections_to_the_active_cell() {
        std::thread::spawn(|| {
            // No capture active: take returns empty, global still accumulates.
            phase("capture-test", Duration::from_nanos(5));
            assert_eq!(take_phase_capture(), Vec::new());

            begin_phase_capture();
            phase("capture-test", Duration::from_nanos(10));
            phase("capture-test", Duration::from_nanos(7));
            phase("capture-other", Duration::from_nanos(3));
            let captured = take_phase_capture();
            assert_eq!(
                captured,
                vec![
                    PhaseTotal {
                        name: "capture-other".into(),
                        count: 1,
                        wall_ns: 3,
                    },
                    PhaseTotal {
                        name: "capture-test".into(),
                        count: 2,
                        wall_ns: 17,
                    },
                ]
            );
            assert_eq!(take_phase_capture(), Vec::new(), "capture is taken once");
        })
        .join()
        .expect("capture test thread");
    }

    /// `take_phases` drains the process-global table, so tests that drain
    /// must not interleave or they steal each other's entries.
    static PHASE_DRAIN_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn add_phase_total_merges_pre_aggregated_sections() {
        let _guard = PHASE_DRAIN_LOCK.lock().expect("phase drain lock");
        add_phase_total("injected-phase-test", 4, 100);
        add_phase_total("injected-phase-test", 2, 50);
        let all = take_phases();
        let total = all
            .iter()
            .find(|p| p.name == "injected-phase-test")
            .expect("injected phase");
        assert_eq!(total.count, 6);
        assert_eq!(total.wall_ns, 150);
    }

    #[test]
    fn phases_aggregate_across_threads() {
        let _guard = PHASE_DRAIN_LOCK.lock().expect("phase drain lock");
        let name = "test-phase-aggregation";
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    phase(name, Duration::from_nanos(10));
                })
            })
            .collect();
        for t in threads {
            t.join().expect("phase worker");
        }
        let all = take_phases();
        let total = all
            .iter()
            .find(|p| p.name == name)
            .expect("aggregated phase");
        assert_eq!(total.count, 4);
        assert_eq!(total.wall_ns, 40);
    }
}
