//! Analyses over sample-burst traces: per-sample-point attribution,
//! burst-length histograms, and the counter-vs-timer skew comparison of
//! the paper's §4.6.
//!
//! A *burst* is the stretch of execution between two consecutive samples
//! (or from run start to the first sample). The executor's
//! [`TraceSink`](isf_exec::TraceSink) records one [`BurstRecord`] per
//! sample: which check fired, on which thread, and how long the burst ran
//! in instructions and simulated cycles.
//!
//! The interesting question for §4.6 is *where samples land*. A
//! counter-based trigger distributes samples over sample points in
//! proportion to their execution frequency; a timer-bit trigger attributes
//! each period to the first check executed **after** the bit is set, so a
//! long stretch of check-free execution funnels its whole period onto
//! whatever check follows it. [`SkewReport`] quantifies the difference
//! between two attributions as a total-variation distance.

use std::collections::BTreeMap;
use std::fmt;

use isf_exec::BurstRecord;

use crate::json::Json;

/// Number of power-of-two burst-length buckets (`2^0` .. `2^63`, plus a
/// zero bucket folded into index 0).
const HIST_BUCKETS: usize = 64;

/// Aggregated view of one burst trace: attribution of samples to sample
/// points and a log₂ histogram of burst lengths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BurstReport {
    samples: u64,
    backedge_samples: u64,
    total_instructions: u64,
    total_cycles: u64,
    /// Samples per sample point, keyed by `(func, check_ip)` — the
    /// engine-independent identity assigned by the executor.
    attribution: BTreeMap<(u32, u32), u64>,
    /// Bucket `i` counts bursts with `floor(log2(len_cycles)) == i`
    /// (zero-length bursts land in bucket 0).
    hist_cycles: [u64; HIST_BUCKETS],
}

impl Default for BurstReport {
    fn default() -> Self {
        BurstReport {
            samples: 0,
            backedge_samples: 0,
            total_instructions: 0,
            total_cycles: 0,
            attribution: BTreeMap::new(),
            hist_cycles: [0; HIST_BUCKETS],
        }
    }
}

fn bucket(len: u64) -> usize {
    if len == 0 {
        0
    } else {
        63 - len.leading_zeros() as usize
    }
}

impl BurstReport {
    /// Aggregates a trace into a report.
    pub fn from_records(records: &[BurstRecord]) -> BurstReport {
        let mut report = BurstReport::default();
        for r in records {
            report.samples += 1;
            report.backedge_samples += u64::from(r.backedge);
            report.total_instructions += r.len_instructions;
            report.total_cycles += r.len_cycles;
            *report.attribution.entry((r.func, r.check_ip)).or_insert(0) += 1;
            report.hist_cycles[bucket(r.len_cycles)] += 1;
        }
        report
    }

    /// Total samples in the trace.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Samples whose firing check sat on a CFG backedge (vs a method
    /// entry).
    pub fn backedge_samples(&self) -> u64 {
        self.backedge_samples
    }

    /// Mean burst length in simulated cycles (`0.0` for an empty trace).
    pub fn mean_burst_cycles(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.samples as f64
        }
    }

    /// Samples per sample point, keyed by `(func, check_ip)`.
    pub fn attribution(&self) -> &BTreeMap<(u32, u32), u64> {
        &self.attribution
    }

    /// Fraction of all samples landing on the single hottest sample point
    /// (`0.0` for an empty trace). Timer-trigger skew shows up as a top
    /// share near `1.0` on periodic workloads.
    pub fn top_share(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let top = self.attribution.values().copied().max().unwrap_or(0);
        top as f64 / self.samples as f64
    }

    /// The log₂ burst-length histogram, trimmed of trailing empty
    /// buckets. Entry `i` counts bursts of `2^i ..= 2^(i+1) - 1` cycles.
    pub fn histogram(&self) -> &[u64] {
        let last = self
            .hist_cycles
            .iter()
            .rposition(|&c| c != 0)
            .map_or(0, |i| i + 1);
        &self.hist_cycles[..last]
    }

    /// Total-variation distance between this report's sample-point
    /// distribution and `other`'s: `0.0` when they attribute identically,
    /// `1.0` when they are disjoint. Empty traces compare as distance
    /// `0.0` to each other and `1.0` to any non-empty trace.
    pub fn total_variation(&self, other: &BurstReport) -> f64 {
        match (self.samples, other.samples) {
            (0, 0) => return 0.0,
            (0, _) | (_, 0) => return 1.0,
            _ => {}
        }
        let mut distance = 0.0;
        let keys = self.attribution.keys().chain(other.attribution.keys());
        let mut seen = std::collections::BTreeSet::new();
        for key in keys {
            if !seen.insert(*key) {
                continue;
            }
            let p = self.attribution.get(key).copied().unwrap_or(0) as f64 / self.samples as f64;
            let q = other.attribution.get(key).copied().unwrap_or(0) as f64 / other.samples as f64;
            distance += (p - q).abs();
        }
        distance / 2.0
    }

    /// The report as a JSON object (deterministic key and entry order).
    pub fn to_json(&self) -> Json {
        let attribution = Json::Arr(
            self.attribution
                .iter()
                .map(|(&(func, check_ip), &count)| {
                    Json::obj([
                        ("func", u64::from(func).into()),
                        ("check_ip", u64::from(check_ip).into()),
                        ("samples", count.into()),
                    ])
                })
                .collect(),
        );
        Json::obj([
            ("samples", self.samples.into()),
            ("backedge_samples", self.backedge_samples.into()),
            ("total_instructions", self.total_instructions.into()),
            ("total_cycles", self.total_cycles.into()),
            ("mean_burst_cycles", self.mean_burst_cycles().into()),
            ("top_share", self.top_share().into()),
            (
                "hist_log2_cycles",
                Json::Arr(self.histogram().iter().map(|&c| c.into()).collect()),
            ),
            ("attribution", attribution),
        ])
    }
}

impl fmt::Display for BurstReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} samples ({} on backedges), mean burst {:.1} cycles, top share {:.1}%",
            self.samples,
            self.backedge_samples,
            self.mean_burst_cycles(),
            self.top_share() * 100.0,
        )?;
        writeln!(f, "  burst length histogram (log2 cycles):")?;
        let hist = self.histogram();
        let max = hist.iter().copied().max().unwrap_or(0).max(1);
        for (i, &count) in hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let bar = "#".repeat((count * 40 / max).max(1) as usize);
            writeln!(f, "    2^{i:<2} {count:>8} {bar}")?;
        }
        writeln!(f, "  samples by sample point (func, check_ip):")?;
        for (&(func, check_ip), &count) in &self.attribution {
            writeln!(
                f,
                "    f{func} ip{check_ip:<6} {count:>8} ({:.1}%)",
                count as f64 / self.samples.max(1) as f64 * 100.0
            )?;
        }
        Ok(())
    }
}

/// Quantified attribution skew between a counter-trigger trace and a
/// timer-trigger trace of the same workload (§4.6).
#[derive(Clone, Debug, PartialEq)]
pub struct SkewReport {
    /// Top sample-point share under the counter trigger.
    pub counter_top_share: f64,
    /// Top sample-point share under the timer trigger.
    pub timer_top_share: f64,
    /// Total-variation distance between the two attributions.
    pub total_variation: f64,
    /// Samples in the counter trace.
    pub counter_samples: u64,
    /// Samples in the timer trace.
    pub timer_samples: u64,
}

impl SkewReport {
    /// Compares the attribution of a counter-trigger trace against a
    /// timer-trigger trace.
    pub fn between(counter: &BurstReport, timer: &BurstReport) -> SkewReport {
        SkewReport {
            counter_top_share: counter.top_share(),
            timer_top_share: timer.top_share(),
            total_variation: counter.total_variation(timer),
            counter_samples: counter.samples(),
            timer_samples: timer.samples(),
        }
    }

    /// The report as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("counter_samples", self.counter_samples.into()),
            ("timer_samples", self.timer_samples.into()),
            ("counter_top_share", self.counter_top_share.into()),
            ("timer_top_share", self.timer_top_share.into()),
            ("total_variation", self.total_variation.into()),
        ])
    }
}

impl fmt::Display for SkewReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "counter: {} samples, top share {:.1}% | timer: {} samples, top share {:.1}% | total variation {:.3}",
            self.counter_samples,
            self.counter_top_share * 100.0,
            self.timer_samples,
            self.timer_top_share * 100.0,
            self.total_variation,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(func: u32, check_ip: u32, cycles: u64) -> BurstRecord {
        BurstRecord {
            thread: 0,
            func,
            check_ip,
            backedge: false,
            len_instructions: cycles / 2,
            len_cycles: cycles,
        }
    }

    #[test]
    fn attribution_and_histogram() {
        let records = vec![rec(0, 3, 1), rec(0, 3, 3), rec(1, 7, 8), rec(0, 3, 0)];
        let report = BurstReport::from_records(&records);
        assert_eq!(report.samples(), 4);
        assert_eq!(report.attribution()[&(0, 3)], 3);
        assert_eq!(report.attribution()[&(1, 7)], 1);
        assert!((report.top_share() - 0.75).abs() < 1e-12);
        assert!((report.mean_burst_cycles() - 3.0).abs() < 1e-12);
        // Buckets: 0 -> 0, 1 -> 0, 3 -> 1, 8 -> 3.
        assert_eq!(report.histogram(), &[2, 1, 0, 1]);
    }

    #[test]
    fn backedge_counting() {
        let mut r = rec(0, 1, 4);
        r.backedge = true;
        let report = BurstReport::from_records(&[r, rec(0, 2, 4)]);
        assert_eq!(report.backedge_samples(), 1);
    }

    #[test]
    fn total_variation_extremes() {
        let same = BurstReport::from_records(&[rec(0, 1, 1), rec(0, 2, 1)]);
        assert!(same.total_variation(&same).abs() < 1e-12);

        let a = BurstReport::from_records(&[rec(0, 1, 1)]);
        let b = BurstReport::from_records(&[rec(0, 2, 1)]);
        assert!((a.total_variation(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.total_variation(&b), b.total_variation(&a));

        let empty = BurstReport::default();
        assert_eq!(empty.total_variation(&empty), 0.0);
        assert_eq!(empty.total_variation(&a), 1.0);
        assert_eq!(empty.top_share(), 0.0);
        assert_eq!(empty.mean_burst_cycles(), 0.0);
    }

    #[test]
    fn skew_report_compares_shares() {
        // Counter spreads over two points; timer funnels onto one.
        let counter = BurstReport::from_records(&[rec(0, 1, 4), rec(0, 2, 4)]);
        let timer = BurstReport::from_records(&[rec(0, 2, 64), rec(0, 2, 64)]);
        let skew = SkewReport::between(&counter, &timer);
        assert!((skew.counter_top_share - 0.5).abs() < 1e-12);
        assert!((skew.timer_top_share - 1.0).abs() < 1e-12);
        assert!((skew.total_variation - 0.5).abs() < 1e-12);
        assert!(!skew.to_string().is_empty());
    }

    #[test]
    fn json_shape() {
        let report = BurstReport::from_records(&[rec(2, 9, 5)]);
        let json = report.to_json();
        assert_eq!(json.get("samples"), Some(&Json::UInt(1)));
        let text = json.to_string();
        assert!(text.contains("\"attribution\":[{\"func\":2,\"check_ip\":9,\"samples\":1}]"));
        crate::json::parse(&text).expect("report JSON parses");
    }

    #[test]
    fn display_renders() {
        let report = BurstReport::from_records(&[rec(0, 1, 4), rec(0, 1, 1000)]);
        let text = report.to_string();
        assert!(text.contains("2 samples"));
        assert!(text.contains("f0 ip1"));
    }
}
