//! The leveled stderr emitter that replaces the harness's raw
//! `eprintln!`s.
//!
//! Three levels, controlled by the `ISF_LOG` environment variable
//! (`off | cells | debug`) or programmatically with [`set_level`]:
//!
//! * [`Level::Off`] — nothing but [`error`] output.
//! * [`Level::Cells`] — the default: per-cell statistics lines, matching
//!   the harness's historical stderr behaviour.
//! * [`Level::Debug`] — adds diagnostic detail (per-cell preparation
//!   counts, phase notes).
//!
//! Everything goes to stderr; stdout stays reserved for the deterministic
//! table output.

use std::sync::atomic::{AtomicU8, Ordering};

/// Verbosity of the stderr emitter.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Level {
    /// Only [`error`] output.
    Off = 0,
    /// Per-cell statistics (the default).
    Cells = 1,
    /// Cells plus diagnostic detail.
    Debug = 2,
}

const UNSET: u8 = u8::MAX;

/// The resolved level; `UNSET` until first use or [`set_level`].
static LEVEL: AtomicU8 = AtomicU8::new(UNSET);

fn level_from_env() -> Level {
    match std::env::var("ISF_LOG").ok().as_deref().map(str::trim) {
        Some("off") | Some("0") => Level::Off,
        Some("debug") | Some("2") => Level::Debug,
        // `cells`, unset, or anything unrecognized: the historical default.
        _ => Level::Cells,
    }
}

/// The active level: the [`set_level`] override if any, else `ISF_LOG`,
/// else [`Level::Cells`]. Cached after first resolution.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        UNSET => {
            let resolved = level_from_env();
            // A concurrent set_level may win; re-read rather than clobber.
            let _ =
                LEVEL.compare_exchange(UNSET, resolved as u8, Ordering::Relaxed, Ordering::Relaxed);
            decode(LEVEL.load(Ordering::Relaxed))
        }
        v => decode(v),
    }
}

fn decode(v: u8) -> Level {
    match v {
        0 => Level::Off,
        2 => Level::Debug,
        _ => Level::Cells,
    }
}

/// Overrides the level (tests, CLI flags). Takes precedence over
/// `ISF_LOG`.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether messages at `at` would currently be printed.
pub fn enabled(at: Level) -> bool {
    at <= level() && at != Level::Off
}

/// Prints a per-cell statistics line (level [`Level::Cells`] and up).
pub fn cells(message: &str) {
    if enabled(Level::Cells) {
        eprintln!("{message}");
    }
}

/// Prints a diagnostic line (level [`Level::Debug`] only).
pub fn debug(message: &str) {
    if enabled(Level::Debug) {
        eprintln!("{message}");
    }
}

/// Prints an error or usage line unconditionally — user-facing failures
/// must not be silenced by `ISF_LOG=off`.
pub fn error(message: &str) {
    eprintln!("{message}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_gate() {
        // set_level wins over the environment; exercise each level. This
        // mutates process-global state, so keep it to one test.
        set_level(Level::Off);
        assert!(!enabled(Level::Cells));
        assert!(!enabled(Level::Debug));
        assert!(!enabled(Level::Off), "Off is never an emitting level");
        set_level(Level::Cells);
        assert!(enabled(Level::Cells));
        assert!(!enabled(Level::Debug));
        set_level(Level::Debug);
        assert!(enabled(Level::Cells));
        assert!(enabled(Level::Debug));
        assert_eq!(level(), Level::Debug);
    }
}
