//! Structured observability for the ISF reproduction: burst-trace
//! analyses, a leveled stderr logger, and a machine-readable (JSONL)
//! experiment-output emitter.
//!
//! The executor ([`isf_exec`]) can record one [`isf_exec::BurstRecord`]
//! per sample through a compile-time-selected
//! [`isf_exec::TraceSink`] — zero cost when the sink is
//! [`isf_exec::NoTrace`]. This crate consumes those traces:
//!
//! * [`BurstReport`] aggregates a trace into per-sample-point attribution
//!   and a burst-length histogram; [`SkewReport`] compares a
//!   counter-trigger trace against a timer-trigger trace to quantify the
//!   §4.6 attribution skew.
//! * [`log`] is the leveled stderr emitter (`ISF_LOG=off|cells|debug`)
//!   that replaces the harness's raw `eprintln!`s.
//! * [`emit`] buffers JSONL records (`ISF_EMIT=json`) with wall-clock
//!   redaction for byte-stable output across `--jobs` counts, and
//!   accumulates phase timings across worker threads.
//! * [`metrics`] is a sharded runtime-gated metrics registry (counters +
//!   power-of-two-bucket histograms) the harness drains into a JSONL
//!   `metrics` record; the VM's per-opcode dispatch profiles fold into it.
//! * [`span`] records hierarchical wall+CPU spans (run → phase →
//!   experiment → cell → attempt) and exports them as Chrome trace-event
//!   JSON for Perfetto, plus a `span-summary` JSONL record.
//! * [`json`] is the dependency-free JSON value, encoder, and strict
//!   parser everything above is built on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod burst;
pub mod emit;
pub mod json;
pub mod log;
pub mod metrics;
pub mod span;

pub use burst::{BurstReport, SkewReport};
pub use emit::{EmitMode, PhaseTotal};
pub use json::{Json, JsonError};
pub use log::Level;
pub use metrics::MetricsSnapshot;
pub use span::{SpanEvent, SpanGuard, SpanSummary};
