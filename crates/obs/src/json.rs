//! A minimal, dependency-free JSON value: deterministic compact encoding
//! (keys in insertion order, shortest-roundtrip numbers) plus a strict
//! parser for validating emitted streams. The build environment has no
//! crates.io access, so this stands in for serde_json; the surface is
//! deliberately only what the observability layer needs.

use std::fmt;

/// A JSON value. Object keys keep insertion order, so encoding is
/// byte-deterministic for a fixed construction order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer wider than `i64` allows.
    UInt(u64),
    /// A finite float. Non-finite values serialize as `null` (JSON has no
    /// encoding for them).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs, preserving order.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Looks up a key in an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this value is any JSON number.
    pub fn is_number(&self) -> bool {
        matches!(self, Json::Int(_) | Json::UInt(_) | Json::Num(_))
    }

    /// The numeric payload as `f64`, if this is any JSON number. Integral
    /// floats serialize without a decimal point and parse back as
    /// integers, so all three number variants convert.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(n) => Some(n as f64),
            Json::UInt(n) => Some(n as f64),
            Json::Num(x) => Some(x),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(n) => Some(n),
            Json::Int(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::UInt(n)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Self {
        Json::Int(n)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::UInt(n as u64)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's shortest-roundtrip formatting is deterministic;
                    // integral floats print without an exponent or dot,
                    // which JSON accepts as a number either way.
                    write!(f, "{x}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(s, &mut buf);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    escape_into(k, &mut key);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure: the byte offset and a short description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first malformed byte.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(at: usize, message: &str) -> JsonError {
    JsonError {
        at,
        message: message.to_owned(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{}`", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected `{lit}`")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        // Surrogates are not produced by our encoder; map
                        // them to the replacement character on input.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar at a time.
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let c = s.chars().next().expect("non-empty remainder");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number slice");
    if float {
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| err(start, "invalid number"))
    } else if text.starts_with('-') {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| err(start, "invalid integer"))
    } else {
        text.parse::<u64>()
            .map(Json::UInt)
            .map_err(|_| err(start, "invalid integer"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_is_compact_and_ordered() {
        let v = Json::obj([
            ("type", "cell".into()),
            ("n", Json::UInt(7)),
            ("x", Json::Num(1.5)),
            ("ok", Json::Bool(true)),
            ("items", Json::Arr(vec![Json::Int(-1), Json::Null])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"type":"cell","n":7,"x":1.5,"ok":true,"items":[-1,null]}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let v = Json::Str("a\"b\\c\nd\u{1}".to_owned());
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn roundtrip() {
        let v = Json::obj([
            ("s", "hé\tllo".into()),
            ("i", Json::Int(-42)),
            ("u", Json::UInt(u64::MAX)),
            ("f", Json::Num(0.25)),
            ("a", Json::Arr(vec![Json::Bool(false), Json::Null])),
            ("o", Json::obj([("k", Json::UInt(1))])),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1} extra"#).is_err());
        assert!(parse("tru").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn parser_accepts_whitespace_and_floats() {
        let v = parse(" { \"a\" : [ 1 , 2.5e1 , -3 ] } ").unwrap();
        assert_eq!(
            v,
            Json::obj([(
                "a",
                Json::Arr(vec![Json::UInt(1), Json::Num(25.0), Json::Int(-3)])
            )])
        );
        assert!(v.get("a").is_some());
        assert!(v.get("b").is_none());
    }

    #[test]
    fn accessors() {
        let v = Json::obj([("s", "x".into()), ("n", Json::UInt(1))]);
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert!(v.get("n").unwrap().is_number());
        assert!(!v.get("s").unwrap().is_number());
    }

    #[test]
    fn numeric_accessors_cross_variants() {
        // An integral float serializes as `2` and parses back as UInt;
        // as_f64 must recover it from any number variant.
        assert_eq!(parse("2").unwrap().as_f64(), Some(2.0));
        assert_eq!(Json::Num(2.5).as_f64(), Some(2.5));
        assert_eq!(Json::Int(-3).as_f64(), Some(-3.0));
        assert_eq!(Json::Str("2".into()).as_f64(), None);
        assert_eq!(Json::UInt(7).as_u64(), Some(7));
        assert_eq!(Json::Int(7).as_u64(), Some(7));
        assert_eq!(Json::Int(-7).as_u64(), None);
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::Null.as_bool(), None);
        assert_eq!(
            Json::Arr(vec![Json::Null]).as_arr().map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(Json::Null.as_arr(), None);
    }
}
