//! Hotness ranking: pick the methods an adaptive system would instrument.
//!
//! The paper's deployment story (§3, §4.1) has the adaptive optimization
//! system instrument only the hottest methods. This module turns a coarse
//! profile (from a previous sampling epoch, or the VM's method-entry
//! counters) into that selection.

use std::collections::HashMap;

use isf_ir::FuncId;

use crate::profile::ProfileData;

/// Per-function heat: how many profiled events landed in it.
///
/// Counts call-edge events by callee and block events by owner; the two
/// sources are simply summed — either alone gives a usable ranking.
pub fn function_heat(profile: &ProfileData) -> HashMap<FuncId, u64> {
    let mut heat: HashMap<FuncId, u64> = HashMap::new();
    for (&(_, _, callee), &count) in profile.call_edges() {
        *heat.entry(callee).or_insert(0) += count;
    }
    for (&(func, _), &count) in profile.blocks() {
        *heat.entry(func).or_insert(0) += count;
    }
    heat
}

/// The `n` hottest functions, hottest first; ties break toward lower
/// function ids for determinism.
pub fn hottest_functions(profile: &ProfileData, n: usize) -> Vec<FuncId> {
    let mut ranked: Vec<(FuncId, u64)> = function_heat(profile).into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.into_iter().take(n).map(|(f, _)| f).collect()
}

/// Functions accounting for at least `fraction` (0.0–1.0) of all heat,
/// hottest first — the "cover the hot 90%" selection policy.
pub fn functions_covering(profile: &ProfileData, fraction: f64) -> Vec<FuncId> {
    let mut ranked: Vec<(FuncId, u64)> = function_heat(profile).into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let total: u64 = ranked.iter().map(|&(_, h)| h).sum();
    if total == 0 {
        return Vec::new();
    }
    let target = (total as f64 * fraction.clamp(0.0, 1.0)).ceil() as u64;
    let mut out = Vec::new();
    let mut acc = 0;
    for (f, h) in ranked {
        if acc >= target {
            break;
        }
        acc += h;
        out.push(f);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use isf_ir::{BlockId, CallSiteId};

    fn sample() -> ProfileData {
        let mut p = ProfileData::new();
        for _ in 0..90 {
            p.record_call_edge(FuncId::new(0), CallSiteId::new(0), FuncId::new(1));
        }
        for _ in 0..9 {
            p.record_call_edge(FuncId::new(0), CallSiteId::new(1), FuncId::new(2));
        }
        p.record_block(FuncId::new(3), BlockId::new(0));
        p
    }

    #[test]
    fn ranking_orders_by_heat() {
        let p = sample();
        assert_eq!(
            hottest_functions(&p, 2),
            vec![FuncId::new(1), FuncId::new(2)]
        );
        assert_eq!(hottest_functions(&p, 10).len(), 3);
    }

    #[test]
    fn coverage_selection_stops_at_fraction() {
        let p = sample();
        // Function 1 alone covers 90% of the heat.
        assert_eq!(functions_covering(&p, 0.9), vec![FuncId::new(1)]);
        // Full coverage needs all three.
        assert_eq!(functions_covering(&p, 1.0).len(), 3);
        assert!(functions_covering(&ProfileData::new(), 0.9).is_empty());
    }
}
