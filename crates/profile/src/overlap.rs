//! The overlap-percentage accuracy metric (paper §4.4).
//!
//! For each key, compute its *sample percentage* in both profiles
//! (`count(key) / total * 100`); the overlap of a key is the minimum of the
//! two percentages, and the overlap of the profiles is the sum over all
//! keys. Identical distributions score 100; disjoint ones score 0.

use std::collections::HashMap;
use std::hash::Hash;

use crate::profile::ProfileData;

/// Overlap percentage (0–100) between two count distributions.
///
/// Two empty distributions are in perfect agreement (100); if exactly one
/// is empty the overlap is 0.
///
/// The sum runs in exact integer arithmetic over the common denominator
/// `ta * tb` — `min(ca/ta, cb/tb) = min(ca*tb, cb*ta) / (ta*tb)` — so the
/// result is independent of the map's iteration order. A floating-point
/// accumulation would pick up order-dependent rounding from `HashMap`'s
/// randomized hashing and break the byte-stable JSONL guarantee.
pub fn distribution_overlap<K: Eq + Hash>(a: &HashMap<K, u64>, b: &HashMap<K, u64>) -> f64 {
    let ta: u64 = a.values().sum();
    let tb: u64 = b.values().sum();
    match (ta, tb) {
        (0, 0) => return 100.0,
        (0, _) | (_, 0) => return 0.0,
        _ => {}
    }
    let mut overlap: u128 = 0;
    for (k, &ca) in a {
        if let Some(&cb) = b.get(k) {
            let pa = u128::from(ca) * u128::from(tb);
            let pb = u128::from(cb) * u128::from(ta);
            overlap += pa.min(pb);
        }
    }
    overlap as f64 / (u128::from(ta) * u128::from(tb)) as f64 * 100.0
}

/// Overlap percentage between the call-edge portions of two profiles.
/// Conventionally called as `call_edge_overlap(perfect, sampled)`.
pub fn call_edge_overlap(perfect: &ProfileData, sampled: &ProfileData) -> f64 {
    distribution_overlap(perfect.call_edges(), sampled.call_edges())
}

/// Overlap percentage between the field-access portions of two profiles.
pub fn field_access_overlap(perfect: &ProfileData, sampled: &ProfileData) -> f64 {
    distribution_overlap(perfect.field_accesses(), sampled.field_accesses())
}

/// Overlap percentage between the basic-block portions of two profiles.
pub fn block_overlap(perfect: &ProfileData, sampled: &ProfileData) -> f64 {
    distribution_overlap(perfect.blocks(), sampled.blocks())
}

/// Overlap percentage between the intraprocedural-edge portions of two
/// profiles.
pub fn edge_overlap(perfect: &ProfileData, sampled: &ProfileData) -> f64 {
    distribution_overlap(perfect.edges(), sampled.edges())
}

/// Overlap percentage between the path portions of two profiles.
pub fn path_overlap(perfect: &ProfileData, sampled: &ProfileData) -> f64 {
    distribution_overlap(perfect.paths(), sampled.paths())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(pairs: &[(u32, u64)]) -> HashMap<u32, u64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn identical_distributions_overlap_fully() {
        let a = dist(&[(1, 10), (2, 30)]);
        assert!((distribution_overlap(&a, &a) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_does_not_change_overlap() {
        // A sampled profile with 1/1000 of the counts but the same shape is
        // a perfect profile under this metric.
        let perfect = dist(&[(1, 10_000), (2, 30_000)]);
        let sampled = dist(&[(1, 10), (2, 30)]);
        assert!((distribution_overlap(&perfect, &sampled) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_distributions_do_not_overlap() {
        let a = dist(&[(1, 5)]);
        let b = dist(&[(2, 5)]);
        assert_eq!(distribution_overlap(&a, &b), 0.0);
    }

    #[test]
    fn partial_overlap_counts_minimum() {
        // a: 50%/50%; b: 75%/25% -> overlap = min(50,75) + min(50,25) = 75.
        let a = dist(&[(1, 50), (2, 50)]);
        let b = dist(&[(1, 75), (2, 25)]);
        assert!((distribution_overlap(&a, &b) - 75.0).abs() < 1e-9);
    }

    #[test]
    fn empty_edge_cases() {
        let empty: HashMap<u32, u64> = HashMap::new();
        let full = dist(&[(1, 5)]);
        assert_eq!(distribution_overlap(&empty, &empty), 100.0);
        assert_eq!(distribution_overlap(&empty, &full), 0.0);
        assert_eq!(distribution_overlap(&full, &empty), 0.0);
    }

    #[test]
    fn result_is_independent_of_iteration_order() {
        // Each HashMap instance gets its own random hash state, so two
        // equal maps iterate in different orders; the exact integer
        // accumulation must produce bit-identical results regardless.
        // (With float accumulation this fails intermittently at the ulp
        // level — that noise leaked into the raw JSONL row records.)
        let pairs: Vec<(u32, u64)> = (0..100).map(|i| (i, u64::from(i) * 7 + 3)).collect();
        let other: Vec<(u32, u64)> = (0..100).map(|i| (i, u64::from(i % 13) + 1)).collect();
        let first = distribution_overlap(&dist(&pairs), &dist(&other));
        for _ in 0..8 {
            let again = distribution_overlap(&dist(&pairs), &dist(&other));
            assert_eq!(first.to_bits(), again.to_bits());
        }
    }

    #[test]
    fn symmetry() {
        let a = dist(&[(1, 10), (2, 20), (3, 70)]);
        let b = dist(&[(1, 30), (2, 10), (4, 60)]);
        let ab = distribution_overlap(&a, &b);
        let ba = distribution_overlap(&b, &a);
        assert!((ab - ba).abs() < 1e-9);
    }
}
