//! Human-readable profile reports.

use isf_ir::Module;

use crate::profile::ProfileData;

/// One row of a ranked call-edge report.
#[derive(Clone, Debug, PartialEq)]
pub struct CallEdgeRow {
    /// Caller function name.
    pub caller: String,
    /// Call-site index within the caller.
    pub site: u32,
    /// Callee function name.
    pub callee: String,
    /// Raw event count.
    pub count: u64,
    /// Percentage of all call-edge events (the paper's
    /// "sample-percentage").
    pub percent: f64,
}

/// One row of a ranked field-access report.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldRow {
    /// Receiver class name.
    pub class: String,
    /// Field name.
    pub field: String,
    /// Raw event count.
    pub count: u64,
    /// Percentage of all field-access events.
    pub percent: f64,
}

/// Ranks call edges by count, descending, resolving names against `module`.
pub fn call_edge_rows(profile: &ProfileData, module: &Module) -> Vec<CallEdgeRow> {
    let total = profile.total_call_edge_events().max(1);
    let mut rows: Vec<CallEdgeRow> = profile
        .call_edges()
        .iter()
        .map(|(&(caller, site, callee), &count)| CallEdgeRow {
            caller: module.function(caller).name().to_owned(),
            site: site.0,
            callee: module.function(callee).name().to_owned(),
            count,
            percent: count as f64 / total as f64 * 100.0,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.count
            .cmp(&a.count)
            .then_with(|| a.caller.cmp(&b.caller))
            .then_with(|| a.site.cmp(&b.site))
            .then_with(|| a.callee.cmp(&b.callee))
    });
    rows
}

/// Ranks field accesses by count, descending, resolving names against
/// `module`.
pub fn field_rows(profile: &ProfileData, module: &Module) -> Vec<FieldRow> {
    let total = profile.total_field_access_events().max(1);
    let mut rows: Vec<FieldRow> = profile
        .field_accesses()
        .iter()
        .map(|(&(class, field), &count)| FieldRow {
            class: module.class(class).name().to_owned(),
            field: module.field_name(field).to_owned(),
            count,
            percent: count as f64 / total as f64 * 100.0,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.count
            .cmp(&a.count)
            .then_with(|| a.class.cmp(&b.class))
            .then_with(|| a.field.cmp(&b.field))
    });
    rows
}

/// Formats the top `n` call edges as an aligned text table.
pub fn format_top_call_edges(profile: &ProfileData, module: &Module, n: usize) -> String {
    let mut out = String::from("  count      %  caller -> callee (site)\n");
    for row in call_edge_rows(profile, module).into_iter().take(n) {
        out.push_str(&format!(
            "{:>7} {:>6.2}  {} -> {} (@{})\n",
            row.count, row.percent, row.caller, row.callee, row.site
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use isf_ir::{CallSiteId, FuncId, FunctionBuilder, ModuleBuilder, Term};

    fn two_fn_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let mut fb = FunctionBuilder::new("main", 0);
        fb.terminate(Term::Ret(None));
        let main = mb.add_function(fb.finish());
        let mut fb = FunctionBuilder::new("helper", 0);
        fb.terminate(Term::Ret(None));
        mb.add_function(fb.finish());
        mb.finish(main)
    }

    #[test]
    fn rows_ranked_by_count() {
        let m = two_fn_module();
        let main = FuncId::new(0);
        let helper = FuncId::new(1);
        let mut p = ProfileData::new();
        for _ in 0..3 {
            p.record_call_edge(main, CallSiteId::new(0), helper);
        }
        p.record_call_edge(main, CallSiteId::new(1), helper);
        let rows = call_edge_rows(&p, &m);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].count, 3);
        assert!((rows[0].percent - 75.0).abs() < 1e-9);
        assert_eq!(rows[0].caller, "main");
        assert_eq!(rows[0].callee, "helper");
    }

    #[test]
    fn text_table_renders() {
        let m = two_fn_module();
        let mut p = ProfileData::new();
        p.record_call_edge(FuncId::new(0), CallSiteId::new(0), FuncId::new(1));
        let text = format_top_call_edges(&p, &m, 10);
        assert!(text.contains("main -> helper"));
    }
}
