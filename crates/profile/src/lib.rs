//! Profile data structures and the paper's accuracy methodology.
//!
//! The execution engine records profiling events into a [`ProfileData`];
//! the *overlap percentage* metric of the paper's §4.4 ([`overlap`] module)
//! compares a sampled profile against a perfect (exhaustive) one:
//!
//! > "the overlap of two profiles represents the percent of profiled
//! > information, weighted by execution frequency, that exists in both
//! > profiles."
//!
//! A sampled profile identical in *shape* to the perfect profile scores
//! 100% even though its absolute counts are roughly `1/sample_interval` of
//! the perfect counts — overlap is computed on normalized distributions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod hotness;
pub mod overlap;
mod profile;
pub mod report;

pub use profile::{CallEdgeKey, FieldKey, PathKey, ProfileData, ValueSiteKey};
