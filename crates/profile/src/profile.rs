//! The profile container recorded by the execution engine.

use std::collections::HashMap;

use isf_ir::{BlockId, CallSiteId, ClassId, FieldSym, FuncId};

/// Key of one call edge: the caller method, the call site within it (the
/// paper's "bytecode offset"), and the callee (paper §4.2, example 1).
pub type CallEdgeKey = (FuncId, CallSiteId, FuncId);

/// Key of one field counter: the runtime receiver class and the field
/// (paper §4.2, example 2: "a counter is maintained for each field of all
/// classes").
pub type FieldKey = (ClassId, FieldSym);

/// Key of one value-profiling site.
pub type ValueSiteKey = (FuncId, u32);

/// Key of one recorded Ball–Larus path: the function, the path-end site,
/// and the accumulated path id.
pub type PathKey = (FuncId, u32, i64);

/// Counters collected by every instrumentation kind during one run.
///
/// All maps are keyed in the *original* program's key space, so exhaustive
/// and sampled runs produce directly comparable profiles.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileData {
    call_edges: HashMap<CallEdgeKey, u64>,
    field_accesses: HashMap<FieldKey, u64>,
    field_writes: HashMap<FieldKey, u64>,
    blocks: HashMap<(FuncId, BlockId), u64>,
    edges: HashMap<(FuncId, BlockId, BlockId), u64>,
    values: HashMap<ValueSiteKey, HashMap<i64, u64>>,
    paths: HashMap<PathKey, u64>,
}

impl ProfileData {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one execution of a call edge.
    pub fn record_call_edge(&mut self, caller: FuncId, site: CallSiteId, callee: FuncId) {
        *self.call_edges.entry((caller, site, callee)).or_insert(0) += 1;
    }

    /// Records one field access. `write` additionally bumps the write-only
    /// counter (kept separately for data-layout clients that care about
    /// store ratios).
    pub fn record_field_access(&mut self, class: ClassId, field: FieldSym, write: bool) {
        *self.field_accesses.entry((class, field)).or_insert(0) += 1;
        if write {
            *self.field_writes.entry((class, field)).or_insert(0) += 1;
        }
    }

    /// Records one execution of a basic block.
    pub fn record_block(&mut self, func: FuncId, block: BlockId) {
        *self.blocks.entry((func, block)).or_insert(0) += 1;
    }

    /// Records one traversal of an intraprocedural CFG edge.
    pub fn record_edge(&mut self, func: FuncId, from: BlockId, to: BlockId) {
        *self.edges.entry((func, from, to)).or_insert(0) += 1;
    }

    /// Records one completed Ball–Larus path.
    pub fn record_path(&mut self, func: FuncId, site: u32, path_id: i64) {
        *self.paths.entry((func, site, path_id)).or_insert(0) += 1;
    }

    /// The recorded path counters.
    pub fn paths(&self) -> &HashMap<PathKey, u64> {
        &self.paths
    }

    /// Total number of recorded paths.
    pub fn total_path_events(&self) -> u64 {
        self.paths.values().sum()
    }

    /// Records one observed value at a value-profiling site.
    pub fn record_value(&mut self, func: FuncId, site: u32, value: i64) {
        *self
            .values
            .entry((func, site))
            .or_default()
            .entry(value)
            .or_insert(0) += 1;
    }

    /// The call-edge counters.
    pub fn call_edges(&self) -> &HashMap<CallEdgeKey, u64> {
        &self.call_edges
    }

    /// The field-access counters (reads + writes).
    pub fn field_accesses(&self) -> &HashMap<FieldKey, u64> {
        &self.field_accesses
    }

    /// The field-write counters.
    pub fn field_writes(&self) -> &HashMap<FieldKey, u64> {
        &self.field_writes
    }

    /// The basic-block counters.
    pub fn blocks(&self) -> &HashMap<(FuncId, BlockId), u64> {
        &self.blocks
    }

    /// The intraprocedural edge counters.
    pub fn edges(&self) -> &HashMap<(FuncId, BlockId, BlockId), u64> {
        &self.edges
    }

    /// The per-site value histograms.
    pub fn values(&self) -> &HashMap<ValueSiteKey, HashMap<i64, u64>> {
        &self.values
    }

    /// Total number of call-edge events.
    pub fn total_call_edge_events(&self) -> u64 {
        self.call_edges.values().sum()
    }

    /// Total number of field-access events.
    pub fn total_field_access_events(&self) -> u64 {
        self.field_accesses.values().sum()
    }

    /// Returns `true` if no events of any kind were recorded.
    pub fn is_empty(&self) -> bool {
        self.call_edges.is_empty()
            && self.field_accesses.is_empty()
            && self.blocks.is_empty()
            && self.edges.is_empty()
            && self.values.is_empty()
            && self.paths.is_empty()
    }

    /// For a value-profiling site, the most frequent value and the fraction
    /// of observations it accounts for — the "top value" that convergent
    /// value profiling (Calder et al.) would specialize on.
    pub fn top_value(&self, func: FuncId, site: u32) -> Option<(i64, f64)> {
        let hist = self.values.get(&(func, site))?;
        let total: u64 = hist.values().sum();
        let (&v, &n) = hist
            .iter()
            .max_by_key(|&(v, n)| (*n, std::cmp::Reverse(*v)))?;
        Some((v, n as f64 / total as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(n: u32) -> FuncId {
        FuncId::new(n)
    }

    #[test]
    fn counters_accumulate() {
        let mut p = ProfileData::new();
        let key = (fid(0), CallSiteId::new(1), fid(2));
        p.record_call_edge(key.0, key.1, key.2);
        p.record_call_edge(key.0, key.1, key.2);
        assert_eq!(p.call_edges()[&key], 2);
        assert_eq!(p.total_call_edge_events(), 2);
    }

    #[test]
    fn writes_tracked_separately() {
        let mut p = ProfileData::new();
        let k = (ClassId::new(0), FieldSym::new(3));
        p.record_field_access(k.0, k.1, false);
        p.record_field_access(k.0, k.1, true);
        assert_eq!(p.field_accesses()[&k], 2);
        assert_eq!(p.field_writes()[&k], 1);
    }

    #[test]
    fn empty_detection() {
        let mut p = ProfileData::new();
        assert!(p.is_empty());
        p.record_block(fid(0), BlockId::new(0));
        assert!(!p.is_empty());
    }

    #[test]
    fn top_value_fraction() {
        let mut p = ProfileData::new();
        for _ in 0..3 {
            p.record_value(fid(0), 7, 42);
        }
        p.record_value(fid(0), 7, 5);
        let (v, frac) = p.top_value(fid(0), 7).unwrap();
        assert_eq!(v, 42);
        assert!((frac - 0.75).abs() < 1e-9);
        assert_eq!(p.top_value(fid(0), 8), None);
    }
}
