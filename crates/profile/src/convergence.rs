//! Profile convergence detection — convergent profiling in the style of
//! Calder & Feller (the paper's references \[15\], \[16\], \[26\]).
//!
//! Those systems "turn profiling off once the profiled values appear to
//! have converged". In the framework's terms: run a sampling epoch,
//! compare the epoch's profile against the accumulated one, and when the
//! distributions stop moving, set the sample condition permanently to
//! false (the paper's §2 shutdown mode, [`Trigger::Never`] here).
//!
//! [`Trigger::Never`]: ../isf_exec/enum.Trigger.html

use crate::overlap;
use crate::profile::ProfileData;

/// Tracks profile stability across sampling epochs.
#[derive(Clone, Debug)]
pub struct ConvergenceTracker {
    threshold: f64,
    required_stable_epochs: usize,
    previous: Option<ProfileData>,
    stable_epochs: usize,
    epochs: usize,
}

impl ConvergenceTracker {
    /// A tracker that declares convergence once the epoch-over-epoch
    /// overlap of every non-empty profile family stays at or above
    /// `threshold` percent for `required_stable_epochs` consecutive
    /// epochs.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not within `0.0..=100.0` or
    /// `required_stable_epochs` is zero.
    pub fn new(threshold: f64, required_stable_epochs: usize) -> Self {
        assert!((0.0..=100.0).contains(&threshold), "threshold is a percent");
        assert!(required_stable_epochs > 0);
        Self {
            threshold,
            required_stable_epochs,
            previous: None,
            stable_epochs: 0,
            epochs: 0,
        }
    }

    /// Feeds the profile observed in one epoch. Returns `true` once the
    /// profile has converged.
    pub fn observe(&mut self, epoch_profile: &ProfileData) -> bool {
        self.epochs += 1;
        if let Some(prev) = &self.previous {
            if self.epoch_stability(prev, epoch_profile) >= self.threshold {
                self.stable_epochs += 1;
            } else {
                self.stable_epochs = 0;
            }
        }
        self.previous = Some(epoch_profile.clone());
        self.is_converged()
    }

    /// Minimum overlap across the non-empty profile families of the two
    /// epochs (100 when both epochs are empty).
    fn epoch_stability(&self, a: &ProfileData, b: &ProfileData) -> f64 {
        let mut min = 100.0f64;
        let mut any = false;
        if !a.call_edges().is_empty() || !b.call_edges().is_empty() {
            min = min.min(overlap::call_edge_overlap(a, b));
            any = true;
        }
        if !a.field_accesses().is_empty() || !b.field_accesses().is_empty() {
            min = min.min(overlap::field_access_overlap(a, b));
            any = true;
        }
        if !a.paths().is_empty() || !b.paths().is_empty() {
            min = min.min(overlap::path_overlap(a, b));
            any = true;
        }
        if any {
            min
        } else {
            100.0
        }
    }

    /// Whether convergence has been reached.
    pub fn is_converged(&self) -> bool {
        self.stable_epochs >= self.required_stable_epochs
    }

    /// Epochs observed so far.
    pub fn epochs(&self) -> usize {
        self.epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isf_ir::{CallSiteId, FuncId};

    fn epoch(hot: u64, cold: u64) -> ProfileData {
        let mut p = ProfileData::new();
        for _ in 0..hot {
            p.record_call_edge(FuncId::new(0), CallSiteId::new(0), FuncId::new(1));
        }
        for _ in 0..cold {
            p.record_call_edge(FuncId::new(0), CallSiteId::new(1), FuncId::new(2));
        }
        p
    }

    #[test]
    fn stable_epochs_converge() {
        let mut t = ConvergenceTracker::new(95.0, 2);
        assert!(!t.observe(&epoch(90, 10))); // first epoch: no comparison
        assert!(!t.observe(&epoch(89, 11))); // 1 stable epoch
        assert!(t.observe(&epoch(90, 10))); // 2 stable epochs -> converged
        assert_eq!(t.epochs(), 3);
    }

    #[test]
    fn a_shift_resets_stability() {
        let mut t = ConvergenceTracker::new(95.0, 2);
        t.observe(&epoch(90, 10));
        t.observe(&epoch(90, 10));
        // Phase change: distribution flips.
        assert!(!t.observe(&epoch(10, 90)));
        assert!(!t.is_converged());
        // Needs two fresh stable epochs again.
        assert!(!t.observe(&epoch(10, 90)));
        assert!(t.observe(&epoch(10, 90)));
    }

    #[test]
    fn empty_epochs_count_as_stable() {
        let mut t = ConvergenceTracker::new(99.0, 1);
        t.observe(&ProfileData::new());
        assert!(t.observe(&ProfileData::new()));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_bad_threshold() {
        ConvergenceTracker::new(150.0, 1);
    }
}
