//! Semantic checks: name resolution, arity checking, structural rules.

use std::collections::{HashMap, HashSet};

use crate::ast::*;
use crate::diag::{CompileError, Pos};

/// Checks a parsed program. On success the program is guaranteed to lower
/// to verifiable IR.
///
/// # Errors
///
/// Returns the first semantic violation with its source position.
pub fn check(program: &Program) -> Result<(), CompileError> {
    let ctx = Context::collect(program)?;
    for class in &program.classes {
        for method in &class.methods {
            ctx.check_fn(method, true)?;
        }
    }
    for f in &program.functions {
        ctx.check_fn(f, false)?;
    }
    let Some(&(_, main_arity)) = ctx.functions.get("main") else {
        return Err(CompileError::sema(
            Pos::default(),
            "program has no `main` function",
        ));
    };
    if main_arity != 0 {
        return Err(CompileError::sema(
            Pos::default(),
            "`main` must take no parameters",
        ));
    }
    Ok(())
}

struct Context {
    /// Free function name → (declaration index, arity).
    functions: HashMap<String, (usize, usize)>,
    /// Class name → declaration index.
    classes: HashMap<String, usize>,
    /// Field names declared by any class.
    fields: HashSet<String>,
    /// Method name → set of arities (excluding `self`) across all classes.
    methods: HashMap<String, HashSet<usize>>,
}

impl Context {
    fn collect(program: &Program) -> Result<Self, CompileError> {
        let mut ctx = Context {
            functions: HashMap::new(),
            classes: HashMap::new(),
            fields: HashSet::new(),
            methods: HashMap::new(),
        };
        for (i, class) in program.classes.iter().enumerate() {
            if ctx.classes.insert(class.name.clone(), i).is_some() {
                return Err(CompileError::sema(
                    class.pos,
                    format!("duplicate class `{}`", class.name),
                ));
            }
        }
        // Parent existence and cycle detection.
        for class in &program.classes {
            if let Some(parent) = &class.parent {
                if !ctx.classes.contains_key(parent) {
                    return Err(CompileError::sema(
                        class.pos,
                        format!("unknown superclass `{parent}`"),
                    ));
                }
            }
            let mut seen = HashSet::new();
            let mut cur = Some(&class.name);
            while let Some(name) = cur {
                if !seen.insert(name.clone()) {
                    return Err(CompileError::sema(
                        class.pos,
                        format!("inheritance cycle through `{}`", class.name),
                    ));
                }
                cur = ctx
                    .classes
                    .get(name)
                    .and_then(|&i| program.classes[i].parent.as_ref());
            }
        }
        for class in &program.classes {
            let mut own = HashSet::new();
            for field in &class.fields {
                if !own.insert(field.clone()) {
                    return Err(CompileError::sema(
                        class.pos,
                        format!("duplicate field `{field}` in class `{}`", class.name),
                    ));
                }
                ctx.fields.insert(field.clone());
            }
            let mut own_methods = HashSet::new();
            for m in &class.methods {
                if !own_methods.insert(m.name.clone()) {
                    return Err(CompileError::sema(
                        m.pos,
                        format!("duplicate method `{}` in class `{}`", m.name, class.name),
                    ));
                }
                ctx.methods
                    .entry(m.name.clone())
                    .or_default()
                    .insert(m.params.len());
            }
        }
        for (i, f) in program.functions.iter().enumerate() {
            if ctx
                .functions
                .insert(f.name.clone(), (i, f.params.len()))
                .is_some()
            {
                return Err(CompileError::sema(
                    f.pos,
                    format!("duplicate function `{}`", f.name),
                ));
            }
        }
        Ok(ctx)
    }

    fn check_fn(&self, f: &FnDecl, is_method: bool) -> Result<(), CompileError> {
        let mut scopes = Scopes::new();
        scopes.push();
        for p in &f.params {
            if !scopes.declare(p) {
                return Err(CompileError::sema(
                    f.pos,
                    format!("duplicate parameter `{p}`"),
                ));
            }
        }
        self.check_body(&f.body, &mut scopes, is_method, 0)?;
        scopes.pop();
        Ok(())
    }

    fn check_body(
        &self,
        body: &[Stmt],
        scopes: &mut Scopes,
        is_method: bool,
        loop_depth: usize,
    ) -> Result<(), CompileError> {
        scopes.push();
        for stmt in body {
            self.check_stmt(stmt, scopes, is_method, loop_depth)?;
        }
        scopes.pop();
        Ok(())
    }

    fn check_stmt(
        &self,
        stmt: &Stmt,
        scopes: &mut Scopes,
        is_method: bool,
        loop_depth: usize,
    ) -> Result<(), CompileError> {
        match stmt {
            Stmt::Var { name, init, pos } => {
                if let Some(e) = init {
                    self.check_expr(e, scopes, is_method)?;
                }
                if !scopes.declare(name) {
                    return Err(CompileError::sema(
                        *pos,
                        format!("`{name}` already declared in this scope"),
                    ));
                }
                Ok(())
            }
            Stmt::Assign { target, value, pos } => {
                match target {
                    LValue::Var(name) => {
                        if !scopes.is_declared(name) {
                            return Err(CompileError::sema(
                                *pos,
                                format!("assignment to undeclared variable `{name}`"),
                            ));
                        }
                    }
                    LValue::Field { obj, field } => {
                        self.check_expr(obj, scopes, is_method)?;
                        self.check_field(field, *pos)?;
                    }
                    LValue::Index { arr, idx } => {
                        self.check_expr(arr, scopes, is_method)?;
                        self.check_expr(idx, scopes, is_method)?;
                    }
                }
                self.check_expr(value, scopes, is_method)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                self.check_expr(cond, scopes, is_method)?;
                self.check_body(then_body, scopes, is_method, loop_depth)?;
                self.check_body(else_body, scopes, is_method, loop_depth)
            }
            Stmt::While { cond, body, .. } => {
                self.check_expr(cond, scopes, is_method)?;
                self.check_body(body, scopes, is_method, loop_depth + 1)
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    self.check_expr(e, scopes, is_method)?;
                }
                Ok(())
            }
            Stmt::Break { pos } | Stmt::Continue { pos } => {
                if loop_depth == 0 {
                    Err(CompileError::sema(
                        *pos,
                        "`break`/`continue` outside of a loop",
                    ))
                } else {
                    Ok(())
                }
            }
            Stmt::Print { value, .. } => self.check_expr(value, scopes, is_method),
            Stmt::Expr { expr, .. } => self.check_expr(expr, scopes, is_method),
        }
    }

    fn check_field(&self, field: &str, pos: Pos) -> Result<(), CompileError> {
        if self.fields.contains(field) {
            Ok(())
        } else {
            Err(CompileError::sema(
                pos,
                format!("no class declares a field `{field}`"),
            ))
        }
    }

    fn check_expr(
        &self,
        expr: &Expr,
        scopes: &mut Scopes,
        is_method: bool,
    ) -> Result<(), CompileError> {
        match expr {
            Expr::Int(..) | Expr::Bool(..) | Expr::Null(..) => Ok(()),
            Expr::SelfRef(pos) => {
                if is_method {
                    Ok(())
                } else {
                    Err(CompileError::sema(*pos, "`self` used outside a method"))
                }
            }
            Expr::Var(name, pos) => {
                if scopes.is_declared(name) {
                    Ok(())
                } else {
                    Err(CompileError::sema(
                        *pos,
                        format!("undeclared variable `{name}`"),
                    ))
                }
            }
            Expr::Unary { expr, .. } => self.check_expr(expr, scopes, is_method),
            Expr::Binary { lhs, rhs, .. } => {
                self.check_expr(lhs, scopes, is_method)?;
                self.check_expr(rhs, scopes, is_method)
            }
            Expr::Call { name, args, pos } | Expr::Spawn { name, args, pos } => {
                let Some(&(_, arity)) = self.functions.get(name) else {
                    return Err(CompileError::sema(
                        *pos,
                        format!("call to unknown function `{name}`"),
                    ));
                };
                if args.len() != arity {
                    return Err(CompileError::sema(
                        *pos,
                        format!("`{name}` takes {arity} argument(s), {} given", args.len()),
                    ));
                }
                for a in args {
                    self.check_expr(a, scopes, is_method)?;
                }
                Ok(())
            }
            Expr::MethodCall {
                obj,
                method,
                args,
                pos,
            } => {
                self.check_expr(obj, scopes, is_method)?;
                let Some(arities) = self.methods.get(method) else {
                    return Err(CompileError::sema(
                        *pos,
                        format!("no class declares a method `{method}`"),
                    ));
                };
                if !arities.contains(&args.len()) {
                    return Err(CompileError::sema(
                        *pos,
                        format!(
                            "no declaration of method `{method}` takes {} argument(s)",
                            args.len()
                        ),
                    ));
                }
                for a in args {
                    self.check_expr(a, scopes, is_method)?;
                }
                Ok(())
            }
            Expr::FieldGet { obj, field, pos } => {
                self.check_expr(obj, scopes, is_method)?;
                self.check_field(field, *pos)
            }
            Expr::Index { arr, idx, .. } => {
                self.check_expr(arr, scopes, is_method)?;
                self.check_expr(idx, scopes, is_method)
            }
            Expr::New { class, pos } => {
                if self.classes.contains_key(class) {
                    Ok(())
                } else {
                    Err(CompileError::sema(*pos, format!("unknown class `{class}`")))
                }
            }
            Expr::NewArray { len, .. } => self.check_expr(len, scopes, is_method),
            Expr::Len { arr, .. } => self.check_expr(arr, scopes, is_method),
            Expr::Busy { cycles, pos } => {
                if *cycles < 0 || *cycles > u32::MAX as i64 {
                    Err(CompileError::sema(*pos, "`busy` cycle count out of range"))
                } else {
                    Ok(())
                }
            }
            Expr::Join { thread, .. } => self.check_expr(thread, scopes, is_method),
        }
    }
}

struct Scopes {
    stack: Vec<HashSet<String>>,
}

impl Scopes {
    fn new() -> Self {
        Self { stack: Vec::new() }
    }

    fn push(&mut self) {
        self.stack.push(HashSet::new());
    }

    fn pop(&mut self) {
        self.stack.pop();
    }

    fn declare(&mut self, name: &str) -> bool {
        self.stack
            .last_mut()
            .expect("scope stack never empty while checking")
            .insert(name.to_owned())
    }

    fn is_declared(&self, name: &str) -> bool {
        self.stack.iter().rev().any(|s| s.contains(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), CompileError> {
        check(&parse(src).unwrap())
    }

    #[test]
    fn accepts_valid_program() {
        check_src(
            "class A { field x; method bump(by) { self.x = self.x + by; } }
             fn main() { var a = new A; a.bump(2); print(a.x); }",
        )
        .unwrap();
    }

    #[test]
    fn requires_main() {
        let e = check_src("fn helper() {}").unwrap_err();
        assert!(e.message.contains("main"));
    }

    #[test]
    fn rejects_undeclared_variable() {
        let e = check_src("fn main() { print(x); }").unwrap_err();
        assert!(e.message.contains("undeclared variable `x`"));
    }

    #[test]
    fn rejects_bad_arity() {
        let e = check_src("fn f(a, b) {} fn main() { f(1); }").unwrap_err();
        assert!(e.message.contains("takes 2"));
    }

    #[test]
    fn rejects_unknown_method_and_field() {
        assert!(check_src("class A { field x; } fn main() { var a = new A; a.nope(); }").is_err());
        assert!(
            check_src("class A { field x; } fn main() { var a = new A; print(a.y); }").is_err()
        );
    }

    #[test]
    fn rejects_self_outside_method() {
        let e = check_src("fn main() { print(self); }").unwrap_err();
        assert!(e.message.contains("self"));
    }

    #[test]
    fn rejects_break_outside_loop() {
        assert!(check_src("fn main() { break; }").is_err());
        assert!(check_src("fn main() { while (true) { break; } }").is_ok());
    }

    #[test]
    fn rejects_inheritance_cycle() {
        let e = check_src("class A : B {} class B : A {} fn main() {}").unwrap_err();
        assert!(e.message.contains("cycle"));
    }

    #[test]
    fn rejects_duplicate_declarations() {
        assert!(check_src("fn f() {} fn f() {} fn main() {}").is_err());
        assert!(check_src("class A {} class A {} fn main() {}").is_err());
        assert!(check_src("class A { field x; field x; } fn main() {}").is_err());
        assert!(check_src("fn main() { var x = 1; var x = 2; }").is_err());
    }

    #[test]
    fn block_scoping_allows_shadowing_in_inner_block() {
        check_src("fn main() { var x = 1; if (true) { var x = 2; print(x); } print(x); }").unwrap();
    }

    #[test]
    fn main_must_be_nullary() {
        let e = check_src("fn main(x) {}").unwrap_err();
        assert!(e.message.contains("no parameters"));
    }
}
