//! Compilation diagnostics.

use std::error::Error;
use std::fmt;

/// A source position, 1-based.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Which phase rejected the program.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Semantic checking.
    Sema,
    /// Post-lowering verification (a front-end bug if it ever fires).
    Internal,
}

/// An error from any front-end phase, carrying the source position where
/// one is available.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompileError {
    /// The phase that failed.
    pub phase: Phase,
    /// Source position, if the error is tied to one.
    pub pos: Option<Pos>,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    pub(crate) fn lex(pos: Pos, message: impl Into<String>) -> Self {
        Self {
            phase: Phase::Lex,
            pos: Some(pos),
            message: message.into(),
        }
    }

    pub(crate) fn parse(pos: Pos, message: impl Into<String>) -> Self {
        Self {
            phase: Phase::Parse,
            pos: Some(pos),
            message: message.into(),
        }
    }

    pub(crate) fn sema(pos: Pos, message: impl Into<String>) -> Self {
        Self {
            phase: Phase::Sema,
            pos: Some(pos),
            message: message.into(),
        }
    }

    pub(crate) fn internal(message: impl Into<String>) -> Self {
        Self {
            phase: Phase::Internal,
            pos: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex error",
            Phase::Parse => "parse error",
            Phase::Sema => "semantic error",
            Phase::Internal => "internal error",
        };
        match self.pos {
            Some(p) => write!(f, "{phase} at {p}: {}", self.message),
            None => write!(f, "{phase}: {}", self.message),
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = CompileError::parse(Pos { line: 3, col: 7 }, "expected `;`");
        assert_eq!(e.to_string(), "parse error at 3:7: expected `;`");
    }

    #[test]
    fn internal_errors_have_no_position() {
        let e = CompileError::internal("boom");
        assert_eq!(e.to_string(), "internal error: boom");
    }
}
