//! Recursive-descent parser for Jive.

use crate::ast::*;
use crate::diag::{CompileError, Pos};
use crate::lexer::Lexer;
use crate::token::{Token, TokenKind};

/// Parses Jive source text into an AST.
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its source position.
pub fn parse(source: &str) -> Result<Program, CompileError> {
    let tokens = Lexer::new(source).tokenize()?;
    Parser { tokens, at: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.at].kind
    }

    fn pos(&self) -> Pos {
        self.tokens[self.at].pos
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.at].kind.clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        k
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), CompileError> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(CompileError::parse(
                self.pos(),
                format!("expected {kind}, found {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(CompileError::parse(
                self.pos(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut program = Program::default();
        loop {
            match self.peek() {
                TokenKind::Eof => return Ok(program),
                TokenKind::Class => program.classes.push(self.class_decl()?),
                TokenKind::Fn => program.functions.push(self.fn_decl(TokenKind::Fn)?),
                other => {
                    return Err(CompileError::parse(
                        self.pos(),
                        format!("expected `class` or `fn` at top level, found {other}"),
                    ))
                }
            }
        }
    }

    fn class_decl(&mut self) -> Result<ClassDecl, CompileError> {
        let pos = self.pos();
        self.expect(TokenKind::Class)?;
        let name = self.ident()?;
        let parent = if self.eat(&TokenKind::Colon) {
            Some(self.ident()?)
        } else {
            None
        };
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            match self.peek() {
                TokenKind::Field => {
                    self.bump();
                    fields.push(self.ident()?);
                    self.expect(TokenKind::Semi)?;
                }
                TokenKind::Method => methods.push(self.fn_decl(TokenKind::Method)?),
                other => {
                    return Err(CompileError::parse(
                        self.pos(),
                        format!("expected `field` or `method` in class body, found {other}"),
                    ))
                }
            }
        }
        Ok(ClassDecl {
            name,
            parent,
            fields,
            methods,
            pos,
        })
    }

    fn fn_decl(&mut self, keyword: TokenKind) -> Result<FnDecl, CompileError> {
        let pos = self.pos();
        self.expect(keyword)?;
        let name = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                params.push(self.ident()?);
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(TokenKind::Comma)?;
            }
        }
        let body = self.block()?;
        Ok(FnDecl {
            name,
            params,
            body,
            pos,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        match self.peek() {
            TokenKind::Var => {
                self.bump();
                let name = self.ident()?;
                let init = if self.eat(&TokenKind::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Var { name, init, pos })
            }
            TokenKind::If => self.if_stmt(),
            TokenKind::While => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, pos })
            }
            TokenKind::Return => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Return { value, pos })
            }
            TokenKind::Break => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Break { pos })
            }
            TokenKind::Continue => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Continue { pos })
            }
            TokenKind::Print => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let value = self.expr()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Print { value, pos })
            }
            _ => {
                let expr = self.expr()?;
                if self.eat(&TokenKind::Assign) {
                    let target = Self::as_lvalue(expr).ok_or_else(|| {
                        CompileError::parse(pos, "left side of `=` is not assignable")
                    })?;
                    let value = self.expr()?;
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Assign { target, value, pos })
                } else {
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Expr { expr, pos })
                }
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        self.expect(TokenKind::If)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then_body = self.block()?;
        let else_body = if self.eat(&TokenKind::Else) {
            if self.peek() == &TokenKind::If {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
            pos,
        })
    }

    fn as_lvalue(expr: Expr) -> Option<LValue> {
        match expr {
            Expr::Var(name, _) => Some(LValue::Var(name)),
            Expr::FieldGet { obj, field, .. } => Some(LValue::Field { obj, field }),
            Expr::Index { arr, idx, .. } => Some(LValue::Index { arr, idx }),
            _ => None,
        }
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &TokenKind::OrOr {
            let pos = self.pos();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinaryOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == &TokenKind::AndAnd {
            let pos = self.pos();
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary {
                op: BinaryOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::EqEq => BinaryOp::Eq,
            TokenKind::NotEq => BinaryOp::Ne,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::Le => BinaryOp::Le,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::Ge => BinaryOp::Ge,
            _ => return Ok(lhs),
        };
        let pos = self.pos();
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            pos,
        })
    }

    fn add_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                TokenKind::Pipe => BinaryOp::BitOr,
                TokenKind::Caret => BinaryOp::BitXor,
                _ => return Ok(lhs),
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Rem,
                TokenKind::Amp => BinaryOp::BitAnd,
                TokenKind::Shl => BinaryOp::Shl,
                TokenKind::Shr => BinaryOp::Shr,
                _ => return Ok(lhs),
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let pos = self.pos();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnaryOp::Neg),
            TokenKind::Bang => Some(UnaryOp::Not),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let expr = self.unary_expr()?;
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
                pos,
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, CompileError> {
        let mut expr = self.primary_expr()?;
        loop {
            let pos = self.pos();
            if self.eat(&TokenKind::Dot) {
                let name = self.ident()?;
                if self.peek() == &TokenKind::LParen {
                    let args = self.args()?;
                    expr = Expr::MethodCall {
                        obj: Box::new(expr),
                        method: name,
                        args,
                        pos,
                    };
                } else {
                    expr = Expr::FieldGet {
                        obj: Box::new(expr),
                        field: name,
                        pos,
                    };
                }
            } else if self.eat(&TokenKind::LBracket) {
                let idx = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                expr = Expr::Index {
                    arr: Box::new(expr),
                    idx: Box::new(idx),
                    pos,
                };
            } else {
                return Ok(expr);
            }
        }
    }

    fn args(&mut self) -> Result<Vec<Expr>, CompileError> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.eat(&TokenKind::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if self.eat(&TokenKind::RParen) {
                return Ok(args);
            }
            self.expect(TokenKind::Comma)?;
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, CompileError> {
        let pos = self.pos();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, pos))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::Bool(true, pos))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::Bool(false, pos))
            }
            TokenKind::Null => {
                self.bump();
                Ok(Expr::Null(pos))
            }
            TokenKind::SelfKw => {
                self.bump();
                Ok(Expr::SelfRef(pos))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::New => {
                self.bump();
                let class = self.ident()?;
                Ok(Expr::New { class, pos })
            }
            TokenKind::Array => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let len = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr::NewArray {
                    len: Box::new(len),
                    pos,
                })
            }
            TokenKind::Len => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let arr = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr::Len {
                    arr: Box::new(arr),
                    pos,
                })
            }
            TokenKind::Busy => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cycles = match self.peek().clone() {
                    TokenKind::Int(v) => {
                        self.bump();
                        v
                    }
                    other => {
                        return Err(CompileError::parse(
                            self.pos(),
                            format!("`busy` takes an integer literal, found {other}"),
                        ))
                    }
                };
                self.expect(TokenKind::RParen)?;
                Ok(Expr::Busy { cycles, pos })
            }
            TokenKind::Spawn => {
                self.bump();
                let name = self.ident()?;
                let args = self.args()?;
                Ok(Expr::Spawn { name, args, pos })
            }
            TokenKind::Join => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let thread = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr::Join {
                    thread: Box::new(thread),
                    pos,
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.peek() == &TokenKind::LParen {
                    let args = self.args()?;
                    Ok(Expr::Call { name, args, pos })
                } else {
                    Ok(Expr::Var(name, pos))
                }
            }
            other => Err(CompileError::parse(
                pos,
                format!("expected expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_with_while_and_if() {
        let p = parse(
            "fn main() { var i = 0; while (i < 10) { if (i % 2 == 0) { print(i); } i = i + 1; } }",
        )
        .unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "main");
        assert_eq!(p.functions[0].body.len(), 2);
    }

    #[test]
    fn parses_class_with_inheritance() {
        let p =
            parse("class A { field x; method get() { return self.x; } } class B : A { field y; }")
                .unwrap();
        assert_eq!(p.classes.len(), 2);
        assert_eq!(p.classes[1].parent.as_deref(), Some("A"));
        assert_eq!(p.classes[0].methods.len(), 1);
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse("fn f() { var x = 1 + 2 * 3; }").unwrap();
        let Stmt::Var { init: Some(e), .. } = &p.functions[0].body[0] else {
            panic!("expected var");
        };
        let Expr::Binary { op, rhs, .. } = e else {
            panic!("expected binary");
        };
        assert_eq!(*op, BinaryOp::Add);
        assert!(matches!(
            **rhs,
            Expr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn assignment_targets() {
        assert!(parse("fn f(a) { a = 1; }").is_ok());
        assert!(parse("fn f(a) { a.x = 1; }").is_ok());
        assert!(parse("fn f(a) { a[0] = 1; }").is_ok());
        let err = parse("fn f(a) { (a + 1) = 2; }").unwrap_err();
        assert!(err.message.contains("not assignable"));
    }

    #[test]
    fn method_call_chain() {
        let p = parse("fn f(o) { o.next().next().x = 3; }").unwrap();
        assert!(matches!(p.functions[0].body[0], Stmt::Assign { .. }));
    }

    #[test]
    fn else_if_chains() {
        let p = parse("fn f(x) { if (x == 0) {} else if (x == 1) {} else {} }").unwrap();
        let Stmt::If { else_body, .. } = &p.functions[0].body[0] else {
            panic!();
        };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn spawn_and_join() {
        let p = parse("fn w(n) {} fn main() { var t = spawn w(5); join(t); }").unwrap();
        assert_eq!(p.functions.len(), 2);
    }

    #[test]
    fn error_has_position() {
        let e = parse("fn main() { var 1 = 2; }").unwrap_err();
        assert!(e.pos.is_some());
        assert!(e.message.contains("identifier"));
    }

    #[test]
    fn rejects_stray_top_level_token() {
        assert!(parse("var x = 1;").is_err());
    }
}
