//! Front end for **Jive**, the small Java-like language the ISF benchmark
//! suite is written in.
//!
//! The paper's substrate is a JVM: Java source compiled to bytecode,
//! compiled again by Jalapeño's optimizing compiler into an IR that the
//! sampling transforms rewrite. This crate is our analogue of the front
//! half of that pipeline: Jive source → AST → checked AST → `isf-ir`
//! [`Module`](isf_ir::Module), with yieldpoints placed on method entries and
//! loop backedges exactly where Jalapeño places them.
//!
//! # Language summary
//!
//! ```text
//! class Point : Base {          // single inheritance
//!     field x; field y;
//!     method mag(scale) {       // implicit `self`
//!         return self.x * self.x + self.y * self.y * scale;
//!     }
//! }
//! fn main() {
//!     var p = new Point;
//!     p.x = 3; p.y = 4;
//!     var i = 0;
//!     while (i < 10) {
//!         if (p.mag(1) > 20 && i != 3) { print(i); }
//!         i = i + 1;
//!     }
//! }
//! ```
//!
//! All values are 64-bit integers, booleans, object/array references, null,
//! or thread handles; there are no static types beyond arity checking.
//! Built-ins: `print(e)`, `array(n)` (new integer array), `len(a)`,
//! `busy(k)` (spin the simulated clock for `k` cycles — used to model
//! long-latency operations), `spawn f(args)` and `join(t)` (green threads).
//!
//! # Example
//!
//! ```
//! let module = isf_frontend::compile("fn main() { print(42); }")?;
//! assert_eq!(module.function(module.main()).name(), "main");
//! # Ok::<(), isf_frontend::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod diag;
mod lexer;
mod lower;
mod parser;
mod sema;
mod token;

pub use diag::CompileError;
pub use lexer::Lexer;
pub use parser::parse;
pub use token::{Token, TokenKind};

use isf_ir::Module;

/// Compiles Jive source text into a verified IR module.
///
/// Runs the full pipeline: lexing, parsing, semantic checking, lowering
/// (with yieldpoint insertion), and the IR verifier.
///
/// # Errors
///
/// Returns a [`CompileError`] carrying the source position for lexical,
/// syntactic and semantic errors, or a description of an internal verifier
/// failure (which would be a bug in the lowering pass).
pub fn compile(source: &str) -> Result<Module, CompileError> {
    let program = parse(source)?;
    sema::check(&program)?;
    let module = lower::lower(&program);
    isf_ir::verify::verify_module(&module)
        .map_err(|e| CompileError::internal(format!("lowering produced invalid IR: {e}")))?;
    Ok(module)
}

/// Compiles Jive source and runs the optimizer bundle
/// ([`isf_ir::passes::optimize`]) over every function — the analogue of
/// Jalapeño compiling at O2 before the sampling framework instruments the
/// code (paper §4.1).
///
/// # Errors
///
/// As [`compile`].
pub fn compile_optimized(source: &str) -> Result<Module, CompileError> {
    let mut module = compile(source)?;
    let ids: Vec<_> = module.func_ids().collect();
    for id in ids {
        isf_ir::passes::optimize(module.function_mut(id));
    }
    isf_ir::verify::verify_module(&module)
        .map_err(|e| CompileError::internal(format!("optimizer produced invalid IR: {e}")))?;
    Ok(module)
}
