//! Abstract syntax tree for Jive.

use crate::diag::Pos;

/// A whole program: classes and free functions.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Class declarations, in source order.
    pub classes: Vec<ClassDecl>,
    /// Function declarations, in source order.
    pub functions: Vec<FnDecl>,
}

/// `class Name : Parent { field ...; method ... }`
#[derive(Clone, Debug)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// Optional superclass name.
    pub parent: Option<String>,
    /// Declared field names, in source order.
    pub fields: Vec<String>,
    /// Declared methods.
    pub methods: Vec<FnDecl>,
    /// Source position of the declaration.
    pub pos: Pos,
}

/// A function or method declaration. For methods, `params` excludes the
/// implicit `self`.
#[derive(Clone, Debug)]
pub struct FnDecl {
    /// Function/method name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source position of the declaration.
    pub pos: Pos,
}

/// A statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `var name = init;` (init defaults to `0`).
    Var {
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `lvalue = value;`
    Assign {
        /// Assignment target.
        target: LValue,
        /// Right-hand side.
        value: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (empty when absent).
        else_body: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
    /// `while (cond) { .. }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
    /// `return e;` / `return;`
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `break;`
    Break {
        /// Source position.
        pos: Pos,
    },
    /// `continue;`
    Continue {
        /// Source position.
        pos: Pos,
    },
    /// `print(e);`
    Print {
        /// Printed value.
        value: Expr,
        /// Source position.
        pos: Pos,
    },
    /// An expression evaluated for its side effects.
    Expr {
        /// The expression.
        expr: Expr,
        /// Source position.
        pos: Pos,
    },
}

/// An assignable place.
#[derive(Clone, Debug)]
pub enum LValue {
    /// A local variable or parameter.
    Var(String),
    /// `obj.field`
    Field {
        /// Receiver expression.
        obj: Box<Expr>,
        /// Field name.
        field: String,
    },
    /// `arr[idx]`
    Index {
        /// Array expression.
        arr: Box<Expr>,
        /// Index expression.
        idx: Box<Expr>,
    },
}

/// Binary operators at the AST level.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

/// Unary operators at the AST level.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// An expression.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Pos),
    /// `true` / `false`.
    Bool(bool, Pos),
    /// `null`.
    Null(Pos),
    /// `self` (methods only).
    SelfRef(Pos),
    /// A variable reference.
    Var(String, Pos),
    /// `op e`
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `lhs op rhs`
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `f(args)` — a direct call of a free function.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `obj.m(args)` — dynamic dispatch on the runtime class of `obj`.
    MethodCall {
        /// Receiver.
        obj: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments (excluding receiver).
        args: Vec<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `obj.field`
    FieldGet {
        /// Receiver.
        obj: Box<Expr>,
        /// Field name.
        field: String,
        /// Source position.
        pos: Pos,
    },
    /// `arr[idx]`
    Index {
        /// Array.
        arr: Box<Expr>,
        /// Index.
        idx: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `new Class`
    New {
        /// Class name.
        class: String,
        /// Source position.
        pos: Pos,
    },
    /// `array(n)` — new zero-filled integer array.
    NewArray {
        /// Length expression.
        len: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `len(a)`
    Len {
        /// Array expression.
        arr: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `busy(k)` — spin the simulated clock for a constant `k` cycles.
    Busy {
        /// Constant cycle count.
        cycles: i64,
        /// Source position.
        pos: Pos,
    },
    /// `spawn f(args)` — start a green thread, yielding a handle.
    Spawn {
        /// Entry function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `join(t)` — wait for a thread to finish.
    Join {
        /// Thread-handle expression.
        thread: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
}

impl Expr {
    /// The source position of the expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int(_, p)
            | Expr::Bool(_, p)
            | Expr::Null(p)
            | Expr::SelfRef(p)
            | Expr::Var(_, p) => *p,
            Expr::Unary { pos, .. }
            | Expr::Binary { pos, .. }
            | Expr::Call { pos, .. }
            | Expr::MethodCall { pos, .. }
            | Expr::FieldGet { pos, .. }
            | Expr::Index { pos, .. }
            | Expr::New { pos, .. }
            | Expr::NewArray { pos, .. }
            | Expr::Len { pos, .. }
            | Expr::Busy { pos, .. }
            | Expr::Spawn { pos, .. }
            | Expr::Join { pos, .. } => *pos,
        }
    }
}
