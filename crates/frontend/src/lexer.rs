//! Hand-written lexer for Jive.

use crate::diag::{CompileError, Pos};
use crate::token::{Token, TokenKind};

/// A streaming tokenizer over Jive source text.
///
/// Supports `//` line comments and `/* */` block comments (non-nesting).
#[derive(Debug)]
pub struct Lexer<'src> {
    chars: std::iter::Peekable<std::str::Chars<'src>>,
    line: u32,
    col: u32,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `source`.
    pub fn new(source: &'src str) -> Self {
        Self {
            chars: source.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    /// Tokenizes the whole input, ending with an [`TokenKind::Eof`] token.
    ///
    /// # Errors
    ///
    /// Returns a lex error on unknown characters, malformed operators or
    /// integer literals that overflow `i64`.
    pub fn tokenize(mut self) -> Result<Vec<Token>, CompileError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let is_eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if is_eof {
                return Ok(out);
            }
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn eat(&mut self, expected: char) -> bool {
        if self.peek() == Some(expected) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn skip_trivia(&mut self) -> Result<(), CompileError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') => {
                    // Peek one further: clone is cheap for Chars.
                    let mut lookahead = self.chars.clone();
                    lookahead.next();
                    match lookahead.next() {
                        Some('/') => {
                            while let Some(c) = self.bump() {
                                if c == '\n' {
                                    break;
                                }
                            }
                        }
                        Some('*') => {
                            let start = self.pos();
                            self.bump();
                            self.bump();
                            let mut closed = false;
                            while let Some(c) = self.bump() {
                                if c == '*' && self.eat('/') {
                                    closed = true;
                                    break;
                                }
                            }
                            if !closed {
                                return Err(CompileError::lex(start, "unterminated block comment"));
                            }
                        }
                        _ => return Ok(()),
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, CompileError> {
        self.skip_trivia()?;
        let pos = self.pos();
        let Some(c) = self.bump() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                pos,
            });
        };
        let kind = match c {
            '(' => TokenKind::LParen,
            ')' => TokenKind::RParen,
            '{' => TokenKind::LBrace,
            '}' => TokenKind::RBrace,
            '[' => TokenKind::LBracket,
            ']' => TokenKind::RBracket,
            ';' => TokenKind::Semi,
            ',' => TokenKind::Comma,
            '.' => TokenKind::Dot,
            ':' => TokenKind::Colon,
            '+' => TokenKind::Plus,
            '-' => TokenKind::Minus,
            '*' => TokenKind::Star,
            '/' => TokenKind::Slash,
            '%' => TokenKind::Percent,
            '^' => TokenKind::Caret,
            '=' => {
                if self.eat('=') {
                    TokenKind::EqEq
                } else {
                    TokenKind::Assign
                }
            }
            '!' => {
                if self.eat('=') {
                    TokenKind::NotEq
                } else {
                    TokenKind::Bang
                }
            }
            '<' => {
                if self.eat('=') {
                    TokenKind::Le
                } else if self.eat('<') {
                    TokenKind::Shl
                } else {
                    TokenKind::Lt
                }
            }
            '>' => {
                if self.eat('=') {
                    TokenKind::Ge
                } else if self.eat('>') {
                    TokenKind::Shr
                } else {
                    TokenKind::Gt
                }
            }
            '&' => {
                if self.eat('&') {
                    TokenKind::AndAnd
                } else {
                    TokenKind::Amp
                }
            }
            '|' => {
                if self.eat('|') {
                    TokenKind::OrOr
                } else {
                    TokenKind::Pipe
                }
            }
            d if d.is_ascii_digit() => {
                let mut value: i64 = (d as u8 - b'0') as i64;
                while let Some(n) = self.peek() {
                    if !n.is_ascii_digit() {
                        break;
                    }
                    self.bump();
                    value = value
                        .checked_mul(10)
                        .and_then(|v| v.checked_add((n as u8 - b'0') as i64))
                        .ok_or_else(|| CompileError::lex(pos, "integer literal overflows i64"))?;
                }
                TokenKind::Int(value)
            }
            a if a.is_ascii_alphabetic() || a == '_' => {
                let mut text = String::new();
                text.push(a);
                while let Some(n) = self.peek() {
                    if n.is_ascii_alphanumeric() || n == '_' {
                        text.push(n);
                        self.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::keyword(&text).unwrap_or(TokenKind::Ident(text))
            }
            other => {
                return Err(CompileError::lex(
                    pos,
                    format!("unexpected character `{other}`"),
                ))
            }
        };
        Ok(Token { kind, pos })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_keywords_idents_and_ints() {
        assert_eq!(
            kinds("while x123 42"),
            vec![
                TokenKind::While,
                TokenKind::Ident("x123".into()),
                TokenKind::Int(42),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_compound_operators() {
        assert_eq!(
            kinds("<= >= == != && || << >> < >"),
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("1 // comment\n 2 /* block\n comment */ 3"),
            vec![
                TokenKind::Int(1),
                TokenKind::Int(2),
                TokenKind::Int(3),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn tracks_positions() {
        let toks = Lexer::new("a\n  b").tokenize().unwrap();
        assert_eq!((toks[0].pos.line, toks[0].pos.col), (1, 1));
        assert_eq!((toks[1].pos.line, toks[1].pos.col), (2, 3));
    }

    #[test]
    fn rejects_unknown_char_and_overflow() {
        assert!(Lexer::new("#").tokenize().is_err());
        assert!(Lexer::new("99999999999999999999999").tokenize().is_err());
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        let e = Lexer::new("/* never closed").tokenize().unwrap_err();
        assert!(e.message.contains("unterminated"));
    }
}
