//! Lowering from the checked AST to `isf-ir`.
//!
//! Yieldpoint placement mirrors Jalapeño (paper §4.5): one `Yield` at every
//! method entry, and one on every loop backedge (in a dedicated latch block
//! that both the fall-through path and `continue` route through, so each
//! loop has exactly one backedge and exactly one backedge yieldpoint).

use std::collections::HashMap;

use isf_ir::{
    BinOp, CallSiteId, ClassId, Const, FieldSym, FuncId, FunctionBuilder, Inst, LocalId, MethodSym,
    Module, ModuleBuilder, Term, UnOp,
};

use crate::ast::*;

/// Lowers a semantically checked program to an IR module.
///
/// # Panics
///
/// May panic on programs that have not passed [`crate::sema::check`]; the
/// public pipeline in [`crate::compile`] always runs the checker first.
pub fn lower(program: &Program) -> Module {
    let mut mb = ModuleBuilder::new();

    // Declare every free function and method so calls can be resolved
    // before bodies are lowered.
    let mut functions: HashMap<&str, FuncId> = HashMap::new();
    for f in &program.functions {
        let id = mb.declare_function(&f.name, f.params.len());
        functions.insert(&f.name, id);
    }
    let mut method_ids: Vec<Vec<FuncId>> = Vec::new();
    for class in &program.classes {
        let ids = class
            .methods
            .iter()
            .map(|m| {
                // `self` is the implicit parameter 0.
                mb.declare_function(&format!("{}::{}", class.name, m.name), m.params.len() + 1)
            })
            .collect();
        method_ids.push(ids);
    }

    // Register classes parents-first.
    let mut classes: HashMap<&str, ClassId> = HashMap::new();
    let class_index: HashMap<&str, usize> = program
        .classes
        .iter()
        .enumerate()
        .map(|(i, c)| (c.name.as_str(), i))
        .collect();
    fn register<'p>(
        i: usize,
        program: &'p Program,
        class_index: &HashMap<&str, usize>,
        method_ids: &[Vec<FuncId>],
        mb: &mut ModuleBuilder,
        classes: &mut HashMap<&'p str, ClassId>,
    ) -> ClassId {
        let class = &program.classes[i];
        if let Some(&id) = classes.get(class.name.as_str()) {
            return id;
        }
        let parent = class.parent.as_ref().map(|p| {
            register(
                class_index[p.as_str()],
                program,
                class_index,
                method_ids,
                mb,
                classes,
            )
        });
        let fields: Vec<FieldSym> = class.fields.iter().map(|f| mb.intern_field(f)).collect();
        let methods: Vec<(MethodSym, FuncId)> = class
            .methods
            .iter()
            .zip(&method_ids[i])
            .map(|(m, &id)| (mb.intern_method(&m.name), id))
            .collect();
        let id = mb.add_class(&class.name, parent, &fields, &methods);
        classes.insert(&class.name, id);
        id
    }
    for i in 0..program.classes.len() {
        register(i, program, &class_index, &method_ids, &mut mb, &mut classes);
    }

    // Lower bodies.
    for f in &program.functions {
        let id = functions[f.name.as_str()];
        let lowered = FnLowerer::lower(f, false, &functions, &classes, &mut mb);
        mb.define_function(id, lowered);
    }
    for (i, class) in program.classes.iter().enumerate() {
        for (m, &id) in class.methods.iter().zip(&method_ids[i]) {
            let mangled = format!("{}::{}", class.name, m.name);
            let mut decl = m.clone();
            decl.name = mangled;
            let lowered = FnLowerer::lower(&decl, true, &functions, &classes, &mut mb);
            mb.define_function(id, lowered);
        }
    }

    let main = functions["main"];
    mb.finish(main)
}

struct FnLowerer<'p, 'mb> {
    fb: FunctionBuilder,
    scopes: Vec<HashMap<String, LocalId>>,
    /// (continue target = latch, break target = exit)
    loop_stack: Vec<(isf_ir::BlockId, isf_ir::BlockId)>,
    is_method: bool,
    functions: &'p HashMap<&'p str, FuncId>,
    classes: &'p HashMap<&'p str, ClassId>,
    mb: &'mb mut ModuleBuilder,
}

impl<'p, 'mb> FnLowerer<'p, 'mb> {
    fn lower(
        decl: &FnDecl,
        is_method: bool,
        functions: &'p HashMap<&'p str, FuncId>,
        classes: &'p HashMap<&'p str, ClassId>,
        mb: &'mb mut ModuleBuilder,
    ) -> isf_ir::Function {
        let arity = decl.params.len() + usize::from(is_method);
        let mut fb = FunctionBuilder::new(&decl.name, arity);
        // Method-entry yieldpoint, exactly where Jalapeño inserts one.
        fb.push(Inst::Yield);
        let mut scope = HashMap::new();
        for (i, p) in decl.params.iter().enumerate() {
            scope.insert(p.clone(), fb.param(i + usize::from(is_method)));
        }
        let mut lowerer = FnLowerer {
            fb,
            scopes: vec![scope],
            loop_stack: Vec::new(),
            is_method,
            functions,
            classes,
            mb,
        };
        lowerer.body(&decl.body);
        if !lowerer.fb.is_terminated() {
            lowerer.fb.terminate(Term::Ret(None));
        }
        lowerer.fb.finish()
    }

    fn body(&mut self, stmts: &[Stmt]) {
        self.scopes.push(HashMap::new());
        for stmt in stmts {
            self.stmt(stmt);
            if self.fb.is_terminated() {
                // Anything after a return/break/continue in this block is
                // dead; park it in a fresh unreachable block.
                let dead = self.fb.new_block();
                self.fb.switch_to(dead);
            }
        }
        self.scopes.pop();
    }

    fn lookup(&self, name: &str) -> LocalId {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name))
            .copied()
            .expect("sema guarantees variables are declared")
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Var { name, init, .. } => {
                let local = self.fb.new_local();
                match init {
                    Some(e) => {
                        let v = self.expr(e);
                        self.fb.push(Inst::Move { dst: local, src: v });
                    }
                    None => {
                        self.fb.push(Inst::Const {
                            dst: local,
                            value: Const::I64(0),
                        });
                    }
                }
                self.scopes
                    .last_mut()
                    .expect("scope stack non-empty")
                    .insert(name.clone(), local);
            }
            Stmt::Assign { target, value, .. } => match target {
                LValue::Var(name) => {
                    let dst = self.lookup(name);
                    let v = self.expr(value);
                    self.fb.push(Inst::Move { dst, src: v });
                }
                LValue::Field { obj, field } => {
                    let o = self.expr(obj);
                    let v = self.expr(value);
                    let field = self.mb.intern_field(field);
                    self.fb.push(Inst::SetField {
                        obj: o,
                        field,
                        src: v,
                    });
                }
                LValue::Index { arr, idx } => {
                    let a = self.expr(arr);
                    let i = self.expr(idx);
                    let v = self.expr(value);
                    self.fb.push(Inst::ArraySet {
                        arr: a,
                        idx: i,
                        src: v,
                    });
                }
            },
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let c = self.expr(cond);
                let then_b = self.fb.new_block();
                let else_b = self.fb.new_block();
                let merge = self.fb.new_block();
                self.fb.terminate(Term::Br {
                    cond: c,
                    t: then_b,
                    f: else_b,
                });
                self.fb.switch_to(then_b);
                self.body(then_body);
                if !self.fb.is_terminated() {
                    self.fb.terminate(Term::Jump(merge));
                }
                self.fb.switch_to(else_b);
                self.body(else_body);
                if !self.fb.is_terminated() {
                    self.fb.terminate(Term::Jump(merge));
                }
                self.fb.switch_to(merge);
            }
            Stmt::While { cond, body, .. } => {
                let header = self.fb.new_block();
                let body_b = self.fb.new_block();
                let latch = self.fb.new_block();
                let exit = self.fb.new_block();
                self.fb.terminate(Term::Jump(header));
                self.fb.switch_to(header);
                let c = self.expr(cond);
                self.fb.terminate(Term::Br {
                    cond: c,
                    t: body_b,
                    f: exit,
                });
                self.fb.switch_to(body_b);
                self.loop_stack.push((latch, exit));
                self.body(body);
                self.loop_stack.pop();
                if !self.fb.is_terminated() {
                    self.fb.terminate(Term::Jump(latch));
                }
                // The single backedge of the loop carries the backedge
                // yieldpoint.
                self.fb.switch_to(latch);
                self.fb.push(Inst::Yield);
                self.fb.terminate(Term::Jump(header));
                self.fb.switch_to(exit);
            }
            Stmt::Return { value, .. } => {
                let v = value.as_ref().map(|e| self.expr(e));
                self.fb.terminate(Term::Ret(v));
            }
            Stmt::Break { .. } => {
                let (_, exit) = *self.loop_stack.last().expect("sema checks loop depth");
                self.fb.terminate(Term::Jump(exit));
            }
            Stmt::Continue { .. } => {
                let (latch, _) = *self.loop_stack.last().expect("sema checks loop depth");
                self.fb.terminate(Term::Jump(latch));
            }
            Stmt::Print { value, .. } => {
                let v = self.expr(value);
                self.fb.push(Inst::Print { src: v });
            }
            Stmt::Expr { expr, .. } => {
                self.expr(expr);
            }
        }
    }

    fn expr(&mut self, expr: &Expr) -> LocalId {
        match expr {
            Expr::Int(v, _) => self.constant(Const::I64(*v)),
            Expr::Bool(b, _) => self.constant(Const::Bool(*b)),
            Expr::Null(_) => self.constant(Const::Null),
            Expr::SelfRef(_) => {
                debug_assert!(self.is_method);
                LocalId::new(0)
            }
            Expr::Var(name, _) => self.lookup(name),
            Expr::Unary { op, expr, .. } => {
                let src = self.expr(expr);
                let dst = self.fb.new_local();
                let op = match op {
                    UnaryOp::Neg => UnOp::Neg,
                    UnaryOp::Not => UnOp::Not,
                };
                self.fb.push(Inst::Un { op, dst, src });
                dst
            }
            Expr::Binary { op, lhs, rhs, .. } => match op {
                BinaryOp::And => self.short_circuit(lhs, rhs, true),
                BinaryOp::Or => self.short_circuit(lhs, rhs, false),
                _ => {
                    let l = self.expr(lhs);
                    let r = self.expr(rhs);
                    let dst = self.fb.new_local();
                    let op = match op {
                        BinaryOp::Add => BinOp::Add,
                        BinaryOp::Sub => BinOp::Sub,
                        BinaryOp::Mul => BinOp::Mul,
                        BinaryOp::Div => BinOp::Div,
                        BinaryOp::Rem => BinOp::Rem,
                        BinaryOp::BitAnd => BinOp::And,
                        BinaryOp::BitOr => BinOp::Or,
                        BinaryOp::BitXor => BinOp::Xor,
                        BinaryOp::Shl => BinOp::Shl,
                        BinaryOp::Shr => BinOp::Shr,
                        BinaryOp::Eq => BinOp::Eq,
                        BinaryOp::Ne => BinOp::Ne,
                        BinaryOp::Lt => BinOp::Lt,
                        BinaryOp::Le => BinOp::Le,
                        BinaryOp::Gt => BinOp::Gt,
                        BinaryOp::Ge => BinOp::Ge,
                        BinaryOp::And | BinaryOp::Or => unreachable!(),
                    };
                    self.fb.push(Inst::Bin {
                        op,
                        dst,
                        lhs: l,
                        rhs: r,
                    });
                    dst
                }
            },
            Expr::Call { name, args, .. } => {
                let callee = self.functions[name.as_str()];
                let args: Vec<LocalId> = args.iter().map(|a| self.expr(a)).collect();
                let dst = self.fb.new_local();
                self.fb.push(Inst::Call {
                    dst: Some(dst),
                    callee,
                    args,
                    site: CallSiteId::new(0), // assigned by the builder
                });
                dst
            }
            Expr::MethodCall {
                obj, method, args, ..
            } => {
                let o = self.expr(obj);
                let args: Vec<LocalId> = args.iter().map(|a| self.expr(a)).collect();
                let method = self.mb.intern_method(method);
                let dst = self.fb.new_local();
                self.fb.push(Inst::CallMethod {
                    dst: Some(dst),
                    obj: o,
                    method,
                    args,
                    site: CallSiteId::new(0), // assigned by the builder
                });
                dst
            }
            Expr::FieldGet { obj, field, .. } => {
                let o = self.expr(obj);
                let field = self.mb.intern_field(field);
                let dst = self.fb.new_local();
                self.fb.push(Inst::GetField { dst, obj: o, field });
                dst
            }
            Expr::Index { arr, idx, .. } => {
                let a = self.expr(arr);
                let i = self.expr(idx);
                let dst = self.fb.new_local();
                self.fb.push(Inst::ArrayGet {
                    dst,
                    arr: a,
                    idx: i,
                });
                dst
            }
            Expr::New { class, .. } => {
                let class = self.classes[class.as_str()];
                let dst = self.fb.new_local();
                self.fb.push(Inst::New { dst, class });
                dst
            }
            Expr::NewArray { len, .. } => {
                let l = self.expr(len);
                let dst = self.fb.new_local();
                self.fb.push(Inst::NewArray { dst, len: l });
                dst
            }
            Expr::Len { arr, .. } => {
                let a = self.expr(arr);
                let dst = self.fb.new_local();
                self.fb.push(Inst::ArrayLen { dst, arr: a });
                dst
            }
            Expr::Busy { cycles, .. } => {
                self.fb.push(Inst::Busy {
                    cycles: *cycles as u32,
                });
                self.constant(Const::I64(0))
            }
            Expr::Spawn { name, args, .. } => {
                let callee = self.functions[name.as_str()];
                let args: Vec<LocalId> = args.iter().map(|a| self.expr(a)).collect();
                let dst = self.fb.new_local();
                self.fb.push(Inst::Spawn { dst, callee, args });
                dst
            }
            Expr::Join { thread, .. } => {
                let t = self.expr(thread);
                self.fb.push(Inst::Join { thread: t });
                self.constant(Const::I64(0))
            }
        }
    }

    fn constant(&mut self, value: Const) -> LocalId {
        let dst = self.fb.new_local();
        self.fb.push(Inst::Const { dst, value });
        dst
    }

    /// Lowers `lhs && rhs` (`and = true`) or `lhs || rhs` (`and = false`)
    /// with short-circuit control flow.
    fn short_circuit(&mut self, lhs: &Expr, rhs: &Expr, and: bool) -> LocalId {
        let result = self.fb.new_local();
        let l = self.expr(lhs);
        let rhs_b = self.fb.new_block();
        let short_b = self.fb.new_block();
        let merge = self.fb.new_block();
        let (t, f) = if and {
            (rhs_b, short_b)
        } else {
            (short_b, rhs_b)
        };
        self.fb.terminate(Term::Br { cond: l, t, f });
        self.fb.switch_to(rhs_b);
        let r = self.expr(rhs);
        self.fb.push(Inst::Move {
            dst: result,
            src: r,
        });
        self.fb.terminate(Term::Jump(merge));
        self.fb.switch_to(short_b);
        self.fb.push(Inst::Const {
            dst: result,
            value: Const::Bool(!and),
        });
        self.fb.terminate(Term::Jump(merge));
        self.fb.switch_to(merge);
        result
    }
}

#[cfg(test)]
mod tests {
    use crate::compile;
    use isf_ir::{loops, Inst};

    #[test]
    fn entry_yieldpoint_inserted() {
        let m = compile("fn main() { print(1); }").unwrap();
        let f = m.function(m.main());
        assert!(matches!(f.block(f.entry()).insts()[0], Inst::Yield));
    }

    #[test]
    fn while_loop_has_one_backedge_with_yieldpoint() {
        let m = compile("fn main() { var i = 0; while (i < 3) { i = i + 1; } }").unwrap();
        let f = m.function(m.main());
        let be = loops::backedges(f);
        assert_eq!(be.len(), 1);
        let (src, _) = be[0];
        assert!(
            f.block(src).insts().iter().any(Inst::is_yield),
            "backedge source must carry a yieldpoint"
        );
        // Exactly two yieldpoints total: entry + backedge.
        let yields = f.insts().filter(|(_, _, i)| i.is_yield()).count();
        assert_eq!(yields, 2);
    }

    #[test]
    fn continue_routes_through_the_latch() {
        let m = compile(
            "fn main() { var i = 0; while (i < 9) { i = i + 1; if (i % 2 == 0) { continue; } print(i); } }",
        )
        .unwrap();
        let f = m.function(m.main());
        // Still exactly one backedge: both paths go through the latch.
        assert_eq!(loops::backedges(f).len(), 1);
    }

    #[test]
    fn methods_take_implicit_self() {
        let m = compile(
            "class A { field x; method get() { return self.x; } }
             fn main() { var a = new A; a.x = 5; print(a.get()); }",
        )
        .unwrap();
        let id = m.function_by_name("A::get").unwrap();
        assert_eq!(m.function(id).arity(), 1);
    }

    #[test]
    fn nested_loops_have_two_backedges() {
        let m = compile(
            "fn main() { var i = 0; while (i < 2) { var j = 0; while (j < 2) { j = j + 1; } i = i + 1; } }",
        )
        .unwrap();
        assert_eq!(loops::backedges(m.function(m.main())).len(), 2);
    }

    #[test]
    fn produced_cfg_is_reducible() {
        let m = compile(
            "fn f(n) { var s = 0; var i = 0; while (i < n) { if (i % 3 == 0 && i % 5 == 0) { s = s + i; } else { s = s - 1; } i = i + 1; } return s; }
             fn main() { print(f(30)); }",
        )
        .unwrap();
        for (_, f) in m.functions() {
            assert!(loops::is_reducible(f), "{} irreducible", f.name());
        }
    }
}
