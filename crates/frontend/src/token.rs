//! Tokens of the Jive language.

use crate::diag::Pos;
use std::fmt;

/// A token kind, carrying literal/identifier payloads.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// An integer literal.
    Int(i64),
    /// An identifier.
    Ident(String),

    // Keywords.
    /// `class`
    Class,
    /// `field`
    Field,
    /// `method`
    Method,
    /// `fn`
    Fn,
    /// `var`
    Var,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `print`
    Print,
    /// `new`
    New,
    /// `array`
    Array,
    /// `len`
    Len,
    /// `busy`
    Busy,
    /// `spawn`
    Spawn,
    /// `join`
    Join,
    /// `self`
    SelfKw,
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(text: &str) -> Option<TokenKind> {
        Some(match text {
            "class" => TokenKind::Class,
            "field" => TokenKind::Field,
            "method" => TokenKind::Method,
            "fn" => TokenKind::Fn,
            "var" => TokenKind::Var,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "return" => TokenKind::Return,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "print" => TokenKind::Print,
            "new" => TokenKind::New,
            "array" => TokenKind::Array,
            "len" => TokenKind::Len,
            "busy" => TokenKind::Busy,
            "spawn" => TokenKind::Spawn,
            "join" => TokenKind::Join,
            "self" => TokenKind::SelfKw,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "null" => TokenKind::Null,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Eof => write!(f, "end of input"),
            other => {
                let text = match other {
                    TokenKind::Class => "class",
                    TokenKind::Field => "field",
                    TokenKind::Method => "method",
                    TokenKind::Fn => "fn",
                    TokenKind::Var => "var",
                    TokenKind::If => "if",
                    TokenKind::Else => "else",
                    TokenKind::While => "while",
                    TokenKind::Return => "return",
                    TokenKind::Break => "break",
                    TokenKind::Continue => "continue",
                    TokenKind::Print => "print",
                    TokenKind::New => "new",
                    TokenKind::Array => "array",
                    TokenKind::Len => "len",
                    TokenKind::Busy => "busy",
                    TokenKind::Spawn => "spawn",
                    TokenKind::Join => "join",
                    TokenKind::SelfKw => "self",
                    TokenKind::True => "true",
                    TokenKind::False => "false",
                    TokenKind::Null => "null",
                    TokenKind::LParen => "(",
                    TokenKind::RParen => ")",
                    TokenKind::LBrace => "{",
                    TokenKind::RBrace => "}",
                    TokenKind::LBracket => "[",
                    TokenKind::RBracket => "]",
                    TokenKind::Semi => ";",
                    TokenKind::Comma => ",",
                    TokenKind::Dot => ".",
                    TokenKind::Colon => ":",
                    TokenKind::Assign => "=",
                    TokenKind::Plus => "+",
                    TokenKind::Minus => "-",
                    TokenKind::Star => "*",
                    TokenKind::Slash => "/",
                    TokenKind::Percent => "%",
                    TokenKind::Amp => "&",
                    TokenKind::Pipe => "|",
                    TokenKind::Caret => "^",
                    TokenKind::Shl => "<<",
                    TokenKind::Shr => ">>",
                    TokenKind::EqEq => "==",
                    TokenKind::NotEq => "!=",
                    TokenKind::Lt => "<",
                    TokenKind::Le => "<=",
                    TokenKind::Gt => ">",
                    TokenKind::Ge => ">=",
                    TokenKind::AndAnd => "&&",
                    TokenKind::OrOr => "||",
                    TokenKind::Bang => "!",
                    _ => unreachable!(),
                };
                write!(f, "`{text}`")
            }
        }
    }
}

/// A token with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// Where it starts.
    pub pos: Pos,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("while"), Some(TokenKind::While));
        assert_eq!(TokenKind::keyword("whale"), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TokenKind::Int(5).to_string(), "integer `5`");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier `x`");
        assert_eq!(TokenKind::Le.to_string(), "`<=`");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
    }
}
