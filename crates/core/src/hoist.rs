//! Entry hoisting: making room for the method-entry check.
//!
//! `Function::entry()` is block 0 by convention, so the entry check cannot
//! simply be "a new block before the entry". [`hoist_entry`] moves the
//! original entry's contents into a fresh block `o` and leaves block 0 as a
//! shim (`jump o`) whose terminator the transforms later replace with the
//! entry check.

use isf_ir::{BasicBlock, BlockId, Function, Term};

use isf_instr::{InsertAt, Insertion};

/// Moves the contents of the entry block into a fresh block, returning the
/// new home of the original entry. Afterwards block 0 is an empty
/// `jump <returned>` and every edge that pointed at block 0 points at the
/// returned block instead.
pub(crate) fn hoist_entry(f: &mut Function) -> BlockId {
    let o = f.add_block(BasicBlock::jump_to(BlockId::new(0)));
    // Swap contents of block 0 and o.
    let original_entry = std::mem::replace(f.block_mut(BlockId::new(0)), BasicBlock::jump_to(o));
    *f.block_mut(o) = original_entry;
    // Retarget every former edge into the entry (loops whose header was the
    // entry block) — including o's own terminator if it self-looped.
    for b in 0..f.num_blocks() {
        let id = BlockId::new(b as u32);
        if id == BlockId::new(0) {
            continue; // keep the shim's jump to o
        }
        f.block_mut(id).term_mut().retarget(BlockId::new(0), o);
    }
    debug_assert_eq!(f.block(f.entry()).term(), &Term::Jump(o));
    o
}

/// Rewrites plan coordinates after [`hoist_entry`]: points in the old entry
/// block now live in `o`, and `Entry` becomes "start of `o`".
pub(crate) fn remap_after_hoist(insertions: &[Insertion], o: BlockId) -> Vec<Insertion> {
    insertions
        .iter()
        .map(|ins| {
            let at = match ins.at {
                InsertAt::Entry => InsertAt::Before { block: o, index: 0 },
                InsertAt::Before { block, index } if block == BlockId::new(0) => {
                    InsertAt::Before { block: o, index }
                }
                InsertAt::OnEdge { from, to } => InsertAt::OnEdge {
                    from: if from == BlockId::new(0) { o } else { from },
                    to: if to == BlockId::new(0) { o } else { to },
                },
                other => other,
            };
            Insertion { at, op: ins.op }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use isf_ir::{Const, FunctionBuilder, Inst, InstrOp, LocalId};

    #[test]
    fn hoist_moves_contents_and_preserves_semantics_structurally() {
        let mut fb = FunctionBuilder::new("f", 0);
        let l = fb.new_local();
        fb.push(Inst::Const {
            dst: l,
            value: Const::I64(3),
        });
        fb.terminate(Term::Ret(Some(l)));
        let mut f = fb.finish();
        let o = hoist_entry(&mut f);
        assert_eq!(f.block(f.entry()).insts().len(), 0);
        assert_eq!(f.block(f.entry()).term(), &Term::Jump(o));
        assert_eq!(f.block(o).insts().len(), 1);
        assert_eq!(f.block(o).term(), &Term::Ret(Some(l)));
    }

    #[test]
    fn hoist_retargets_loops_to_the_old_entry() {
        // entry is its own loop header: bb0 -> bb0 / exit
        let mut fb = FunctionBuilder::new("f", 1);
        let exit = fb.new_block();
        let entry = fb.current_block();
        fb.terminate(Term::Br {
            cond: LocalId::new(0),
            t: entry,
            f: exit,
        });
        fb.switch_to(exit);
        fb.terminate(Term::Ret(None));
        let mut f = fb.finish();
        let o = hoist_entry(&mut f);
        // The self-loop must now target o, not the shim.
        let Term::Br { t, .. } = f.block(o).term() else {
            panic!("expected branch");
        };
        assert_eq!(*t, o);
        isf_ir::verify::verify_function(&f, None).unwrap();
    }

    #[test]
    fn remap_rewrites_entry_and_block0_coordinates() {
        let o = BlockId::new(5);
        let ins = vec![
            Insertion {
                at: InsertAt::Entry,
                op: InstrOp::CallEdge,
            },
            Insertion {
                at: InsertAt::Before {
                    block: BlockId::new(0),
                    index: 2,
                },
                op: InstrOp::CallEdge,
            },
            Insertion {
                at: InsertAt::OnEdge {
                    from: BlockId::new(0),
                    to: BlockId::new(1),
                },
                op: InstrOp::EdgeCount {
                    from: BlockId::new(0),
                    to: BlockId::new(1),
                },
            },
        ];
        let out = remap_after_hoist(&ins, o);
        assert_eq!(out[0].at, InsertAt::Before { block: o, index: 0 });
        assert_eq!(out[1].at, InsertAt::Before { block: o, index: 2 });
        assert_eq!(
            out[2].at,
            InsertAt::OnEdge {
                from: o,
                to: BlockId::new(1)
            }
        );
        // The op payload keeps the *original* key space.
        assert!(matches!(out[2].op, InstrOp::EdgeCount { from, .. } if from == BlockId::new(0)));
    }
}
