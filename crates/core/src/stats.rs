//! Transformation statistics, the raw material of the space/compile-time
//! columns of Table 2.

use isf_ir::{BlockId, FuncId};

use crate::framework::Strategy;

/// Why a check was inserted. Recorded by the transforms so validators and
/// experiments can reason about check placement without re-deriving it
/// from the (already rewritten) CFG.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CheckKind {
    /// The method-entry check (always block 0).
    Entry,
    /// A check on an original backedge; carries the original
    /// `(source, header)` edge.
    Backedge {
        /// The original backedge source.
        source: BlockId,
        /// The loop header the backedge targets.
        header: BlockId,
    },
    /// A Partial-Duplication compensating check on an edge leaving a
    /// removed top-node (paper §3.1, adjustment 2).
    Compensating,
    /// A No-Duplication guard around one instrumentation point
    /// (paper §3.2).
    Guard,
}

/// Per-function record of what a transform did.
#[derive(Clone, Debug, Default)]
pub struct FunctionStats {
    /// The transformed function.
    pub func: FuncId,
    /// Blocks before the transform.
    pub blocks_before: usize,
    /// Blocks added as duplicated code (including instrumentation-op
    /// blocks attached to it).
    pub blocks_duplicated: usize,
    /// Checks inserted (entry + backedge + compensating + guards).
    pub checks_inserted: usize,
    /// Instrumentation operations placed.
    pub ops_placed: usize,
    /// Every block belonging to the duplicated/instrumented region.
    pub dup_blocks: Vec<BlockId>,
    /// Every block whose terminator is a check, with why it exists.
    pub check_blocks: Vec<(BlockId, CheckKind)>,
}

/// Module-wide transformation statistics.
#[derive(Clone, Debug)]
pub struct TransformStats {
    /// The strategy that produced this module.
    pub strategy: Strategy,
    /// Per-function records, indexed by function.
    pub functions: Vec<FunctionStats>,
    /// Estimated code bytes before the transform.
    pub bytes_before: usize,
    /// Estimated code bytes after the transform.
    pub bytes_after: usize,
}

impl TransformStats {
    /// Total checks inserted across the module.
    pub fn total_checks(&self) -> usize {
        self.functions.iter().map(|f| f.checks_inserted).sum()
    }

    /// Total instrumentation operations placed across the module.
    pub fn total_ops(&self) -> usize {
        self.functions.iter().map(|f| f.ops_placed).sum()
    }

    /// Total duplicated blocks across the module.
    pub fn total_duplicated_blocks(&self) -> usize {
        self.functions.iter().map(|f| f.blocks_duplicated).sum()
    }

    /// Space increase in percent (Table 2's "Maximum Space Increase" is the
    /// absolute `bytes_after - bytes_before`; this is the relative form).
    pub fn space_increase_percent(&self) -> f64 {
        if self.bytes_before == 0 {
            return 0.0;
        }
        (self.bytes_after as f64 / self.bytes_before as f64 - 1.0) * 100.0
    }

    /// Absolute space increase in (estimated) bytes.
    pub fn space_increase_bytes(&self) -> usize {
        self.bytes_after.saturating_sub(self.bytes_before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_functions() {
        let stats = TransformStats {
            strategy: Strategy::FullDuplication,
            functions: vec![
                FunctionStats {
                    checks_inserted: 2,
                    ops_placed: 3,
                    blocks_duplicated: 4,
                    ..FunctionStats::default()
                },
                FunctionStats {
                    checks_inserted: 1,
                    ops_placed: 1,
                    blocks_duplicated: 2,
                    ..FunctionStats::default()
                },
            ],
            bytes_before: 100,
            bytes_after: 195,
        };
        assert_eq!(stats.total_checks(), 3);
        assert_eq!(stats.total_ops(), 4);
        assert_eq!(stats.total_duplicated_blocks(), 6);
        assert!((stats.space_increase_percent() - 95.0).abs() < 1e-9);
        assert_eq!(stats.space_increase_bytes(), 95);
    }
}
