//! Executable statements of the paper's structural guarantees.
//!
//! * **Property 1** (paper §2): the number of checks executed in the
//!   checking code is at most the number of method entries and backedges
//!   executed. Its dynamic form lives on
//!   `isf_exec::Outcome::satisfies_property1`; this module provides the
//!   *static* counterparts that tests assert after every transform.
//! * The duplicated-code region is a DAG (bounded execution per sample).
//! * Instrumentation operations live only in duplicated/guarded code.

use std::collections::HashSet;

use isf_ir::{BlockId, Function, Term};

use crate::stats::FunctionStats;

/// Verifies that the region recorded in `stats.dup_blocks` is acyclic —
/// every duplicated backedge must have been redirected to checking code.
///
/// # Errors
///
/// Returns a description of the first cycle found.
pub fn dup_region_is_dag(f: &Function, stats: &FunctionStats) -> Result<(), String> {
    let region: HashSet<BlockId> = stats.dup_blocks.iter().copied().collect();
    // Iterative DFS with an on-stack set, restricted to the region.
    #[derive(Copy, Clone, PartialEq)]
    enum State {
        Unvisited,
        OnStack,
        Done,
    }
    let mut state = vec![State::Unvisited; f.num_blocks()];
    for &start in &region {
        if state[start.index()] != State::Unvisited {
            continue;
        }
        let mut stack: Vec<(BlockId, Vec<BlockId>, usize)> = Vec::new();
        let succs = |b: BlockId| -> Vec<BlockId> {
            f.block(b)
                .successors()
                .into_iter()
                .filter(|s| region.contains(s))
                .collect()
        };
        state[start.index()] = State::OnStack;
        stack.push((start, succs(start), 0));
        while let Some((b, ss, i)) = stack.last_mut() {
            if *i < ss.len() {
                let s = ss[*i];
                *i += 1;
                match state[s.index()] {
                    State::Unvisited => {
                        state[s.index()] = State::OnStack;
                        let next = succs(s);
                        stack.push((s, next, 0));
                    }
                    State::OnStack => {
                        return Err(format!("duplicated code contains a cycle: {b} -> {s}"));
                    }
                    State::Done => {}
                }
            } else {
                state[b.index()] = State::Done;
                stack.pop();
            }
        }
    }
    Ok(())
}

/// Verifies the Full-Duplication check placement: every check terminator
/// in the function was recorded by the transform as either the method
/// entry check or a backedge check, and its fall-through agrees with the
/// recorded placement. (Dominance on the *transformed* CFG cannot express
/// this — paths through duplicated code bypass the original headers — so
/// the transform's own record is the source of truth and this validator
/// cross-checks it against the CFG.)
///
/// # Errors
///
/// Returns a description of the first misplaced or unrecorded check.
pub fn checks_on_entries_and_backedges(f: &Function, stats: &FunctionStats) -> Result<(), String> {
    use crate::stats::CheckKind;
    let recorded: std::collections::HashMap<BlockId, CheckKind> =
        stats.check_blocks.iter().copied().collect();
    for (id, b) in f.blocks() {
        let Term::Check { cont, .. } = b.term() else {
            continue;
        };
        match recorded.get(&id) {
            None => return Err(format!("check in {id} was not recorded by the transform")),
            Some(CheckKind::Entry) => {
                if id != f.entry() {
                    return Err(format!("entry check recorded at non-entry block {id}"));
                }
            }
            Some(CheckKind::Backedge { header, .. }) => {
                if cont != header {
                    return Err(format!(
                        "backedge check in {id} continues at {cont}, expected header {header}"
                    ));
                }
            }
            Some(CheckKind::Compensating | CheckKind::Guard) => {
                return Err(format!(
                    "full-duplication produced a non-entry/backedge check in {id}"
                ));
            }
        }
    }
    Ok(())
}

/// Verifies that no instrumentation operation lives outside the recorded
/// duplicated/guarded region — the checking code must stay (nearly) as
/// cheap as the original code.
///
/// # Errors
///
/// Returns a description of the first stray operation.
pub fn instrumentation_confined_to_dup_code(
    f: &Function,
    stats: &FunctionStats,
) -> Result<(), String> {
    let region: HashSet<BlockId> = stats.dup_blocks.iter().copied().collect();
    for (id, b) in f.blocks() {
        if b.is_instrumented() && !region.contains(&id) {
            return Err(format!("instrumentation outside duplicated code in {id}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{instrument_module, Options, Strategy};
    use isf_exec::{run, Trigger, VmConfig};
    use isf_instr::{
        BlockCountInstrumentation, CallEdgeInstrumentation, EdgeCountInstrumentation,
        FieldAccessInstrumentation, Instrumentation, ModulePlan,
    };
    use isf_ir::Module;

    const PROGRAM: &str = "
        class Acc { field total; field count; }
        fn mix(a, b) { return a * 31 + b % 97; }
        fn record(acc, v) {
            acc.total = acc.total + v;
            acc.count = acc.count + 1;
            return acc.total;
        }
        fn main() {
            var acc = new Acc;
            var i = 0;
            var h = 7;
            while (i < 200) {
                h = mix(h, i);
                if (h % 3 == 0) {
                    record(acc, h);
                } else {
                    var j = 0;
                    while (j < 3) { acc.total = acc.total + 1; j = j + 1; }
                }
                i = i + 1;
            }
            print(acc.total);
            print(acc.count);
        }";

    fn both_kinds() -> Vec<&'static dyn Instrumentation> {
        vec![&CallEdgeInstrumentation, &FieldAccessInstrumentation]
    }

    fn build(strategy: Strategy) -> (Module, Module, crate::TransformStats) {
        let base = isf_frontend::compile(PROGRAM).unwrap();
        let plan = ModulePlan::build(&base, &both_kinds());
        let (out, stats) = instrument_module(&base, &plan, &Options::new(strategy)).unwrap();
        isf_ir::verify::verify_module(&out).expect("transformed module verifies");
        (base, out, stats)
    }

    fn cfg(trigger: Trigger) -> VmConfig {
        VmConfig {
            trigger,
            ..VmConfig::default()
        }
    }

    #[test]
    fn full_duplication_preserves_semantics_at_every_interval() {
        let (base, out, _) = build(Strategy::FullDuplication);
        let expected = run(&base, &cfg(Trigger::Never)).unwrap().output;
        for trigger in [
            Trigger::Never,
            Trigger::Always,
            Trigger::Counter { interval: 7 },
            Trigger::Counter { interval: 100 },
        ] {
            let o = run(&out, &cfg(trigger)).unwrap();
            assert_eq!(o.output, expected, "wrong output under {trigger:?}");
        }
    }

    #[test]
    fn interval_one_equals_exhaustive_profile() {
        // Paper §4.4: the perfect profile is collected at sample interval 1,
        // "causing all execution to occur in duplicated code". The counts
        // must match exhaustive instrumentation exactly.
        let (base, full, _) = build(Strategy::FullDuplication);
        let plan = ModulePlan::build(&base, &both_kinds());
        let (exh, _) =
            instrument_module(&base, &plan, &Options::new(Strategy::Exhaustive)).unwrap();
        let perfect = run(&exh, &cfg(Trigger::Never)).unwrap().profile;
        let sampled = run(&full, &cfg(Trigger::Always)).unwrap().profile;
        assert_eq!(perfect.call_edges(), sampled.call_edges());
        assert_eq!(perfect.field_accesses(), sampled.field_accesses());
    }

    #[test]
    fn full_duplication_static_shape() {
        let (_, out, stats) = build(Strategy::FullDuplication);
        for (id, f) in out.functions() {
            let fs = &stats.functions[id.index()];
            dup_region_is_dag(f, fs).unwrap();
            checks_on_entries_and_backedges(f, fs).unwrap();
            instrumentation_confined_to_dup_code(f, fs).unwrap();
            // Full duplication: exactly one entry check plus one check per
            // original backedge; nothing else.
            let entry_checks = fs
                .check_blocks
                .iter()
                .filter(|(_, k)| matches!(k, crate::CheckKind::Entry))
                .count();
            let backedge_checks = fs
                .check_blocks
                .iter()
                .filter(|(_, k)| matches!(k, crate::CheckKind::Backedge { .. }))
                .count();
            assert_eq!(entry_checks, 1);
            assert_eq!(fs.checks_inserted, entry_checks + backedge_checks);
        }
        assert!(stats.bytes_after > stats.bytes_before);
    }

    #[test]
    fn full_duplication_satisfies_property1_dynamically() {
        let (_, out, _) = build(Strategy::FullDuplication);
        for interval in [1, 10, 1000] {
            let o = run(&out, &cfg(Trigger::Counter { interval })).unwrap();
            assert!(
                o.satisfies_property1(),
                "interval {interval}: {} checks vs {} entries + {} backedges",
                o.checks_executed,
                o.entries_executed,
                o.backedges_executed
            );
            assert!(o.checks_executed > 0);
        }
    }

    #[test]
    fn sampling_reduces_overhead_monotonically() {
        let (base, out, _) = build(Strategy::FullDuplication);
        let baseline = run(&base, &cfg(Trigger::Never)).unwrap();
        let mut last = u64::MAX;
        for interval in [1, 10, 100, 1000] {
            let o = run(&out, &cfg(Trigger::Counter { interval })).unwrap();
            assert!(o.cycles >= baseline.cycles);
            assert!(
                o.cycles <= last,
                "longer intervals must not cost more cycles"
            );
            last = o.cycles;
        }
    }

    #[test]
    fn sampled_profile_shape_is_accurate() {
        let (base, out, _) = build(Strategy::FullDuplication);
        let plan = ModulePlan::build(&base, &both_kinds());
        let (exh, _) =
            instrument_module(&base, &plan, &Options::new(Strategy::Exhaustive)).unwrap();
        let perfect = run(&exh, &cfg(Trigger::Never)).unwrap().profile;
        let sampled = run(&out, &cfg(Trigger::Counter { interval: 10 }))
            .unwrap()
            .profile;
        let overlap = isf_profile::overlap::field_access_overlap(&perfect, &sampled);
        assert!(overlap > 80.0, "overlap {overlap:.1}% too low");
    }

    #[test]
    fn partial_duplication_smaller_and_correct() {
        let (base, full, full_stats) = build(Strategy::FullDuplication);
        let (_, partial, partial_stats) = build(Strategy::PartialDuplication);
        assert!(
            partial_stats.total_duplicated_blocks() < full_stats.total_duplicated_blocks(),
            "partial ({}) must duplicate fewer blocks than full ({})",
            partial_stats.total_duplicated_blocks(),
            full_stats.total_duplicated_blocks()
        );
        assert!(partial_stats.bytes_after < full_stats.bytes_after);

        let expected = run(&base, &cfg(Trigger::Never)).unwrap().output;
        for trigger in [Trigger::Always, Trigger::Counter { interval: 13 }] {
            let o = run(&partial, &cfg(trigger)).unwrap();
            assert_eq!(o.output, expected);
            assert!(o.satisfies_property1(), "partial keeps Property 1");
        }
        // Instrumentation performed "identically to Full-Duplication"
        // (paper §3.1): perfect profiles agree.
        let p_full = run(&full, &cfg(Trigger::Always)).unwrap().profile;
        let p_part = run(&partial, &cfg(Trigger::Always)).unwrap().profile;
        assert_eq!(p_full.call_edges(), p_part.call_edges());
        assert_eq!(p_full.field_accesses(), p_part.field_accesses());
        for (id, f) in partial.functions() {
            let fs = &partial_stats.functions[id.index()];
            dup_region_is_dag(f, fs).unwrap();
            instrumentation_confined_to_dup_code(f, fs).unwrap();
        }
    }

    #[test]
    fn partial_duplicates_nothing_when_uninstrumented() {
        let base = isf_frontend::compile(PROGRAM).unwrap();
        let plan = ModulePlan::build(&base, &[]);
        let (out, stats) =
            instrument_module(&base, &plan, &Options::new(Strategy::PartialDuplication)).unwrap();
        assert_eq!(stats.total_duplicated_blocks(), 0);
        assert_eq!(stats.total_checks(), 0);
        let o = run(&out, &cfg(Trigger::Always)).unwrap();
        assert_eq!(o.checks_executed, 0);
    }

    #[test]
    fn no_duplication_samples_single_operations() {
        let (base, out, stats) = build(Strategy::NoDuplication);
        let expected = run(&base, &cfg(Trigger::Never)).unwrap().output;
        let o = run(&out, &cfg(Trigger::Counter { interval: 5 })).unwrap();
        assert_eq!(o.output, expected);
        assert!(o.profile.total_field_access_events() > 0);
        // A sample triggers exactly one instrumentation point's ops.
        assert!(stats.total_checks() >= stats.functions.len());
        for (id, f) in out.functions() {
            let fs = &stats.functions[id.index()];
            dup_region_is_dag(f, fs).unwrap();
            instrumentation_confined_to_dup_code(f, fs).unwrap();
        }
    }

    #[test]
    fn no_duplication_can_violate_property1() {
        // Field-access-dense code has more instrumentation points than
        // entries + backedges, so No-Duplication executes more checks.
        let (_, out, _) = build(Strategy::NoDuplication);
        let o = run(&out, &cfg(Trigger::Never)).unwrap();
        assert!(
            !o.satisfies_property1(),
            "{} checks vs {} entries + {} backedges",
            o.checks_executed,
            o.entries_executed,
            o.backedges_executed
        );
    }

    #[test]
    fn no_duplication_interval_one_matches_exhaustive() {
        let (base, out, _) = build(Strategy::NoDuplication);
        let plan = ModulePlan::build(&base, &both_kinds());
        let (exh, _) =
            instrument_module(&base, &plan, &Options::new(Strategy::Exhaustive)).unwrap();
        let perfect = run(&exh, &cfg(Trigger::Never)).unwrap().profile;
        let sampled = run(&out, &cfg(Trigger::Always)).unwrap().profile;
        assert_eq!(perfect.call_edges(), sampled.call_edges());
        assert_eq!(perfect.field_accesses(), sampled.field_accesses());
    }

    #[test]
    fn checks_only_cannot_sample_but_costs_cycles() {
        let base = isf_frontend::compile(PROGRAM).unwrap();
        let plan = ModulePlan::build(&base, &[]);
        let baseline = run(&base, &cfg(Trigger::Never)).unwrap();
        for (entries, backedges) in [(true, false), (false, true), (true, true)] {
            let (out, stats) = instrument_module(
                &base,
                &plan,
                &Options::new(Strategy::ChecksOnly { entries, backedges }),
            )
            .unwrap();
            assert!(stats.total_checks() > 0);
            let o = run(&out, &cfg(Trigger::Always)).unwrap();
            assert_eq!(o.output, baseline.output);
            assert!(o.cycles > baseline.cycles);
            assert!(o.profile.is_empty(), "checks-only never samples anything");
        }
    }

    #[test]
    fn yieldpoint_optimization_reduces_framework_overhead() {
        let base = isf_frontend::compile(PROGRAM).unwrap();
        let plan = ModulePlan::build(&base, &both_kinds());
        let (full, _) =
            instrument_module(&base, &plan, &Options::new(Strategy::FullDuplication)).unwrap();
        let (opt, _) = instrument_module(
            &base,
            &plan,
            &Options::new(Strategy::FullDuplication).with_yieldpoint_optimization(),
        )
        .unwrap();
        let baseline = run(&base, &cfg(Trigger::Never)).unwrap();
        let o_full = run(&full, &cfg(Trigger::Never)).unwrap();
        let o_opt = run(&opt, &cfg(Trigger::Never)).unwrap();
        assert!(o_opt.cycles < o_full.cycles);
        assert!(o_opt.cycles > baseline.cycles);
        // Checking code sheds its yieldpoints entirely when never sampling.
        assert_eq!(o_opt.yields_executed, 0);
        // Accuracy is untouched: perfect profiles agree (paper §4.5).
        let p_full = run(&full, &cfg(Trigger::Always)).unwrap().profile;
        let p_opt = run(&opt, &cfg(Trigger::Always)).unwrap().profile;
        assert_eq!(p_full.field_accesses(), p_opt.field_accesses());
    }

    #[test]
    fn yieldpoint_optimization_requires_full_duplication() {
        let base = isf_frontend::compile("fn main() {}").unwrap();
        let plan = ModulePlan::build(&base, &[]);
        for s in [
            Strategy::PartialDuplication,
            Strategy::NoDuplication,
            Strategy::Exhaustive,
        ] {
            let opts = Options {
                strategy: s,
                yieldpoint_optimization: true,
            };
            assert!(instrument_module(&base, &plan, &opts).is_err());
        }
    }

    #[test]
    fn edge_instrumentation_survives_every_strategy() {
        let base = isf_frontend::compile(PROGRAM).unwrap();
        let plan = ModulePlan::build(
            &base,
            &[
                &EdgeCountInstrumentation as &dyn Instrumentation,
                &BlockCountInstrumentation,
            ],
        );
        let (exh, _) =
            instrument_module(&base, &plan, &Options::new(Strategy::Exhaustive)).unwrap();
        let perfect = run(&exh, &cfg(Trigger::Never)).unwrap().profile;
        for strategy in [
            Strategy::FullDuplication,
            Strategy::PartialDuplication,
            Strategy::NoDuplication,
        ] {
            let (out, _) = instrument_module(&base, &plan, &Options::new(strategy)).unwrap();
            isf_ir::verify::verify_module(&out).unwrap();
            let sampled = run(&out, &cfg(Trigger::Always)).unwrap().profile;
            assert_eq!(
                perfect.edges(),
                sampled.edges(),
                "edge counts differ under {strategy}"
            );
            assert_eq!(perfect.blocks(), sampled.blocks());
        }
    }

    #[test]
    fn trigger_off_keeps_all_execution_in_checking_code() {
        let (_, out, _) = build(Strategy::FullDuplication);
        let o = run(&out, &cfg(Trigger::Never)).unwrap();
        assert_eq!(o.samples_taken, 0);
        assert!(o.profile.is_empty(), "no instrumentation may run unsampled");
    }
}
