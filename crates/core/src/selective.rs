//! Selective instrumentation: only the chosen methods get the framework.
//!
//! The paper assumes this mode throughout: "an adaptive JVM would most
//! likely instrument just a few of the hottest methods, so instrumenting
//! all methods represents a worst case scenario" (§4.1), and "if space is
//! limited, the number of methods instrumented simultaneously can be
//! restricted" (§3). The experiment harness instruments everything to
//! match the paper's worst case; adaptive clients use this entry point.

use std::collections::HashSet;

use isf_instr::ModulePlan;
use isf_ir::{FuncId, Module};

use crate::framework::{instrument_function, InvalidOptions, Options};
use crate::stats::{FunctionStats, TransformStats};

/// Applies the framework to the selected functions only; every other
/// function is left exactly as it was (no duplication, no checks).
///
/// # Errors
///
/// Returns [`InvalidOptions`] for invalid option combinations, as
/// [`crate::instrument_module`] does.
pub fn instrument_module_selective(
    module: &Module,
    plan: &ModulePlan,
    options: &Options,
    selected: &HashSet<FuncId>,
) -> Result<(Module, TransformStats), InvalidOptions> {
    crate::framework::validate(options)?;
    let mut out = module.clone();
    let bytes_before = isf_ir::size::module_bytes(&out);
    let mut functions = Vec::with_capacity(out.num_functions());
    let ids: Vec<_> = out.func_ids().collect();
    for id in ids {
        let mut stats = FunctionStats {
            func: id,
            blocks_before: out.function(id).num_blocks(),
            ..FunctionStats::default()
        };
        if selected.contains(&id) {
            instrument_function(&mut out, id, plan, options, &mut stats);
        }
        functions.push(stats);
    }
    let bytes_after = isf_ir::size::module_bytes(&out);
    debug_assert!(isf_ir::verify::verify_module(&out).is_ok());
    Ok((
        out,
        TransformStats {
            strategy: options.strategy,
            functions,
            bytes_before,
            bytes_after,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{instrument_module, Strategy};
    use isf_exec::{run, Trigger, VmConfig};
    use isf_instr::{CallEdgeInstrumentation, FieldAccessInstrumentation, Instrumentation};

    const PROGRAM: &str = "
        class Acc { field total; }
        fn hot(acc, v) { acc.total = acc.total + v * 3; return acc.total; }
        fn cold(acc) { acc.total = acc.total + 1000; return acc.total; }
        fn main() {
            var acc = new Acc;
            var i = 0;
            while (i < 300) { hot(acc, i); i = i + 1; }
            cold(acc);
            print(acc.total);
        }";

    fn kinds() -> Vec<&'static dyn Instrumentation> {
        vec![&CallEdgeInstrumentation, &FieldAccessInstrumentation]
    }

    fn cfg(trigger: Trigger) -> VmConfig {
        VmConfig {
            trigger,
            ..VmConfig::default()
        }
    }

    #[test]
    fn selective_instruments_only_the_selected_function() {
        let module = isf_frontend::compile(PROGRAM).unwrap();
        let plan = ModulePlan::build(&module, &kinds());
        let hot = module.function_by_name("hot").unwrap();
        let selected: HashSet<FuncId> = [hot].into_iter().collect();
        let (out, stats) = instrument_module_selective(
            &module,
            &plan,
            &Options::new(Strategy::FullDuplication),
            &selected,
        )
        .unwrap();
        isf_ir::verify::verify_module(&out).unwrap();

        // Unselected functions are byte-for-byte untouched.
        for (id, f) in module.functions() {
            if id != hot {
                assert_eq!(f, out.function(id), "{} was modified", f.name());
                assert_eq!(stats.functions[id.index()].checks_inserted, 0);
            }
        }
        assert!(stats.functions[hot.index()].checks_inserted > 0);

        // Semantics preserved; only the hot method's events collected.
        let baseline = run(&module, &cfg(Trigger::Never)).unwrap();
        let o = run(&out, &cfg(Trigger::Always)).unwrap();
        assert_eq!(o.output, baseline.output);
        assert!(o
            .profile
            .call_edges()
            .keys()
            .all(|&(_, _, callee)| callee == hot));
        assert!(o.profile.total_call_edge_events() >= 300);
    }

    #[test]
    fn selective_costs_less_space_and_time_than_full() {
        let module = isf_frontend::compile(PROGRAM).unwrap();
        let plan = ModulePlan::build(&module, &kinds());
        let hot = module.function_by_name("hot").unwrap();
        let selected: HashSet<FuncId> = [hot].into_iter().collect();
        let opts = Options::new(Strategy::FullDuplication);
        let (all, all_stats) = instrument_module(&module, &plan, &opts).unwrap();
        let (sel, sel_stats) =
            instrument_module_selective(&module, &plan, &opts, &selected).unwrap();
        assert!(
            sel_stats.space_increase_bytes() < all_stats.space_increase_bytes() / 2,
            "selective space {} vs full {}",
            sel_stats.space_increase_bytes(),
            all_stats.space_increase_bytes()
        );
        let o_all = run(&all, &cfg(Trigger::Never)).unwrap();
        let o_sel = run(&sel, &cfg(Trigger::Never)).unwrap();
        assert!(o_sel.cycles < o_all.cycles, "fewer checks, fewer cycles");
    }

    #[test]
    fn empty_selection_is_identity() {
        let module = isf_frontend::compile(PROGRAM).unwrap();
        let plan = ModulePlan::build(&module, &kinds());
        let (out, stats) = instrument_module_selective(
            &module,
            &plan,
            &Options::new(Strategy::FullDuplication),
            &HashSet::new(),
        )
        .unwrap();
        assert_eq!(stats.total_checks(), 0);
        assert_eq!(stats.bytes_before, stats.bytes_after);
        let baseline = run(&module, &cfg(Trigger::Never)).unwrap();
        let o = run(&out, &cfg(Trigger::Never)).unwrap();
        assert_eq!(o.cycles, baseline.cycles);
    }
}
