//! The instrumentation-sampling framework of Arnold & Ryder, PLDI 2001 —
//! the paper's primary contribution.
//!
//! Given a module and an instrumentation plan (`isf-instr`), the framework
//! rewrites every function so the planned instrumentation executes only on
//! *samples*, converting 30%–200% exhaustive-profiling overheads into a few
//! percent while keeping the collected profile statistically faithful.
//!
//! # Strategies
//!
//! * [`Strategy::FullDuplication`] (paper §2) — every function body is
//!   duplicated. The original copy becomes the *checking code*: a
//!   counter-based check at the method entry and on every backedge decides
//!   whether to divert into the *duplicated code*, which carries all
//!   instrumentation and whose backedges all return to the checking code,
//!   bounding the work done per sample. Guarantees **Property 1**: checks
//!   executed ≤ method entries + backedges executed.
//! * [`Strategy::PartialDuplication`] (§3.1) — *top-nodes* (no instrumented
//!   node on any path from an entry) and *bottom-nodes* (no instrumented
//!   node reachable) are not duplicated; checks branching to removed
//!   top-nodes are dropped and compensating checks are added on edges from
//!   removed top-nodes into surviving duplicated code. Property 1 still
//!   holds; space drops when instrumentation is sparse.
//! * [`Strategy::NoDuplication`] (§3.2) — nothing is duplicated; every
//!   instrumentation point is individually guarded by a check. Property 1
//!   may be violated (or bettered, when instrumentation is sparser than
//!   backedges — the call-edge case of Table 3).
//! * [`Strategy::Exhaustive`] — no sampling; the Table 1 baseline.
//! * [`Strategy::ChecksOnly`] — entry and/or backedge checks with no
//!   duplicated code; cannot sample, exists to reproduce Table 2's overhead
//!   breakdown columns.
//!
//! The Jalapeño-specific optimization of §4.5 is
//! [`Options::yieldpoint_optimization`]: under Full-Duplication the
//! yieldpoints of the checking code are deleted (the check subsumes them)
//! while the duplicated code keeps its yieldpoints; with a finite sample
//! interval the time between yieldpoints stays bounded.
//!
//! # Example
//!
//! ```
//! use isf_core::{instrument_module, Options, Strategy};
//! use isf_instr::{CallEdgeInstrumentation, ModulePlan};
//! use isf_exec::{run, Trigger, VmConfig};
//!
//! let module = isf_frontend::compile(
//!     "fn hot() { } fn main() { var i = 0; while (i < 500) { hot(); i = i + 1; } }",
//! ).unwrap();
//! let plan = ModulePlan::build(&module, &[&CallEdgeInstrumentation]);
//! let (sampled, stats) = instrument_module(
//!     &module, &plan, &Options::new(Strategy::FullDuplication),
//! ).unwrap();
//! assert!(stats.total_checks() > 0);
//!
//! let outcome = run(&sampled, &VmConfig {
//!     trigger: Trigger::Counter { interval: 10 },
//!     ..VmConfig::default()
//! }).unwrap();
//! assert!(outcome.samples_taken > 0);
//! assert!(outcome.satisfies_property1());
//! # assert!(outcome.profile.total_call_edge_events() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checks_only;
mod duplicate;
mod framework;
mod hoist;
mod no_duplication;
pub mod property;
mod selective;
mod stats;

pub use framework::{instrument_module, InvalidOptions, Options, Strategy};
pub use selective::instrument_module_selective;
pub use stats::{CheckKind, FunctionStats, TransformStats};
