//! The public entry point: strategy selection and module-wide application.

use std::error::Error;
use std::fmt;

use isf_instr::ModulePlan;
use isf_ir::{size, Module};

use crate::checks_only::checks_only_transform;
use crate::duplicate::{duplicate_transform, KeepPolicy};
use crate::no_duplication::no_duplication_transform;
use crate::stats::{FunctionStats, TransformStats};

/// How the planned instrumentation is realized.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Insert every operation directly; no sampling (Table 1 baseline).
    Exhaustive,
    /// Duplicate every block; checks on method entries and backedges
    /// (paper §2). Property 1 guaranteed.
    FullDuplication,
    /// Duplicate only instrumented blocks and the blocks between them
    /// (paper §3.1). Property 1 guaranteed, space reduced.
    PartialDuplication,
    /// No duplication; a check guards every instrumentation point
    /// (paper §3.2). Property 1 not guaranteed.
    NoDuplication,
    /// Entry and/or backedge checks with no duplicated code; cannot sample
    /// (Table 2 breakdown configuration).
    ChecksOnly {
        /// Insert the method-entry check.
        entries: bool,
        /// Insert the backedge checks.
        backedges: bool,
    },
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Strategy::Exhaustive => "exhaustive",
            Strategy::FullDuplication => "full-duplication",
            Strategy::PartialDuplication => "partial-duplication",
            Strategy::NoDuplication => "no-duplication",
            Strategy::ChecksOnly { .. } => "checks-only",
        };
        write!(f, "{name}")
    }
}

/// Framework options.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Options {
    /// The realization strategy.
    pub strategy: Strategy,
    /// The Jalapeño-specific yieldpoint optimization (paper §4.5): remove
    /// the checking code's yieldpoints, keeping the duplicated code's.
    /// Only valid with [`Strategy::FullDuplication`].
    pub yieldpoint_optimization: bool,
}

impl Options {
    /// Options for `strategy` with no extras.
    pub fn new(strategy: Strategy) -> Self {
        Self {
            strategy,
            yieldpoint_optimization: false,
        }
    }

    /// Enables the yieldpoint optimization (Full-Duplication only).
    pub fn with_yieldpoint_optimization(mut self) -> Self {
        self.yieldpoint_optimization = true;
        self
    }
}

/// An invalid option combination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvalidOptions(String);

impl fmt::Display for InvalidOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid framework options: {}", self.0)
    }
}

impl Error for InvalidOptions {}

/// Applies the framework to a module: returns the instrumented module and
/// the transformation statistics (Table 2's space columns come from the
/// latter; its compile-time column from timing this call).
///
/// The input module is not modified; the instrumented module shares its
/// key space, so profiles from both are directly comparable.
///
/// # Errors
///
/// Returns [`InvalidOptions`] if the yieldpoint optimization is requested
/// with a strategy other than Full-Duplication, since only Full-Duplication
/// guarantees yieldpoints remain reachable within a bounded distance.
pub fn instrument_module(
    module: &Module,
    plan: &ModulePlan,
    options: &Options,
) -> Result<(Module, TransformStats), InvalidOptions> {
    validate(options)?;
    let mut out = module.clone();
    let bytes_before = size::module_bytes(&out);
    let mut functions = Vec::with_capacity(out.num_functions());
    let ids: Vec<_> = out.func_ids().collect();
    for id in ids {
        let mut stats = FunctionStats {
            func: id,
            ..FunctionStats::default()
        };
        instrument_function(&mut out, id, plan, options, &mut stats);
        functions.push(stats);
    }
    let bytes_after = size::module_bytes(&out);
    debug_assert!(isf_ir::verify::verify_module(&out).is_ok());
    Ok((
        out,
        TransformStats {
            strategy: options.strategy,
            functions,
            bytes_before,
            bytes_after,
        },
    ))
}

/// Validates an option combination.
pub(crate) fn validate(options: &Options) -> Result<(), InvalidOptions> {
    if options.yieldpoint_optimization && options.strategy != Strategy::FullDuplication {
        return Err(InvalidOptions(format!(
            "the yieldpoint optimization requires full-duplication, got {}",
            options.strategy
        )));
    }
    Ok(())
}

/// Applies the configured transform to a single function of `module`.
pub(crate) fn instrument_function(
    module: &mut Module,
    id: isf_ir::FuncId,
    plan: &ModulePlan,
    options: &Options,
    stats: &mut FunctionStats,
) {
    let insertions = plan.for_function(id);
    match options.strategy {
        Strategy::Exhaustive => {
            stats.blocks_before = module.function(id).num_blocks();
            isf_instr::insert_into_function(module.function_mut(id), insertions);
            stats.ops_placed = insertions.len();
        }
        Strategy::FullDuplication => duplicate_transform(
            module.function_mut(id),
            insertions,
            KeepPolicy::All,
            options.yieldpoint_optimization,
            stats,
        ),
        Strategy::PartialDuplication => duplicate_transform(
            module.function_mut(id),
            insertions,
            KeepPolicy::InstrumentedReachable,
            false,
            stats,
        ),
        Strategy::NoDuplication => {
            no_duplication_transform(module.function_mut(id), insertions, stats)
        }
        Strategy::ChecksOnly { entries, backedges } => {
            checks_only_transform(module.function_mut(id), entries, backedges, stats)
        }
    }
}
