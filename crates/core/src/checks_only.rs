//! Checks without duplication — the measurement configuration behind
//! Table 2's "Backedges" / "Method Entry" overhead-breakdown columns.
//!
//! The paper: "These figures were obtained by inserting the backedge and
//! method entry checks independently, but without actually duplicating any
//! code … This configuration cannot be used to sample instrumentation. It
//! is included solely to provide an approximate breakdown of the direct
//! checking overhead."
//!
//! Each check's sample target equals its fall-through target, so the
//! trigger is still evaluated (and the check's cycles are still paid) but
//! firing changes nothing.

use isf_ir::{loops, BlockId, Function, Term};

use crate::hoist::hoist_entry;
use crate::stats::{CheckKind, FunctionStats};

/// Inserts entry and/or backedge checks with no duplicated code.
pub(crate) fn checks_only_transform(
    f: &mut Function,
    entries: bool,
    backedges: bool,
    stats: &mut FunctionStats,
) {
    stats.blocks_before = f.num_blocks();
    if entries {
        let o = hoist_entry(f);
        f.set_term(BlockId::new(0), Term::Check { sample: o, cont: o });
        stats.checks_inserted += 1;
        stats.check_blocks.push((BlockId::new(0), CheckKind::Entry));
    }
    if backedges {
        for (b, h) in loops::backedges(f) {
            let check = f.split_edge(b, h);
            f.set_term(check, Term::Check { sample: h, cont: h });
            stats.checks_inserted += 1;
            stats.check_blocks.push((
                check,
                CheckKind::Backedge {
                    source: b,
                    header: h,
                },
            ));
        }
    }
}
