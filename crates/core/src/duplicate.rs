//! The code-duplicating transforms: Full-Duplication (paper §2) and
//! Partial-Duplication (§3.1), which differ only in *which* blocks get a
//! duplicated copy.
//!
//! Terminology, following the paper:
//!
//! * **checking code** — the original blocks, plus the inserted check
//!   blocks; executes almost always.
//! * **duplicated code** — the copies carrying the instrumentation;
//!   entered only when a check fires. Every duplicated backedge is
//!   redirected *to the checking code's backedge check*: the duplicated
//!   region is a DAG (bounded work per sample), and when the sample
//!   interval is 1 every check re-fires, so all execution stays in
//!   duplicated code — exactly how the paper collects its perfect
//!   profiles (§4.4).
//! * **duplicated-code DAG** — the original CFG minus its backedges; the
//!   Partial-Duplication analysis runs on it. Its *entries* are the
//!   original entry block and every backedge header (exactly the blocks a
//!   check can jump to).
//!
//! Partial-Duplication keeps a block `b` iff it is instrumented or lies
//! *between* instrumentation: `tainted(b)` (some DAG path from an entry to
//! `b` passes instrumentation first) **and** `reaches_instr(b)` (some
//! instrumentation is still ahead). The complement is precisely the
//! paper's top-nodes (`!tainted`), bottom-nodes (`!reaches_instr`), and
//! DAG-unreachable code. Instrumentation carried by *edges* (edge-count
//! profiling) taints and is reachable like a node, which closes the gap
//! the paper leaves open for instrumentation attached to an edge between
//! two removable nodes. When a backedge carries edge ops but its source
//! was removed as a top-node, the ops fold into the backedge check's
//! sample path — the "two checks can be combined into one" remark under
//! the paper's Figure 5.

use std::collections::{BTreeSet, HashMap};

use isf_instr::{InsertAt, Insertion};
use isf_ir::{loops, BasicBlock, BlockId, Function, Inst, InstrOp, Term};

use crate::hoist::{hoist_entry, remap_after_hoist};
use crate::stats::{CheckKind, FunctionStats};

/// Which blocks receive a duplicated copy.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum KeepPolicy {
    /// Everything reachable: Full-Duplication.
    All,
    /// Only instrumented blocks and blocks between instrumentation:
    /// Partial-Duplication.
    InstrumentedReachable,
}

/// Applies a duplicating transform to `f` in place, recording what
/// happened in `stats`.
///
/// # Panics
///
/// Panics if `f` already contains check terminators (functions are
/// instrumented once).
pub(crate) fn duplicate_transform(
    f: &mut Function,
    insertions: &[Insertion],
    keep: KeepPolicy,
    yieldpoint_opt: bool,
    stats: &mut FunctionStats,
) {
    assert!(
        f.blocks().all(|(_, b)| !b.term().is_check()),
        "function already contains sampling checks"
    );
    stats.blocks_before = f.num_blocks();

    let o = hoist_entry(f);
    let insertions = remap_after_hoist(insertions, o);
    let backedge_list = loops::backedges(f);
    let backedges: BTreeSet<(BlockId, BlockId)> = backedge_list.iter().copied().collect();
    let n = f.num_blocks();

    // Index the plan: per-block instruction-point ops and per-edge ops.
    let mut block_ops: Vec<Vec<(usize, InstrOp)>> = vec![Vec::new(); n];
    let mut edge_ops: HashMap<(BlockId, BlockId), Vec<InstrOp>> = HashMap::new();
    for ins in &insertions {
        match ins.at {
            InsertAt::Before { block, index } => block_ops[block.index()].push((index, ins.op)),
            InsertAt::OnEdge { from, to } => edge_ops.entry((from, to)).or_default().push(ins.op),
            InsertAt::Entry => unreachable!("remap_after_hoist eliminates Entry"),
        }
    }

    // --- Analysis on the duplicated-code DAG (original edges minus
    // backedges). -----------------------------------------------------
    let instr: Vec<bool> = (0..n).map(|b| !block_ops[b].is_empty()).collect();
    let dag_edges: Vec<(BlockId, BlockId)> = (1..n as u32) // skip the shim
        .map(BlockId::new)
        .flat_map(|u| f.block(u).successors().into_iter().map(move |v| (u, v)))
        .filter(|e| !backedges.contains(e))
        .collect();
    let entries: BTreeSet<BlockId> = std::iter::once(o)
        .chain(backedge_list.iter().map(|&(_, h)| h))
        .collect();

    // Forward fixpoints: DAG reachability from the entries, and taint
    // ("instrumentation seen on some path before this block").
    let mut reachable = vec![false; n];
    for &e in &entries {
        reachable[e.index()] = true;
    }
    let mut tainted = vec![false; n];
    let mut changed = true;
    while changed {
        changed = false;
        for &(u, v) in &dag_edges {
            if !reachable[u.index()] {
                continue;
            }
            if !reachable[v.index()] {
                reachable[v.index()] = true;
                changed = true;
            }
            let t = tainted[u.index()] || instr[u.index()] || edge_ops.contains_key(&(u, v));
            if t && !tainted[v.index()] {
                tainted[v.index()] = true;
                changed = true;
            }
        }
    }
    // Backward fixpoint: "instrumentation still ahead of this block".
    let mut reaches_instr = instr.clone();
    changed = true;
    while changed {
        changed = false;
        for &(u, v) in &dag_edges {
            let r = reaches_instr[v.index()] || edge_ops.contains_key(&(u, v));
            if r && !reaches_instr[u.index()] {
                reaches_instr[u.index()] = true;
                changed = true;
            }
        }
    }

    let kept: Vec<bool> = (0..n)
        .map(|b| {
            reachable[b]
                && match keep {
                    KeepPolicy::All => true,
                    KeepPolicy::InstrumentedReachable => {
                        instr[b] || (tainted[b] && reaches_instr[b])
                    }
                }
        })
        .collect();

    // --- Physical construction. ---------------------------------------
    // Snapshot the original bodies: edge splitting below rewrites
    // checking-code terminators, but duplicates are built from the
    // originals.
    let original: Vec<BasicBlock> = (0..n as u32)
        .map(|b| f.block(BlockId::new(b)).clone())
        .collect();

    // Backedge checks are created first (as placeholder splits) because
    // duplicated backedges land *on the check*, keeping interval-1 runs
    // entirely inside duplicated code.
    let mut backedge_check: HashMap<(BlockId, BlockId), BlockId> = HashMap::new();
    for &(b, h) in &backedge_list {
        let orphan_ops = !kept[b.index()] && reachable[b.index()] && edge_ops.contains_key(&(b, h));
        if kept[h.index()] || orphan_ops {
            let check = f.split_edge(b, h);
            backedge_check.insert((b, h), check);
        }
    }

    // Allocate ids for all duplicated blocks so terminators can reference
    // them.
    let mut dup_map: Vec<Option<BlockId>> = vec![None; n];
    for b in 0..n {
        if kept[b] {
            let id = f.add_block(BasicBlock::jump_to(o)); // placeholder
            dup_map[b] = Some(id);
            stats.dup_blocks.push(id);
        }
    }
    stats.blocks_duplicated = kept.iter().filter(|&&k| k).count();

    // Build each duplicated body: weave in the planned instruction-point
    // ops, then remap successors (backedges return to their checking-code
    // check, removed targets fall back to checking code, edge ops get an
    // op block on the way).
    let mut op_block_cache: HashMap<(BlockId, BlockId), BlockId> = HashMap::new();
    for b in 0..n {
        let Some(dup_id) = dup_map[b] else { continue };
        let src = BlockId::new(b as u32);
        let src_block = &original[b];

        let mut insts = src_block.insts().to_vec();
        let mut points = block_ops[b].clone();
        points.sort_by_key(|&(i, _)| i);
        for &(index, op) in points.iter().rev() {
            insts.insert(index, Inst::Instr(op));
        }
        stats.ops_placed += points.len();

        // Precompute mapped targets (may allocate op blocks).
        let succs = src_block.successors();
        let mut mapped = Vec::with_capacity(succs.len());
        for &t in &succs {
            let base = if backedges.contains(&(src, t)) {
                // Land on the backedge check if one exists, otherwise go
                // straight back to the checking-code header.
                backedge_check.get(&(src, t)).copied().unwrap_or(t)
            } else if kept[t.index()] {
                dup_map[t.index()].expect("kept blocks have duplicates")
            } else {
                t
            };
            let target = match edge_ops.get(&(src, t)) {
                Some(ops) => *op_block_cache.entry((src, t)).or_insert_with(|| {
                    let body: Vec<Inst> = ops.iter().map(|&op| Inst::Instr(op)).collect();
                    stats.ops_placed += body.len();
                    let ob = f.add_block(BasicBlock::new(body, Term::Jump(base)));
                    stats.dup_blocks.push(ob);
                    ob
                }),
                None => base,
            };
            mapped.push(target);
        }
        let new_term = rebuild_term(src_block.term(), &mapped);
        *f.block_mut(dup_id) = BasicBlock::new(insts, new_term);
    }

    // Entry check: block 0 is the shim; arm it if the entry's duplicate
    // survived (it always does under Full-Duplication).
    if let Some(dup_o) = dup_map[o.index()] {
        f.set_term(
            BlockId::new(0),
            Term::Check {
                sample: dup_o,
                cont: o,
            },
        );
        stats.checks_inserted += 1;
        stats.check_blocks.push((BlockId::new(0), CheckKind::Entry));
    }

    // Arm the backedge checks (in deterministic backedge order).
    for &(b, h) in &backedge_list {
        let Some(&check) = backedge_check.get(&(b, h)) else {
            continue;
        };
        let base = dup_map[h.index()].unwrap_or(h);
        let orphan_ops = (!kept[b.index()]).then(|| edge_ops.get(&(b, h))).flatten();
        let sample = match orphan_ops {
            Some(ops) => {
                let body: Vec<Inst> = ops.iter().map(|&op| Inst::Instr(op)).collect();
                stats.ops_placed += body.len();
                let ob = f.add_block(BasicBlock::new(body, Term::Jump(base)));
                stats.dup_blocks.push(ob);
                ob
            }
            None => base,
        };
        f.set_term(check, Term::Check { sample, cont: h });
        stats.checks_inserted += 1;
        stats.check_blocks.push((
            check,
            CheckKind::Backedge {
                source: b,
                header: h,
            },
        ));
    }

    // Compensating checks for removed top-nodes (paper §3.1, adjustment 2):
    // an edge from a removed top-node into surviving duplicated code — or
    // one carrying edge ops — gets a check on the corresponding
    // checking-code edge.
    for &(u, v) in &dag_edges {
        if kept[u.index()] || !reachable[u.index()] {
            continue;
        }
        let has_ops = edge_ops.contains_key(&(u, v));
        if !kept[v.index()] && !has_ops {
            continue;
        }
        debug_assert!(
            !tainted[u.index()],
            "a removed node with a surviving duplicated successor must be a top-node"
        );
        let check = f.split_edge(u, v);
        let base = dup_map[v.index()].unwrap_or(v);
        let sample = if has_ops {
            let body: Vec<Inst> = edge_ops[&(u, v)]
                .iter()
                .map(|&op| Inst::Instr(op))
                .collect();
            stats.ops_placed += body.len();
            let ob = f.add_block(BasicBlock::new(body, Term::Jump(base)));
            stats.dup_blocks.push(ob);
            ob
        } else {
            base
        };
        f.set_term(check, Term::Check { sample, cont: v });
        stats.checks_inserted += 1;
        stats.check_blocks.push((check, CheckKind::Compensating));
    }

    // Jalapeño-specific yieldpoint optimization (paper §4.5): the checking
    // code sheds its yieldpoints; the duplicated code keeps them, and the
    // finite sample interval bounds the distance between yieldpoints.
    if yieldpoint_opt {
        for b in 0..n {
            f.block_mut(BlockId::new(b as u32))
                .insts_mut()
                .retain(|i| !i.is_yield());
        }
    }
}

/// Rebuilds a terminator with its successor slots replaced positionally.
fn rebuild_term(term: &Term, mapped: &[BlockId]) -> Term {
    match term {
        Term::Jump(_) => Term::Jump(mapped[0]),
        Term::Br { cond, .. } => Term::Br {
            cond: *cond,
            t: mapped[0],
            f: mapped[1],
        },
        Term::Ret(v) => Term::Ret(*v),
        Term::Check { .. } => unreachable!("input functions contain no checks"),
    }
}
