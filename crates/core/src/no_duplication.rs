//! The No-Duplication variation (paper §3.2): no code is duplicated;
//! every instrumentation point is individually guarded by a check
//! (paper Figure 6).

use std::collections::HashMap;

use isf_instr::{InsertAt, Insertion};
use isf_ir::{BasicBlock, BlockId, Function, Inst, Term};

use crate::stats::{CheckKind, FunctionStats};

/// Applies No-Duplication to `f` in place.
///
/// Operations planned at the same instruction point share one check (they
/// guard one instrumented instruction); operations on an edge get a check
/// in a split block on that edge.
///
/// # Panics
///
/// Panics if `f` already contains check terminators.
pub(crate) fn no_duplication_transform(
    f: &mut Function,
    insertions: &[Insertion],
    stats: &mut FunctionStats,
) {
    assert!(
        f.blocks().all(|(_, b)| !b.term().is_check()),
        "function already contains sampling checks"
    );
    stats.blocks_before = f.num_blocks();

    // Group by program point.
    let mut at_inst: HashMap<BlockId, Vec<(usize, Vec<isf_ir::InstrOp>)>> = HashMap::new();
    let mut at_edge: Vec<((BlockId, BlockId), Vec<isf_ir::InstrOp>)> = Vec::new();
    for ins in insertions {
        match ins.at {
            InsertAt::Entry => push_point(at_inst.entry(f.entry()).or_default(), 0, ins.op),
            InsertAt::Before { block, index } => {
                push_point(at_inst.entry(block).or_default(), index, ins.op)
            }
            InsertAt::OnEdge { from, to } => {
                if let Some((_, ops)) = at_edge.iter_mut().find(|(e, _)| *e == (from, to)) {
                    ops.push(ins.op);
                } else {
                    at_edge.push(((from, to), vec![ins.op]));
                }
            }
        }
    }

    // Edge points first: block splitting below moves terminators into rest
    // blocks, which would invalidate edge coordinates.
    for ((from, to), ops) in at_edge {
        let check = f.split_edge(from, to);
        let body: Vec<Inst> = ops.iter().map(|&op| Inst::Instr(op)).collect();
        stats.ops_placed += body.len();
        let sample = f.add_block(BasicBlock::new(body, Term::Jump(to)));
        stats.dup_blocks.push(sample);
        f.set_term(check, Term::Check { sample, cont: to });
        stats.checks_inserted += 1;
        stats.check_blocks.push((check, CheckKind::Guard));
    }

    // Instruction points: split the block before the instrumented
    // instruction; the check either falls through to the rest of the block
    // or detours through a block holding the guarded operations.
    let mut at_inst: Vec<_> = at_inst.into_iter().collect();
    at_inst.sort_by_key(|(b, _)| *b);
    for (block, mut points) in at_inst {
        // Larger indices first, so earlier indices stay valid.
        points.sort_by_key(|&(i, _)| std::cmp::Reverse(i));
        for (index, ops) in points {
            assert!(
                index <= f.block(block).insts().len(),
                "insertion index out of range"
            );
            // Move insts[index..] and the terminator into a rest block.
            let rest_insts = f.block_mut(block).insts_mut().split_off(index);
            let rest_term = f.block_mut(block).set_term(Term::Ret(None)); // placeholder
            let rest = f.add_block(BasicBlock::new(rest_insts, rest_term));
            let body: Vec<Inst> = ops.iter().map(|&op| Inst::Instr(op)).collect();
            stats.ops_placed += body.len();
            let sample = f.add_block(BasicBlock::new(body, Term::Jump(rest)));
            stats.dup_blocks.push(sample);
            f.set_term(block, Term::Check { sample, cont: rest });
            stats.checks_inserted += 1;
            stats.check_blocks.push((block, CheckKind::Guard));
        }
    }
}

fn push_point(points: &mut Vec<(usize, Vec<isf_ir::InstrOp>)>, index: usize, op: isf_ir::InstrOp) {
    if let Some((_, ops)) = points.iter_mut().find(|(i, _)| *i == index) {
        ops.push(op);
    } else {
        points.push((index, vec![op]));
    }
}
