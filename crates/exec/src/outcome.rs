//! Execution results and event counters.

use isf_profile::ProfileData;

/// Everything a run produces: program output, the collected profile, and
/// the event counters the experiments are built from.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Outcome {
    /// Values printed by the program, in order (used to prove semantic
    /// equivalence of transformed code).
    pub output: Vec<i64>,
    /// Total simulated cycles — the "running time" of the reproduced
    /// tables.
    pub cycles: u64,
    /// Total instructions interpreted (terminators included).
    pub instructions: u64,
    /// Profiling events recorded by instrumentation operations.
    pub profile: ProfileData,
    /// Number of [`isf_ir::Term::Check`] terminators executed.
    pub checks_executed: u64,
    /// Number of checks whose sample condition was true.
    pub samples_taken: u64,
    /// Number of yieldpoints executed.
    pub yields_executed: u64,
    /// Number of method entries executed (calls + method calls + spawned
    /// thread entries + `main`).
    pub entries_executed: u64,
    /// Number of CFG backedges traversed (computed against the executed,
    /// i.e. possibly transformed, module).
    pub backedges_executed: u64,
    /// Number of thread switches performed by the scheduler.
    pub thread_switches: u64,
}

/// Error of [`Outcome::checked_overhead_vs`]: the baseline ran for zero
/// cycles, so a relative overhead is undefined.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ZeroCycleBaseline;

impl std::fmt::Display for ZeroCycleBaseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "baseline ran for zero cycles; overhead is undefined")
    }
}

impl std::error::Error for ZeroCycleBaseline {}

impl Outcome {
    /// Overhead of this run relative to `baseline`, in percent:
    /// `(cycles / baseline.cycles - 1) * 100`.
    ///
    /// A zero-cycle baseline saturates instead of panicking: the result is
    /// `f64::INFINITY` when this run spent any cycles, and `0.0` when both
    /// runs spent none. Use [`Outcome::checked_overhead_vs`] to surface the
    /// degenerate baseline as an error instead.
    pub fn overhead_vs(&self, baseline: &Outcome) -> f64 {
        match self.checked_overhead_vs(baseline) {
            Ok(pct) => pct,
            Err(ZeroCycleBaseline) => {
                if self.cycles == 0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            }
        }
    }

    /// [`Outcome::overhead_vs`] that reports a zero-cycle baseline as an
    /// error instead of a saturated value.
    ///
    /// # Errors
    ///
    /// Returns [`ZeroCycleBaseline`] if `baseline.cycles == 0`.
    pub fn checked_overhead_vs(&self, baseline: &Outcome) -> Result<f64, ZeroCycleBaseline> {
        if baseline.cycles == 0 {
            return Err(ZeroCycleBaseline);
        }
        Ok((self.cycles as f64 / baseline.cycles as f64 - 1.0) * 100.0)
    }

    /// Property 1 of the paper, evaluated dynamically: the number of checks
    /// executed is at most the number of method entries plus backedges
    /// executed. Holds for Full- and Partial-Duplication; No-Duplication
    /// may violate it.
    ///
    /// This self-contained form counts backedges against the *transformed*
    /// CFG, whose dominance structure can under-count logical loop
    /// iterations when checks fire (duplicated paths bypass the original
    /// headers). Prefer [`Outcome::satisfies_property1_vs`] with a run of
    /// the uninstrumented module when a baseline is available.
    pub fn satisfies_property1(&self) -> bool {
        self.checks_executed <= self.entries_executed + self.backedges_executed
    }

    /// Property 1 against a baseline run of the *original* module: the
    /// instrumented run may execute at most one check per method entry and
    /// per logical loop iteration of the same execution. Both runs must be
    /// of semantically equivalent programs on the same input.
    pub fn satisfies_property1_vs(&self, baseline: &Outcome) -> bool {
        self.checks_executed <= baseline.entries_executed + baseline.backedges_executed
    }

    /// Equality over the fields a schedule-commutative program keeps
    /// invariant across thread schedules: output, the aggregated profile,
    /// and the check/sample/yield/entry/backedge counters.
    ///
    /// Three fields are deliberately excluded as genuinely
    /// schedule-dependent:
    ///
    /// * `thread_switches` — a schedule that bounces between threads
    ///   switches more often than one that runs each to completion.
    /// * `cycles` and `instructions` — a `Join` that finds its target
    ///   unfinished blocks *without advancing* and re-executes on wake, so
    ///   each join that happened to block charges one extra dispatch
    ///   compared to a schedule where the target was already done.
    ///
    /// Everything compared is schedule-independent for programs whose
    /// threads only combine through commutative updates: switches happen
    /// only at yieldpoints (never mid-statement), so per-thread event
    /// streams — prints, profile events, checks, yields, entries,
    /// backedges — are fixed regardless of interleaving. Per-thread
    /// sampling triggers ([`crate::Trigger::CounterPerThread`]) preserve
    /// this (each thread's fires depend only on its own check count); a
    /// run sampled by the *global* counter or timer does not, because
    /// which thread's duplicated code a sample executes depends on the
    /// interleaving.
    pub fn schedule_invariant_eq(&self, other: &Outcome) -> bool {
        self.output == other.output
            && self.profile == other.profile
            && self.checks_executed == other.checks_executed
            && self.samples_taken == other.samples_taken
            && self.yields_executed == other.yields_executed
            && self.entries_executed == other.entries_executed
            && self.backedges_executed == other.backedges_executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_percentage() {
        let base = Outcome {
            cycles: 1000,
            ..Outcome::default()
        };
        let run = Outcome {
            cycles: 1060,
            ..Outcome::default()
        };
        assert!((run.overhead_vs(&base) - 6.0).abs() < 1e-9);
        assert!((base.overhead_vs(&base)).abs() < 1e-9);
    }

    #[test]
    fn zero_cycle_baseline_saturates_and_errors() {
        let zero = Outcome::default();
        let run = Outcome {
            cycles: 10,
            ..Outcome::default()
        };
        assert_eq!(run.overhead_vs(&zero), f64::INFINITY);
        assert_eq!(zero.overhead_vs(&zero), 0.0);
        assert_eq!(run.checked_overhead_vs(&zero), Err(ZeroCycleBaseline));
        assert!(zero.checked_overhead_vs(&run).is_ok());
        assert!(!ZeroCycleBaseline.to_string().is_empty());
    }

    #[test]
    fn property1_boundary() {
        let mut o = Outcome {
            checks_executed: 10,
            entries_executed: 4,
            backedges_executed: 6,
            ..Outcome::default()
        };
        assert!(o.satisfies_property1());
        o.checks_executed = 11;
        assert!(!o.satisfies_property1());
    }

    #[test]
    fn schedule_invariant_eq_ignores_schedule_dependent_fields() {
        let a = Outcome {
            output: vec![7],
            cycles: 100,
            instructions: 40,
            checks_executed: 12,
            thread_switches: 3,
            ..Outcome::default()
        };
        let mut b = a.clone();
        // Schedule-dependent drift: switch count, plus one blocked-join
        // re-dispatch worth of cycles and instructions.
        b.thread_switches = 9;
        b.cycles = 101;
        b.instructions = 41;
        assert_ne!(a, b);
        assert!(a.schedule_invariant_eq(&b));
        b.checks_executed = 13;
        assert!(!a.schedule_invariant_eq(&b));
        b.checks_executed = 12;
        b.output = vec![8];
        assert!(!a.schedule_invariant_eq(&b));
    }

    #[test]
    fn property1_vs_baseline() {
        let baseline = Outcome {
            entries_executed: 5,
            backedges_executed: 20,
            ..Outcome::default()
        };
        let mut run = Outcome {
            checks_executed: 25,
            ..Outcome::default()
        };
        assert!(run.satisfies_property1_vs(&baseline));
        run.checks_executed = 26;
        assert!(!run.satisfies_property1_vs(&baseline));
    }
}
