//! Pre-decoded modules: the one-time `prepare` pass that flattens a
//! [`Module`] into the dense form the interpreter's hot loop executes.
//!
//! Preparation does, once per (module, cost model):
//!
//! * **Arena flattening.** Each function's blocks are laid out back to back
//!   in one contiguous [`Op`] vector, with the terminator inlined as the
//!   block's final op. The hot loop fetches `ops[ip]` — no block lookup,
//!   no separate instruction/terminator fetch.
//! * **Target pre-resolution.** Branch targets are absolute arena indices,
//!   not [`BlockId`]s resolved through the function on every transfer.
//! * **Cost pre-folding.** Every op carries its cycle cost, folded from
//!   the [`CostModel`] at prepare time; the hot loop never re-derives a
//!   cost from instruction shape.
//! * **Backedge pre-classification.** The per-function `loops::backedges`
//!   analysis runs once here and is baked into per-edge flags on each
//!   terminator, replacing the per-run analysis and per-transfer
//!   `HashSet<(BlockId, BlockId)>` probes of the naive interpreter.
//! * **Operand pre-resolution.** Constants become runtime [`Value`]s,
//!   `new` carries its class's field count, and Ball–Larus path constants
//!   are widened to `i64` up front.
//! * **Dense dispatch tables.** Field offsets and method implementations
//!   are resolved for every (class, symbol) pair into flat arrays, so a
//!   field access or a virtual call in the hot loop is one indexed load
//!   instead of a per-access hash-map probe through the class table.
//!
//! The pass is observable through [`preparations`], a process-wide counter
//! the harness asserts against to prove each experiment cell prepares its
//! module exactly once, however many times it re-runs it.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

use isf_ir::{
    loops, BinOp, BlockId, CallSiteId, ClassId, Const, FieldSym, FuncId, Function, Inst, InstrOp,
    LocalId, MethodSym, Module, Term, UnOp,
};

use crate::cost::CostModel;
use crate::profile::{FuseGuidance, OPCODE_NAMES};
use crate::value::Value;

/// Process-wide count of [`PreparedModule::prepare`] calls, used by the
/// harness to assert preparation happens once per experiment cell.
static PREPARATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread preparation count. An experiment cell runs entirely on
    /// one thread, so this gives a race-free once-per-cell assertion even
    /// while other threads prepare their own cells concurrently.
    static THREAD_PREPARATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Number of `prepare` passes executed by this process so far.
pub fn preparations() -> u64 {
    PREPARATIONS.load(Ordering::Relaxed)
}

/// Number of `prepare` passes executed by the *calling thread*. Immune to
/// concurrent preparations on other threads, unlike [`preparations`].
pub fn thread_preparations() -> u64 {
    THREAD_PREPARATIONS.with(|c| c.get())
}

/// Whether preparation runs the superinstruction fusion and static slot
/// resolution passes.
///
/// Fusion is observably equivalent: fused runs produce byte-identical
/// output, cycle counts, traps and profiles — only wall-clock time
/// changes. [`FuseMode::Off`] keeps the unfused pipeline alive as an
/// escape hatch and differential-testing baseline.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FuseMode {
    /// Decode only, exactly the pre-fusion pipeline.
    Off,
    /// Decode, then peephole-fuse superinstructions and statically resolve
    /// field slots and method targets (the default).
    Fuse,
    /// [`FuseMode::Fuse`] plus a profile-guided pass: a per-block dynamic
    /// program over the warmup weights in the carried [`FuseGuidance`]
    /// re-partitions each block so that (a) catalogue templates apply
    /// where the greedy left-to-right pass consumed their prefix for a
    /// lesser match, and (b) hot sequences the fixed catalogue cannot
    /// express (call-adjacent moves, getfield chains feeding calls,
    /// arg-marshalling runs) fuse into the generalized
    /// [`OpKind::Guided`] template. Observably identical to `Off`/`Fuse`:
    /// guided groups charge per component, so cycles, traps and profiles
    /// stay on the unfused schedule. Boxed: the weight table is ~264
    /// bytes, and the common `Off`/`Fuse` values should stay
    /// pointer-sized.
    Guided(Box<FuseGuidance>),
}

/// Process-wide fuse-mode override: 0 = unset (consult `ISF_FUSE`),
/// 1 = off, 2 = fuse.
static FUSE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Overrides the fuse mode for subsequent [`PreparedModule::prepare`]
/// calls; `None` restores the default (the `ISF_FUSE` environment
/// variable, on unless set to `0`/`off`/`false`). The process-wide
/// override cannot carry a guidance payload, so [`FuseMode::Guided`] maps
/// to [`FuseMode::Fuse`] here; guided preparation is requested per call
/// via [`PreparedModule::prepare_with`].
pub fn set_fuse_mode(mode: Option<FuseMode>) {
    let v = match mode {
        None => 0,
        Some(FuseMode::Off) => 1,
        Some(FuseMode::Fuse) | Some(FuseMode::Guided(_)) => 2,
    };
    FUSE_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The fuse mode [`PreparedModule::prepare`] currently resolves to: the
/// [`set_fuse_mode`] override if one is set, else the `ISF_FUSE`
/// environment variable (read once per process), else [`FuseMode::Fuse`].
pub fn fuse_mode() -> FuseMode {
    match FUSE_OVERRIDE.load(Ordering::Relaxed) {
        1 => FuseMode::Off,
        2 => FuseMode::Fuse,
        _ => env_fuse_mode(),
    }
}

fn env_fuse_mode() -> FuseMode {
    static ENV: OnceLock<FuseMode> = OnceLock::new();
    ENV.get_or_init(|| match std::env::var("ISF_FUSE").ok().as_deref() {
        Some("0") | Some("off") | Some("false") => FuseMode::Off,
        _ => FuseMode::Fuse,
    })
    .clone()
}

/// One decoded operation: its pre-folded cycle cost plus the decoded form.
#[derive(Clone, Debug)]
pub(crate) struct Op {
    /// Cycles charged when this op executes (the check's sample-switch
    /// surcharge is the one cost still applied conditionally at runtime).
    /// For a fused superinstruction this is the summed cost of the whole
    /// group (except the branch half of `BrCmp`/`BrCmpImm`, charged by the
    /// arm after the compare so budget traps land exactly where the
    /// unfused sequence would put them).
    pub(crate) cost: u64,
    /// Source instructions this op accounts for: 1 for a plain op, the
    /// group size for a fused superinstruction. Sequential flow advances
    /// `ip` by this amount, skipping the inert [`OpKind::Gap`] fillers.
    pub(crate) width: u32,
    pub(crate) kind: OpKind,
}

/// The decoded instruction set the hot loop dispatches on. Instructions
/// and terminators share one enum so a block is a flat run of ops ending
/// in a control transfer.
#[derive(Clone, Debug)]
pub(crate) enum OpKind {
    /// `dst = value`, with the constant already converted to a [`Value`].
    Const {
        dst: LocalId,
        value: Value,
    },
    Move {
        dst: LocalId,
        src: LocalId,
    },
    Un {
        op: UnOp,
        dst: LocalId,
        src: LocalId,
    },
    Bin {
        op: BinOp,
        dst: LocalId,
        lhs: LocalId,
        rhs: LocalId,
    },
    /// Allocation with the field count pre-resolved from the class table.
    New {
        dst: LocalId,
        class: ClassId,
        num_fields: usize,
    },
    GetField {
        dst: LocalId,
        obj: LocalId,
        field: FieldSym,
    },
    SetField {
        obj: LocalId,
        field: FieldSym,
        src: LocalId,
    },
    /// `GetField` whose slot is identical in every class of the module,
    /// resolved at prepare time: no per-access dispatch-table probe, and
    /// `NoSuchField` is statically impossible.
    GetFieldStatic {
        dst: LocalId,
        obj: LocalId,
        offset: u32,
    },
    /// `SetField` with a statically uniform slot.
    SetFieldStatic {
        obj: LocalId,
        offset: u32,
        src: LocalId,
    },
    NewArray {
        dst: LocalId,
        len: LocalId,
    },
    ArrayGet {
        dst: LocalId,
        arr: LocalId,
        idx: LocalId,
    },
    ArraySet {
        arr: LocalId,
        idx: LocalId,
        src: LocalId,
    },
    ArrayLen {
        dst: LocalId,
        arr: LocalId,
    },
    Call {
        dst: Option<LocalId>,
        callee: FuncId,
        args: Box<[LocalId]>,
        site: CallSiteId,
    },
    CallMethod {
        dst: Option<LocalId>,
        obj: LocalId,
        method: MethodSym,
        args: Box<[LocalId]>,
        site: CallSiteId,
    },
    /// `CallMethod` whose method symbol resolves to one implementation in
    /// every class of the module (and whose arity was checked at prepare
    /// time): the vtable probe and arity check leave the hot loop. The
    /// receiver is still null/type-checked at runtime.
    CallMethodStatic {
        dst: Option<LocalId>,
        obj: LocalId,
        callee: FuncId,
        args: Box<[LocalId]>,
        site: CallSiteId,
    },
    Print {
        src: LocalId,
    },
    Spawn {
        dst: LocalId,
        callee: FuncId,
        args: Box<[LocalId]>,
    },
    Join {
        thread: LocalId,
    },
    Yield,
    /// The cost field carries the whole effect.
    Busy,
    // Instrumentation operations, decoded from `Inst::Instr`.
    CallEdge,
    FieldAccessProf {
        obj: LocalId,
        field: FieldSym,
        write: bool,
    },
    BlockCount {
        block: BlockId,
    },
    EdgeCount {
        from: BlockId,
        to: BlockId,
    },
    ValueProfile {
        local: LocalId,
        site: u32,
    },
    PathStart {
        value: i64,
    },
    PathIncr {
        delta: i64,
    },
    PathEnd {
        site: u32,
    },
    // Terminators, with targets as absolute arena indices and backedge
    // membership pre-classified per edge.
    Jump {
        target: u32,
        backedge: bool,
    },
    Br {
        cond: LocalId,
        t: u32,
        f: u32,
        t_backedge: bool,
        f_backedge: bool,
    },
    Ret {
        val: Option<LocalId>,
    },
    Check {
        sample: u32,
        cont: u32,
        sample_backedge: bool,
        cont_backedge: bool,
    },
    // Fused superinstructions (built only under `FuseMode::Fuse`). Each
    // replaces its group's first arena slot; the interior slots become
    // inert `Gap` fillers so every arena index — branch targets, trace
    // `check_ip`s — is preserved. A fused group never contains a `Check`,
    // a `Yield`, a backedge, or (except as the final component) an op
    // that can trap, which is what makes the single up-front charge of
    // the summed cost observably identical to charging per op.
    /// `tmp = imm; dst = lhs op rhs` (a `Const` feeding a `Bin`).
    BinImm {
        op: BinOp,
        dst: LocalId,
        lhs: LocalId,
        rhs: LocalId,
        tmp: LocalId,
        imm: Value,
    },
    /// A comparison `Bin` feeding the block's `Br`: branch straight on the
    /// comparison without a separate dispatch for the bool. `extra` is the
    /// branch's cost, charged after the compare executes so a fuel trap
    /// lands between the two exactly as in the unfused sequence. Backedge
    /// branches are never fused, so no backedge flags are needed.
    BrCmp {
        op: BinOp,
        dst: LocalId,
        lhs: LocalId,
        rhs: LocalId,
        extra: u64,
        t: u32,
        f: u32,
    },
    /// `Const` + comparison-`Bin` + `Br` — the dominant tight-loop shape
    /// (`while (i < n)` against a literal bound).
    BrCmpImm {
        op: BinOp,
        dst: LocalId,
        lhs: LocalId,
        rhs: LocalId,
        tmp: LocalId,
        imm: Value,
        extra: u64,
        t: u32,
        f: u32,
    },
    /// `tmp = idx; dst = arr[idx]` with an integer-constant index.
    ArrayGetImm {
        dst: LocalId,
        arr: LocalId,
        tmp: LocalId,
        idx: i64,
    },
    /// `tmp = idx; arr[idx] = src` with an integer-constant index.
    ArraySetImm {
        arr: LocalId,
        tmp: LocalId,
        idx: i64,
        src: LocalId,
    },
    /// `tmp = idx; src_tmp = src; arr[idx] = src` — both the index and
    /// the stored value are constants (the frontend lowers `a[1] = 5;`
    /// this way, with the value's `Const` between the index's and the
    /// store).
    ArraySetImm2 {
        arr: LocalId,
        tmp: LocalId,
        idx: i64,
        src_tmp: LocalId,
        src: Value,
    },
    /// `tmp = obj.field; dst = lhs <op> rhs` where the load feeds one
    /// operand. Both halves can trap, so only the load's cost is folded
    /// into [`Op::cost`]; `extra` (the binary op's cost) is charged by the
    /// arm between the halves, exactly where the unfused dispatch would
    /// charge it.
    GetFieldBin {
        obj: LocalId,
        offset: u32,
        tmp: LocalId,
        op: BinOp,
        dst: LocalId,
        lhs: LocalId,
        rhs: LocalId,
        extra: u64,
    },
    /// `dst = lhs <op> rhs; obj.field = dst` — a computed value stored
    /// straight into a field. `extra` is the store's cost, charged after
    /// the binary op executes.
    BinSetField {
        op: BinOp,
        dst: LocalId,
        lhs: LocalId,
        rhs: LocalId,
        obj: LocalId,
        offset: u32,
        extra: u64,
    },
    /// `tmp = imm; dst = lhs <op> rhs; obj.field = dst` — the full
    /// constant-operand compute-and-store tail of `o.f = <expr> <op> K;`.
    /// [`Op::cost`] folds the constant and the binary op; `extra` is the
    /// store's cost, charged between the op and the store.
    BinImmSetField {
        op: BinOp,
        dst: LocalId,
        lhs: LocalId,
        rhs: LocalId,
        tmp: LocalId,
        imm: Value,
        obj: LocalId,
        offset: u32,
        extra: u64,
    },
    /// `tmp = obj.field; ctmp = imm; dst = lhs <op> rhs` — a field load
    /// combined with a constant (`self.hash * 31`). `extra` folds the
    /// constant's and the binary op's costs (the constant can't trap, so
    /// the two charges merge), charged after the load executes.
    GetFieldBinImm {
        obj: LocalId,
        offset: u32,
        tmp: LocalId,
        ctmp: LocalId,
        imm: Value,
        op: BinOp,
        dst: LocalId,
        lhs: LocalId,
        rhs: LocalId,
        extra: u64,
    },
    /// `tmp = obj.field; ctmp = imm; dst = lhs <op> rhs; sobj.sfield =
    /// dst` — a whole field update with a constant operand
    /// (`self.pos = self.pos + 1`). `extra` folds the constant's and the
    /// binary op's costs (charged after the load), `extra2` is the
    /// store's cost (charged after the binary op).
    GetFieldBinImmSetField {
        obj: LocalId,
        offset: u32,
        tmp: LocalId,
        ctmp: LocalId,
        imm: Value,
        op: BinOp,
        dst: LocalId,
        lhs: LocalId,
        rhs: LocalId,
        sobj: LocalId,
        soffset: u32,
        extra: u64,
        extra2: u64,
    },
    /// `tmp = imm; obj.field = tmp` — a constant stored into a field
    /// (`self.run = 0`). Only the final store can trap, so the whole
    /// cost folds into [`Op::cost`].
    ConstSetField {
        tmp: LocalId,
        imm: Value,
        obj: LocalId,
        offset: u32,
    },
    /// `tmp = obj.field; dst = lhs <op> rhs; br dst ? t : f` — the
    /// field-loaded compare-and-branch of a loop header
    /// (`while (self.pos < stop)`). Three trap/charge points, so the
    /// compare's cost (`extra`) and the branch's cost (`branch`) are both
    /// charged separately at their unfused positions. Only built when
    /// neither edge is a backedge.
    GetFieldBrCmp {
        obj: LocalId,
        offset: u32,
        tmp: LocalId,
        op: BinOp,
        dst: LocalId,
        lhs: LocalId,
        rhs: LocalId,
        extra: u64,
        branch: u64,
        t: u32,
        f: u32,
    },
    /// `tmp = obj.field; dst = arr[tmp]` — a field-indexed array load
    /// (`data[self.pos]`). `extra` is the load's cost, charged between
    /// the halves.
    GetFieldArrayGet {
        obj: LocalId,
        offset: u32,
        tmp: LocalId,
        dst: LocalId,
        arr: LocalId,
        extra: u64,
    },
    /// `tmp = obj.field; arr[tmp] = src` — a field-indexed array store
    /// (`out[self.pos] = b`). `extra` is the store's cost.
    GetFieldArraySet {
        obj: LocalId,
        offset: u32,
        tmp: LocalId,
        arr: LocalId,
        src: LocalId,
        extra: u64,
    },
    /// A run of two or more consecutive `Move`s, executed in order under
    /// one dispatch.
    MoveRun {
        moves: Box<[(LocalId, LocalId)]>,
    },
    /// A non-backedge `Jump` that pre-executes the target block's leading
    /// run of side-effect-only instrumentation ops and lands past them.
    /// The target's own slots stay live for its other predecessors.
    JumpInstr {
        target: u32,
        effects: Box<[InstrEffect]>,
    },
    /// The generalized profile-guided template ([`FuseMode::Guided`]): a
    /// mined run of two or three plain components executed under one
    /// dispatch. Unlike the fixed catalogue above, every component's cost
    /// is charged individually — [`Op::cost`] carries only the first
    /// component's, `extra` pre-sums the rest for profile folding — so
    /// charge/execute interleaving, traps, timer ticks and switch-bit
    /// catch-ups are positionally identical to the unfused sequence for
    /// *any* component mix, including components that trap mid-group.
    /// Components are plain ops from the guided-eligible set
    /// (const/move/un/bin, statically resolved field accesses, array ops),
    /// with a direct or static-method call allowed as the final component.
    Guided {
        /// `(cost, component)` per source instruction, in order.
        steps: Box<[(u64, OpKind)]>,
        /// Pre-summed cost of `steps[1..]` (everything charged mid-arm).
        extra: u64,
    },
    /// An inert filler occupying the interior slot of a fused group.
    /// Unreachable: sequential flow skips it via the leader's width, and
    /// branch targets only ever point at block starts.
    Gap,
}

impl OpKind {
    /// This op's index in the profiling opcode space
    /// ([`crate::profile::OPCODE_NAMES`]). The plain decoded forms map to
    /// the same indices the tree-walking engine assigns the corresponding
    /// `Inst`/`Term` dispatches, so unfused prepared profiles and naive
    /// profiles are directly comparable.
    pub(crate) const fn opcode(&self) -> usize {
        use crate::profile::*;
        match self {
            OpKind::Const { .. } => OPC_CONST,
            OpKind::Move { .. } => OPC_MOVE,
            OpKind::Un { .. } => OPC_UN,
            OpKind::Bin { .. } => OPC_BIN,
            OpKind::New { .. } => OPC_NEW,
            OpKind::GetField { .. } => OPC_GET_FIELD,
            OpKind::SetField { .. } => OPC_SET_FIELD,
            OpKind::NewArray { .. } => OPC_NEW_ARRAY,
            OpKind::ArrayGet { .. } => OPC_ARRAY_GET,
            OpKind::ArraySet { .. } => OPC_ARRAY_SET,
            OpKind::ArrayLen { .. } => OPC_ARRAY_LEN,
            OpKind::Call { .. } => OPC_CALL,
            OpKind::CallMethod { .. } => OPC_CALL_METHOD,
            OpKind::Print { .. } => OPC_PRINT,
            OpKind::Spawn { .. } => OPC_SPAWN,
            OpKind::Join { .. } => OPC_JOIN,
            OpKind::Yield => OPC_YIELD,
            OpKind::Busy => OPC_BUSY,
            OpKind::CallEdge => OPC_CALL_EDGE,
            OpKind::FieldAccessProf { .. } => OPC_FIELD_ACCESS_PROF,
            OpKind::BlockCount { .. } => OPC_BLOCK_COUNT,
            OpKind::EdgeCount { .. } => OPC_EDGE_COUNT,
            OpKind::ValueProfile { .. } => OPC_VALUE_PROFILE,
            OpKind::PathStart { .. } => OPC_PATH_START,
            OpKind::PathIncr { .. } => OPC_PATH_INCR,
            OpKind::PathEnd { .. } => OPC_PATH_END,
            OpKind::Jump { .. } => OPC_JUMP,
            OpKind::Br { .. } => OPC_BR,
            OpKind::Ret { .. } => OPC_RET,
            OpKind::Check { .. } => OPC_CHECK,
            OpKind::GetFieldStatic { .. } => OPC_GET_FIELD_STATIC,
            OpKind::SetFieldStatic { .. } => OPC_SET_FIELD_STATIC,
            OpKind::CallMethodStatic { .. } => OPC_CALL_METHOD_STATIC,
            OpKind::BinImm { .. } => OPC_BIN_IMM,
            OpKind::BrCmp { .. } => OPC_BR_CMP,
            OpKind::BrCmpImm { .. } => OPC_BR_CMP_IMM,
            OpKind::ArrayGetImm { .. } => OPC_ARRAY_GET_IMM,
            OpKind::ArraySetImm { .. } => OPC_ARRAY_SET_IMM,
            OpKind::ArraySetImm2 { .. } => OPC_ARRAY_SET_IMM2,
            OpKind::ConstSetField { .. } => OPC_CONST_SET_FIELD,
            OpKind::GetFieldBin { .. } => OPC_GET_FIELD_BIN,
            OpKind::BinSetField { .. } => OPC_BIN_SET_FIELD,
            OpKind::BinImmSetField { .. } => OPC_BIN_IMM_SET_FIELD,
            OpKind::GetFieldBinImm { .. } => OPC_GET_FIELD_BIN_IMM,
            OpKind::GetFieldBinImmSetField { .. } => OPC_GET_FIELD_BIN_IMM_SET_FIELD,
            OpKind::GetFieldBrCmp { .. } => OPC_GET_FIELD_BR_CMP,
            OpKind::GetFieldArrayGet { .. } => OPC_GET_FIELD_ARRAY_GET,
            OpKind::GetFieldArraySet { .. } => OPC_GET_FIELD_ARRAY_SET,
            OpKind::MoveRun { .. } => OPC_MOVE_RUN,
            OpKind::JumpInstr { .. } => OPC_JUMP_INSTR,
            OpKind::Guided { .. } => OPC_GUIDED,
            OpKind::Gap => OPC_GAP,
        }
    }

    /// Cycles this op charges *beyond* [`Op::cost`] when it runs to
    /// completion: the mid-arm `extra`/`branch` charges of the fused
    /// superinstructions whose components trap independently. Together
    /// with [`Op::cost`] this is the exact per-dispatch charge of every
    /// completed dispatch (the check's sample-switch surcharge, applied
    /// only when the check fires, is accounted separately), which is what
    /// lets the profiled engine reconstruct exact per-opcode cycle totals
    /// from bare slot execution counts after the run.
    pub(crate) const fn extra_cycles(&self) -> u64 {
        match self {
            OpKind::BrCmp { extra, .. }
            | OpKind::BrCmpImm { extra, .. }
            | OpKind::GetFieldBin { extra, .. }
            | OpKind::BinSetField { extra, .. }
            | OpKind::BinImmSetField { extra, .. }
            | OpKind::GetFieldBinImm { extra, .. }
            | OpKind::GetFieldArrayGet { extra, .. }
            | OpKind::GetFieldArraySet { extra, .. } => *extra,
            OpKind::GetFieldBinImmSetField { extra, extra2, .. } => *extra + *extra2,
            OpKind::GetFieldBrCmp { extra, branch, .. } => *extra + *branch,
            OpKind::Guided { extra, .. } => *extra,
            _ => 0,
        }
    }
}

impl Op {
    /// The charge schedule of one dispatch of this op: each inner vec is
    /// one `charge_cycles` quantum, listing the per-component (source
    /// instruction) costs it folds, in execution order. This is the
    /// unfused schedule the fusion pass folded [`Op::cost`] and the
    /// `extra` fields from; the profiled engine walks it on the trapping
    /// dispatch to attribute exactly the instructions and cycles the
    /// unfused schedule would have reached before the trap (see
    /// `fold_profile`). Total components always equal [`Op::width`] and
    /// total cycles equal `cost + extra_cycles()`.
    pub(crate) fn charge_quanta(&self, cm: &CostModel) -> Vec<Vec<u64>> {
        let bin = |op: &BinOp| match op {
            BinOp::Mul => cm.mul,
            BinOp::Div | BinOp::Rem => cm.div,
            _ => cm.alu,
        };
        let q = match &self.kind {
            OpKind::BinImm { op, .. } => vec![vec![cm.alu, bin(op)]],
            OpKind::BrCmp { op, extra, .. } => vec![vec![bin(op)], vec![*extra]],
            OpKind::BrCmpImm { op, extra, .. } => vec![vec![cm.alu, bin(op)], vec![*extra]],
            OpKind::ArrayGetImm { .. } | OpKind::ArraySetImm { .. } => {
                vec![vec![cm.alu, cm.array_access]]
            }
            OpKind::ArraySetImm2 { .. } => vec![vec![cm.alu, cm.alu, cm.array_access]],
            OpKind::ConstSetField { .. } => vec![vec![cm.alu, cm.field_access]],
            OpKind::GetFieldBin { extra, .. } | OpKind::BinSetField { extra, .. } => {
                vec![vec![self.cost], vec![*extra]]
            }
            OpKind::BinImmSetField { op, extra, .. } => vec![vec![cm.alu, bin(op)], vec![*extra]],
            OpKind::GetFieldBinImm { op, .. } => vec![vec![self.cost], vec![cm.alu, bin(op)]],
            OpKind::GetFieldBinImmSetField { op, extra2, .. } => {
                vec![vec![self.cost], vec![cm.alu, bin(op)], vec![*extra2]]
            }
            OpKind::GetFieldBrCmp { extra, branch, .. } => {
                vec![vec![self.cost], vec![*extra], vec![*branch]]
            }
            OpKind::GetFieldArrayGet { extra, .. } | OpKind::GetFieldArraySet { extra, .. } => {
                vec![vec![self.cost], vec![*extra]]
            }
            OpKind::MoveRun { moves } => vec![vec![cm.alu; moves.len()]],
            OpKind::PathIncr { .. } if self.width > 1 => {
                vec![vec![cm.instr_path_arith; self.width as usize]]
            }
            OpKind::JumpInstr { effects, .. } => {
                let mut q = vec![cm.jump];
                q.extend(effects.iter().map(|ef| match ef {
                    InstrEffect::CallEdge => cm.instr_call_edge,
                    InstrEffect::BlockCount(_) => cm.instr_block_count,
                    InstrEffect::EdgeCount(..) => cm.instr_edge_count,
                }));
                vec![q]
            }
            OpKind::Guided { steps, .. } => steps.iter().map(|(c, _)| vec![*c]).collect(),
            _ => vec![vec![self.cost]],
        };
        debug_assert_eq!(
            q.iter().flatten().sum::<u64>(),
            self.cost + self.kind.extra_cycles(),
            "charge quanta must decompose the op's exact per-dispatch charge"
        );
        debug_assert_eq!(
            q.iter().map(Vec::len).sum::<usize>(),
            self.width as usize,
            "charge quanta must have one component per source instruction"
        );
        q
    }
}

/// A profiling side effect absorbed into a [`OpKind::JumpInstr`]. Only
/// trap-free, operand-free ops qualify.
#[derive(Copy, Clone, Debug)]
pub(crate) enum InstrEffect {
    /// Record a (caller, site, callee) call edge from the current frame.
    CallEdge,
    /// Record one execution of an original block.
    BlockCount(BlockId),
    /// Record one traversal of an original CFG edge.
    EdgeCount(BlockId, BlockId),
}

/// One function flattened into a contiguous op arena. The entry point is
/// always arena index 0 (block 0 is laid out first).
#[derive(Clone, Debug)]
pub(crate) struct PreparedFunction {
    pub(crate) ops: Vec<Op>,
    pub(crate) num_locals: usize,
    pub(crate) arity: usize,
    /// Superinstructions installed by the fusion pass (0 under
    /// [`FuseMode::Off`]).
    pub(crate) fused: usize,
    /// This function's offset into the module-wide slot space: arena slot
    /// `i` of this function is slot `slot_base + i` of the module. The
    /// profiled engine counts block entries per module slot and folds the
    /// counts back into per-opcode totals after the run.
    pub(crate) slot_base: u32,
    /// Arena offset of each block, in layout order (`block_starts[0] == 0`).
    /// Control only ever enters a block at its start (or, for
    /// [`OpKind::JumpInstr`], at a recorded mid-block landing slot), and
    /// only ever leaves through its final op — which is what lets the
    /// profiled engine reconstruct exact per-slot execution counts from
    /// per-entry counts by a prefix sum that resets at these boundaries.
    pub(crate) block_starts: Vec<u32>,
}

/// A module flattened for execution: the decoded op arenas plus the owned
/// source [`Module`] (still needed for runtime name/class resolution) and
/// the [`CostModel`] the costs were folded from.
///
/// Build once with [`PreparedModule::prepare`], then execute any number of
/// times with [`crate::run_prepared`] — Table 4, for example, runs the same
/// instrumented program at six sampling intervals, amortizing one
/// preparation over all of them.
#[derive(Clone, Debug)]
pub struct PreparedModule {
    module: Module,
    cost: CostModel,
    funcs: Vec<PreparedFunction>,
    /// Field slot per (class, field symbol), row-major by class.
    field_offsets: Box<[Option<u32>]>,
    num_field_syms: usize,
    /// Implementing function per (class, method symbol), row-major by
    /// class.
    method_impls: Box<[Option<FuncId>]>,
    num_method_syms: usize,
}

/// Module-wide static resolution tables: per-symbol slots and targets that
/// are identical in *every* class, so the decoded op can skip the
/// per-access (class, symbol) probe entirely.
struct Statics {
    /// Per [`FieldSym`]: the field's slot if every class places it there.
    field_slots: Vec<Option<u32>>,
    /// Per [`MethodSym`]: the implementation if every class resolves to it.
    method_targets: Vec<Option<FuncId>>,
}

impl Statics {
    fn resolve(module: &Module, mode: &FuseMode) -> Self {
        let num_fields = module.num_field_syms();
        let num_methods = module.num_method_syms();
        if matches!(mode, FuseMode::Off) || module.num_classes() == 0 {
            return Statics {
                field_slots: vec![None; num_fields],
                method_targets: vec![None; num_methods],
            };
        }
        let field_slots = (0..num_fields)
            .map(|s| {
                let sym = FieldSym::new(s as u32);
                let mut classes = module.classes();
                let first = classes.next()?.1.field_offset(sym)? as u32;
                classes
                    .all(|(_, c)| c.field_offset(sym) == Some(first as usize))
                    .then_some(first)
            })
            .collect();
        let method_targets = (0..num_methods)
            .map(|s| {
                let sym = MethodSym::new(s as u32);
                let mut classes = module.classes();
                let first = classes.next()?.1.resolve_method(sym)?;
                classes
                    .all(|(_, c)| c.resolve_method(sym) == Some(first))
                    .then_some(first)
            })
            .collect();
        Statics {
            field_slots,
            method_targets,
        }
    }
}

impl PreparedModule {
    /// Flattens `module` under `cost` with the process-wide [`fuse_mode`].
    /// This is the only place the per-function backedge analysis runs.
    pub fn prepare(module: &Module, cost: &CostModel) -> Self {
        Self::prepare_with(module, cost, fuse_mode())
    }

    /// [`PreparedModule::prepare`] with an explicit fuse mode, for callers
    /// (differential tests, the dispatch-ablation bench) that must pin the
    /// pipeline regardless of environment or process-wide override.
    pub fn prepare_with(module: &Module, cost: &CostModel, mode: FuseMode) -> Self {
        PREPARATIONS.fetch_add(1, Ordering::Relaxed);
        THREAD_PREPARATIONS.with(|c| c.set(c.get() + 1));
        let statics = Statics::resolve(module, &mode);
        let mut slot_base = 0u32;
        let funcs: Vec<PreparedFunction> = module
            .functions()
            .map(|(_, f)| {
                let mut pf = prepare_function(module, f, cost, &mode, &statics);
                pf.slot_base = slot_base;
                slot_base += pf.ops.len() as u32;
                pf
            })
            .collect();
        let num_field_syms = module.num_field_syms();
        let num_method_syms = module.num_method_syms();
        let num_classes = module.num_classes();
        let mut field_offsets = vec![None; num_classes * num_field_syms];
        let mut method_impls = vec![None; num_classes * num_method_syms];
        for (id, class) in module.classes() {
            for s in 0..num_field_syms {
                field_offsets[id.index() * num_field_syms + s] = class
                    .field_offset(FieldSym::new(s as u32))
                    .map(|o| o as u32);
            }
            for s in 0..num_method_syms {
                method_impls[id.index() * num_method_syms + s] =
                    class.resolve_method(MethodSym::new(s as u32));
            }
        }
        PreparedModule {
            module: module.clone(),
            cost: *cost,
            funcs,
            field_offsets: field_offsets.into_boxed_slice(),
            num_field_syms,
            method_impls: method_impls.into_boxed_slice(),
            num_method_syms,
        }
    }

    /// The source module (for name, class and method resolution).
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The cost model the op costs were folded from.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Total decoded ops across all functions.
    pub fn num_ops(&self) -> usize {
        self.funcs.iter().map(|f| f.ops.len()).sum()
    }

    /// Total fused superinstructions across all functions (0 when prepared
    /// under [`FuseMode::Off`]).
    pub fn num_fused(&self) -> usize {
        self.funcs.iter().map(|f| f.fused).sum()
    }

    /// Fused groups using the generalized [`OpKind::Guided`] template (a
    /// subset of [`PreparedModule::num_fused`]; 0 unless prepared under
    /// [`FuseMode::Guided`]).
    pub fn num_guided(&self) -> usize {
        self.funcs
            .iter()
            .flat_map(|f| f.ops.iter())
            .filter(|o| matches!(o.kind, OpKind::Guided { .. }))
            .count()
    }

    #[inline]
    pub(crate) fn func(&self, id: FuncId) -> &PreparedFunction {
        &self.funcs[id.index()]
    }

    /// All prepared functions, in slot-space order (the post-run profile
    /// fold walks every arena once).
    #[inline]
    pub(crate) fn funcs(&self) -> &[PreparedFunction] {
        &self.funcs
    }

    /// Size of the module-wide slot space ([`PreparedFunction::slot_base`]
    /// plus arena length, over the last function) — the length of the
    /// profiled engine's execution-counter table.
    #[inline]
    pub(crate) fn total_slots(&self) -> usize {
        self.funcs
            .last()
            .map_or(0, |f| f.slot_base as usize + f.ops.len())
    }

    /// Pre-resolved field slot of `field` on `class`.
    #[inline]
    pub(crate) fn field_offset(&self, class: ClassId, field: FieldSym) -> Option<u32> {
        self.field_offsets[class.index() * self.num_field_syms + field.index()]
    }

    /// Pre-resolved implementation of `method` on `class`.
    #[inline]
    pub(crate) fn method_impl(&self, class: ClassId, method: MethodSym) -> Option<FuncId> {
        self.method_impls[class.index() * self.num_method_syms + method.index()]
    }
}

fn prepare_function(
    module: &Module,
    f: &Function,
    cost: &CostModel,
    mode: &FuseMode,
    statics: &Statics,
) -> PreparedFunction {
    let back: HashSet<(BlockId, BlockId)> = loops::backedges(f).into_iter().collect();
    // First pass: arena offset of each block (insts + inlined terminator).
    let mut starts = Vec::with_capacity(f.num_blocks());
    let mut offset = 0u32;
    for (_, b) in f.blocks() {
        starts.push(offset);
        offset += b.insts().len() as u32 + 1;
    }
    // Second pass: decode.
    let mut ops = Vec::with_capacity(offset as usize);
    for (id, b) in f.blocks() {
        for inst in b.insts() {
            ops.push(decode_inst(module, inst, cost, statics));
        }
        ops.push(decode_term(id, b.term(), cost, &back, &starts));
    }
    // Third pass: peephole fusion within each block (greedy catalogue
    // matching under `Fuse`, the weight-maximizing dynamic program under
    // `Guided`), then the cross-block jump/instrumentation pass over the
    // (now fused) arena.
    let mut fused = 0;
    if !matches!(mode, FuseMode::Off) {
        for b in 0..starts.len() {
            let s = starts[b] as usize;
            let e = starts.get(b + 1).map_or(ops.len(), |&n| n as usize);
            fused += match mode {
                FuseMode::Off => unreachable!("gated above"),
                FuseMode::Fuse => fuse_block(&mut ops, s, e),
                FuseMode::Guided(g) => guide_block(&mut ops, s, e, g),
            };
        }
        fused += fuse_jump_effects(&mut ops, &starts);
    }
    PreparedFunction {
        ops,
        num_locals: f.num_locals(),
        arity: f.arity(),
        fused,
        // Assigned by `prepare_with` once every function's arena length is
        // known.
        slot_base: 0,
        block_starts: starts,
    }
}

/// Installs a fused superinstruction over `ops[i..i + n]`: the leader
/// takes the group's slot count as its width, the interior slots become
/// inert [`OpKind::Gap`] fillers. The arena's length and every index in it
/// are preserved.
fn install(ops: &mut [Op], i: usize, n: usize, cost: u64, kind: OpKind) {
    ops[i] = Op {
        cost,
        width: n as u32,
        kind,
    };
    for slot in &mut ops[i + 1..i + n] {
        *slot = Op {
            cost: 0,
            width: 1,
            kind: OpKind::Gap,
        };
    }
}

/// Peephole-fuses one block's ops (`ops[s..e]`, terminator at `e - 1`)
/// with the greedy left-to-right catalogue pass. Returns the number of
/// superinstructions installed.
fn fuse_block(ops: &mut [Op], s: usize, e: usize) -> usize {
    let mut fused = 0;
    let mut i = s;
    while i < e {
        if let Some((n, cost, kind)) = match_at(ops, i, e) {
            install(ops, i, n, cost, kind);
            fused += 1;
            i += n;
        } else {
            i += 1;
        }
    }
    fused
}

/// Tries every pattern of the superinstruction catalogue at `ops[i]`,
/// bounded by the block end `e`. Returns `Some((width, cost, kind))` for
/// the group [`install`] would build, `None` if nothing matches. Pure:
/// looks only at `ops[i..i + width]`, so cached results stay valid while
/// earlier slots of the block are rewritten. Trap-order soundness:
/// [`Op::cost`] folds component costs only up to (and including) the
/// first component that can trap; every later component's cost rides in
/// the variant's `extra` field and is charged by the interpreter arm
/// between the two executions, reproducing the unfused charge/execute
/// interleaving — and therefore the exact trap point and cycle count —
/// for both execution traps and budget traps (see DESIGN.md decision 12).
fn match_at(ops: &[Op], i: usize, e: usize) -> Option<(usize, u64, OpKind)> {
    match ops[i].kind {
        OpKind::Const { dst: tmp, value } if i + 1 < e => {
            let c0 = ops[i].cost;
            match ops[i + 1].kind {
                OpKind::Bin { op, dst, lhs, rhs } if lhs == tmp || rhs == tmp => {
                    let c1 = ops[i + 1].cost;
                    // Prefer the triple when the comparison feeds the
                    // block's branch and neither edge is a backedge.
                    if op.is_comparison() && i + 2 < e {
                        if let OpKind::Br {
                            cond,
                            t,
                            f,
                            t_backedge: false,
                            f_backedge: false,
                        } = ops[i + 2].kind
                        {
                            if cond == dst {
                                let kind = OpKind::BrCmpImm {
                                    op,
                                    dst,
                                    lhs,
                                    rhs,
                                    tmp,
                                    imm: value,
                                    extra: ops[i + 2].cost,
                                    t,
                                    f,
                                };
                                return Some((3, c0 + c1, kind));
                            }
                        }
                    }
                    // Second-choice triple: the computed value goes
                    // straight into a field (`o.f = <expr> <op> K;`).
                    if i + 2 < e {
                        if let OpKind::SetFieldStatic { obj, offset, src } = ops[i + 2].kind {
                            if src == dst {
                                let kind = OpKind::BinImmSetField {
                                    op,
                                    dst,
                                    lhs,
                                    rhs,
                                    tmp,
                                    imm: value,
                                    obj,
                                    offset,
                                    extra: ops[i + 2].cost,
                                };
                                return Some((3, c0 + c1, kind));
                            }
                        }
                    }
                    let kind = OpKind::BinImm {
                        op,
                        dst,
                        lhs,
                        rhs,
                        tmp,
                        imm: value,
                    };
                    Some((2, c0 + c1, kind))
                }
                OpKind::ArrayGet { dst, arr, idx } if idx == tmp => match value {
                    Value::I64(n) => {
                        let cost = c0 + ops[i + 1].cost;
                        Some((
                            2,
                            cost,
                            OpKind::ArrayGetImm {
                                dst,
                                arr,
                                tmp,
                                idx: n,
                            },
                        ))
                    }
                    _ => None,
                },
                // `a[K] = V;` with two literals: the value's `Const` sits
                // between the index's `Const` and the store, so the pair
                // patterns below never see it.
                OpKind::Const {
                    dst: src_tmp,
                    value: src,
                } if src_tmp != tmp && i + 2 < e => {
                    if let OpKind::ArraySet {
                        arr,
                        idx: set_idx,
                        src: set_src,
                    } = ops[i + 2].kind
                    {
                        if set_idx == tmp && set_src == src_tmp {
                            if let Value::I64(n) = value {
                                let cost = c0 + ops[i + 1].cost + ops[i + 2].cost;
                                let kind = OpKind::ArraySetImm2 {
                                    arr,
                                    tmp,
                                    idx: n,
                                    src_tmp,
                                    src,
                                };
                                return Some((3, cost, kind));
                            }
                        }
                    }
                    None
                }
                OpKind::SetFieldStatic { obj, offset, src } if src == tmp => {
                    let kind = OpKind::ConstSetField {
                        tmp,
                        imm: value,
                        obj,
                        offset,
                    };
                    Some((2, c0 + ops[i + 1].cost, kind))
                }
                OpKind::ArraySet { arr, idx, src } if idx == tmp && src != tmp => match value {
                    Value::I64(n) => {
                        let cost = c0 + ops[i + 1].cost;
                        Some((
                            2,
                            cost,
                            OpKind::ArraySetImm {
                                arr,
                                tmp,
                                idx: n,
                                src,
                            },
                        ))
                    }
                    _ => None,
                },
                _ => None,
            }
        }
        OpKind::Bin { op, dst, lhs, rhs } if i + 1 < e => {
            if op.is_comparison() {
                if let OpKind::Br {
                    cond,
                    t,
                    f,
                    t_backedge: false,
                    f_backedge: false,
                } = ops[i + 1].kind
                {
                    if cond == dst {
                        let kind = OpKind::BrCmp {
                            op,
                            dst,
                            lhs,
                            rhs,
                            extra: ops[i + 1].cost,
                            t,
                            f,
                        };
                        return Some((2, ops[i].cost, kind));
                    }
                }
            }
            if let OpKind::SetFieldStatic { obj, offset, src } = ops[i + 1].kind {
                if src == dst {
                    let kind = OpKind::BinSetField {
                        op,
                        dst,
                        lhs,
                        rhs,
                        obj,
                        offset,
                        extra: ops[i + 1].cost,
                    };
                    return Some((2, ops[i].cost, kind));
                }
            }
            None
        }
        OpKind::GetFieldStatic {
            dst: tmp,
            obj,
            offset,
        } if i + 1 < e => {
            let c0 = ops[i].cost;
            match ops[i + 1].kind {
                OpKind::ArrayGet { dst, arr, idx } if idx == tmp => {
                    let kind = OpKind::GetFieldArrayGet {
                        obj,
                        offset,
                        tmp,
                        dst,
                        arr,
                        extra: ops[i + 1].cost,
                    };
                    Some((2, c0, kind))
                }
                OpKind::ArraySet { arr, idx, src } if idx == tmp => {
                    let kind = OpKind::GetFieldArraySet {
                        obj,
                        offset,
                        tmp,
                        arr,
                        src,
                        extra: ops[i + 1].cost,
                    };
                    Some((2, c0, kind))
                }
                OpKind::Const { dst: ctmp, value } if i + 2 < e => {
                    if let OpKind::Bin { op, dst, lhs, rhs } = ops[i + 2].kind {
                        if (lhs == tmp && rhs == ctmp) || (lhs == ctmp && rhs == tmp) {
                            // Best case: the result goes straight back
                            // into a field — one dispatch for the whole
                            // `o.f = o.g <op> K;` statement.
                            if i + 3 < e {
                                if let OpKind::SetFieldStatic {
                                    obj: sobj,
                                    offset: soffset,
                                    src,
                                } = ops[i + 3].kind
                                {
                                    if src == dst {
                                        let kind = OpKind::GetFieldBinImmSetField {
                                            obj,
                                            offset,
                                            tmp,
                                            ctmp,
                                            imm: value,
                                            op,
                                            dst,
                                            lhs,
                                            rhs,
                                            sobj,
                                            soffset,
                                            extra: ops[i + 1].cost + ops[i + 2].cost,
                                            extra2: ops[i + 3].cost,
                                        };
                                        return Some((4, c0, kind));
                                    }
                                }
                            }
                            let kind = OpKind::GetFieldBinImm {
                                obj,
                                offset,
                                tmp,
                                ctmp,
                                imm: value,
                                op,
                                dst,
                                lhs,
                                rhs,
                                extra: ops[i + 1].cost + ops[i + 2].cost,
                            };
                            return Some((3, c0, kind));
                        }
                    }
                    None
                }
                OpKind::Bin { op, dst, lhs, rhs } if lhs == tmp || rhs == tmp => {
                    // A comparison that feeds the block's branch takes the
                    // full load–compare–branch triple.
                    if op.is_comparison() && i + 2 < e {
                        if let OpKind::Br {
                            cond,
                            t,
                            f,
                            t_backedge: false,
                            f_backedge: false,
                        } = ops[i + 2].kind
                        {
                            if cond == dst {
                                let kind = OpKind::GetFieldBrCmp {
                                    obj,
                                    offset,
                                    tmp,
                                    op,
                                    dst,
                                    lhs,
                                    rhs,
                                    extra: ops[i + 1].cost,
                                    branch: ops[i + 2].cost,
                                    t,
                                    f,
                                };
                                return Some((3, c0, kind));
                            }
                        }
                    }
                    let kind = OpKind::GetFieldBin {
                        obj,
                        offset,
                        tmp,
                        op,
                        dst,
                        lhs,
                        rhs,
                        extra: ops[i + 1].cost,
                    };
                    Some((2, c0, kind))
                }
                _ => None,
            }
        }
        OpKind::Move { .. } => {
            let mut n = 1;
            while i + n < e && matches!(ops[i + n].kind, OpKind::Move { .. }) {
                n += 1;
            }
            if n < 2 {
                return None;
            }
            let moves: Box<[(LocalId, LocalId)]> = ops[i..i + n]
                .iter()
                .map(|o| match o.kind {
                    OpKind::Move { dst, src } => (dst, src),
                    _ => unreachable!("run scanned above"),
                })
                .collect();
            let cost = ops[i..i + n].iter().map(|o| o.cost).sum();
            Some((n, cost, OpKind::MoveRun { moves }))
        }
        OpKind::PathIncr { delta: first } => {
            // Deltas are non-negative (widened u32), so when the summed
            // delta fits in i64, every unfused partial sum fits too and
            // one addition of the sum is exactly the sequential result.
            let mut n = 1;
            let mut sum = first;
            while i + n < e {
                let OpKind::PathIncr { delta } = ops[i + n].kind else {
                    break;
                };
                let Some(s) = sum.checked_add(delta) else {
                    break;
                };
                sum = s;
                n += 1;
            }
            if n < 2 {
                return None;
            }
            let cost = ops[i..i + n].iter().map(|o| o.cost).sum();
            Some((n, cost, OpKind::PathIncr { delta: sum }))
        }
        _ => None,
    }
}

/// Whether `kind` may ride inside a generalized [`OpKind::Guided`] group.
/// Because guided groups charge per component, any component mix is
/// trap-order sound; the set is restricted to the register-file/heap ops
/// the guided interpreter arm implements, plus — only in the final
/// position — the statically resolved calls (a call replaces the frame's
/// control state, so nothing may follow it under the same dispatch).
fn guided_component_ok(kind: &OpKind, last: bool) -> bool {
    match kind {
        OpKind::Const { .. }
        | OpKind::Move { .. }
        | OpKind::Un { .. }
        | OpKind::Bin { .. }
        | OpKind::GetFieldStatic { .. }
        | OpKind::SetFieldStatic { .. }
        | OpKind::ArrayGet { .. }
        | OpKind::ArraySet { .. }
        | OpKind::ArrayLen { .. } => true,
        OpKind::Call { .. } | OpKind::CallMethodStatic { .. } => last,
        _ => false,
    }
}

/// Per-slot value a covered op contributes to the guided dynamic program:
/// the warmup dispatch weight of its opcode, scaled so profile weight
/// dominates, plus one so coverage itself breaks ties among equally hot
/// partitions (and so catalogue matches always beat leaving ops unfused).
const GUIDED_WEIGHT_SCALE: u64 = 1024;

fn guided_slot_value(op: &Op, g: &FuseGuidance) -> u64 {
    GUIDED_WEIGHT_SCALE
        .saturating_mul(g.weight(op.kind.opcode()))
        .saturating_add(1)
}

fn guided_span_value(ops: &[Op], i: usize, n: usize, g: &FuseGuidance) -> u64 {
    ops[i..i + n]
        .iter()
        .fold(0u64, |acc, o| acc.saturating_add(guided_slot_value(o, g)))
}

/// Whether `ops[i..i + n]` can form a guided group: all components
/// eligible (calls only last) and at least one warm under `g` — cold code
/// keeps its plain dispatches so a pathological profile cannot bloat the
/// arena with groups that never run.
fn guided_group_ok(ops: &[Op], i: usize, n: usize, e: usize, g: &FuseGuidance) -> bool {
    if i + n > e {
        return false;
    }
    let mut warm = false;
    for (k, o) in ops[i..i + n].iter().enumerate() {
        if !guided_component_ok(&o.kind, k + 1 == n) {
            return false;
        }
        warm |= g.weight(o.kind.opcode()) > 0;
    }
    warm
}

/// The profile-guided replacement for [`fuse_block`]: a backward dynamic
/// program over `ops[s..e]` that picks the non-overlapping partition into
/// catalogue matches, generalized two/three-op guided groups, and skipped
/// slots maximizing total covered weight. Replacement is on strictly
/// greater value with candidates considered in the order catalogue match,
/// then guided (longer first), so on ties the specialized catalogue
/// template wins and the greedy pass's coverage is never given up — the
/// DP can only re-partition where the profile says it pays. Returns the
/// number of groups installed.
fn guide_block(ops: &mut [Op], s: usize, e: usize, g: &FuseGuidance) -> usize {
    let m = e - s;
    #[derive(Copy, Clone)]
    enum Choice {
        Skip,
        Catalogue,
        Guided(usize),
    }
    // `match_at` is pure over pristine slots, so results cached before any
    // install stay valid for the reconstruction below.
    let matches: Vec<Option<(usize, u64, OpKind)>> = (s..e).map(|i| match_at(ops, i, e)).collect();
    let mut best: Vec<(u64, Choice)> = vec![(0, Choice::Skip); m + 1];
    for j in (0..m).rev() {
        let i = s + j;
        let mut v = best[j + 1].0;
        let mut c = Choice::Skip;
        if let Some((n, _, _)) = &matches[j] {
            let val = guided_span_value(ops, i, *n, g).saturating_add(best[j + n].0);
            if val > v {
                v = val;
                c = Choice::Catalogue;
            }
        }
        for n in [3usize, 2] {
            if j + n <= m && guided_group_ok(ops, i, n, e, g) {
                let val = guided_span_value(ops, i, n, g).saturating_add(best[j + n].0);
                if val > v {
                    v = val;
                    c = Choice::Guided(n);
                }
            }
        }
        best[j] = (v, c);
    }
    let mut fused = 0;
    let mut j = 0;
    while j < m {
        match best[j].1 {
            Choice::Skip => j += 1,
            Choice::Catalogue => {
                let (n, cost, kind) = matches[j].clone().expect("chosen catalogue match exists");
                install(ops, s + j, n, cost, kind);
                fused += 1;
                j += n;
            }
            Choice::Guided(n) => {
                let i = s + j;
                let steps: Box<[(u64, OpKind)]> = ops[i..i + n]
                    .iter()
                    .map(|o| (o.cost, o.kind.clone()))
                    .collect();
                let extra = steps[1..].iter().map(|(c, _)| c).sum();
                let cost = steps[0].0;
                install(ops, i, n, cost, OpKind::Guided { steps, extra });
                fused += 1;
                j += n;
            }
        }
    }
    fused
}

/// One ranked candidate from [`mine_hot_sequences`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotSequence {
    /// Name of the function the run lives in.
    pub function: String,
    /// Arena index of the run's first op within that function.
    pub start: u32,
    /// Number of consecutive source instructions in the run.
    pub len: u32,
    /// Summed warmup dispatch weight of the run's opcodes.
    pub weight: u64,
    /// Profiling opcode names of the components, in order.
    pub opcodes: Vec<&'static str>,
}

/// Ranks the hottest *unfused* adjacent op sequences of a prepared module
/// under `guidance`: scans every function's arena for maximal runs of
/// guided-eligible plain ops (the remainder the static catalogue pass
/// left width-1, with a call allowed to terminate a run) and scores each
/// run by its opcodes' warmup dispatch weights. Returns the `top`
/// heaviest runs, heaviest first, ties broken by position for
/// determinism. This is the ranking [`FuseMode::Guided`] acts on via its
/// per-block dynamic program; it is exposed for reports and tests.
pub fn mine_hot_sequences(
    prepared: &PreparedModule,
    guidance: &FuseGuidance,
    top: usize,
) -> Vec<HotSequence> {
    let mut out = Vec::new();
    for ((_, src), f) in prepared.module.functions().zip(prepared.funcs.iter()) {
        let ops = &f.ops;
        let eligible = |k: usize| ops[k].width == 1 && guided_component_ok(&ops[k].kind, true);
        let mut i = 0usize;
        while i < ops.len() {
            if !eligible(i) {
                i += 1;
                continue;
            }
            let start = i;
            let mut weight = 0u64;
            while i < ops.len() && eligible(i) {
                weight = weight.saturating_add(guidance.weight(ops[i].kind.opcode()));
                let is_call = matches!(
                    ops[i].kind,
                    OpKind::Call { .. } | OpKind::CallMethodStatic { .. }
                );
                i += 1;
                if is_call {
                    break;
                }
            }
            if i - start >= 2 && weight > 0 {
                out.push(HotSequence {
                    function: src.name().to_owned(),
                    start: start as u32,
                    len: (i - start) as u32,
                    weight,
                    opcodes: ops[start..i]
                        .iter()
                        .map(|o| OPCODE_NAMES[o.kind.opcode()])
                        .collect(),
                });
            }
        }
    }
    out.sort_by(|a, b| {
        b.weight
            .cmp(&a.weight)
            .then_with(|| a.function.cmp(&b.function))
            .then_with(|| a.start.cmp(&b.start))
    });
    out.truncate(top);
    out
}

/// Fuses each non-backedge `Jump` with the leading run of trap-free,
/// operand-free instrumentation ops (`CallEdge`, `BlockCount`,
/// `EdgeCount`) in its target block, landing past them. The target's own
/// slots are left untouched — other predecessors still execute them.
/// Runs after the intra-block pass, which never touches these op kinds.
fn fuse_jump_effects(ops: &mut [Op], starts: &[u32]) -> usize {
    let mut fused = 0;
    for b in 0..starts.len() {
        let term = starts.get(b + 1).map_or(ops.len(), |&n| n as usize) - 1;
        let target = match ops[term].kind {
            OpKind::Jump {
                target,
                backedge: false,
            } => target as usize,
            _ => continue,
        };
        let mut effects = Vec::new();
        let mut extra = 0u64;
        let mut k = target;
        loop {
            match &ops[k].kind {
                OpKind::CallEdge => effects.push(InstrEffect::CallEdge),
                OpKind::BlockCount { block } => effects.push(InstrEffect::BlockCount(*block)),
                OpKind::EdgeCount { from, to } => {
                    effects.push(InstrEffect::EdgeCount(*from, *to));
                }
                _ => break,
            }
            extra += ops[k].cost;
            k += 1;
        }
        if effects.is_empty() {
            continue;
        }
        ops[term] = Op {
            cost: ops[term].cost + extra,
            width: 1 + effects.len() as u32,
            kind: OpKind::JumpInstr {
                target: k as u32,
                effects: effects.into(),
            },
        };
        fused += 1;
    }
    fused
}

fn decode_inst(module: &Module, inst: &Inst, cost: &CostModel, statics: &Statics) -> Op {
    let c = cost.inst_cost(inst);
    let kind = match inst {
        Inst::Const { dst, value } => OpKind::Const {
            dst: *dst,
            value: match value {
                Const::I64(n) => Value::I64(*n),
                Const::Bool(b) => Value::Bool(*b),
                Const::Null => Value::Null,
            },
        },
        Inst::Move { dst, src } => OpKind::Move {
            dst: *dst,
            src: *src,
        },
        Inst::Un { op, dst, src } => OpKind::Un {
            op: *op,
            dst: *dst,
            src: *src,
        },
        Inst::Bin { op, dst, lhs, rhs } => OpKind::Bin {
            op: *op,
            dst: *dst,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::New { dst, class } => OpKind::New {
            dst: *dst,
            class: *class,
            num_fields: module.class(*class).num_fields(),
        },
        Inst::GetField { dst, obj, field } => match statics.field_slots[field.index()] {
            Some(offset) => OpKind::GetFieldStatic {
                dst: *dst,
                obj: *obj,
                offset,
            },
            None => OpKind::GetField {
                dst: *dst,
                obj: *obj,
                field: *field,
            },
        },
        Inst::SetField { obj, field, src } => match statics.field_slots[field.index()] {
            Some(offset) => OpKind::SetFieldStatic {
                obj: *obj,
                offset,
                src: *src,
            },
            None => OpKind::SetField {
                obj: *obj,
                field: *field,
                src: *src,
            },
        },
        Inst::NewArray { dst, len } => OpKind::NewArray {
            dst: *dst,
            len: *len,
        },
        Inst::ArrayGet { dst, arr, idx } => OpKind::ArrayGet {
            dst: *dst,
            arr: *arr,
            idx: *idx,
        },
        Inst::ArraySet { arr, idx, src } => OpKind::ArraySet {
            arr: *arr,
            idx: *idx,
            src: *src,
        },
        Inst::ArrayLen { dst, arr } => OpKind::ArrayLen {
            dst: *dst,
            arr: *arr,
        },
        Inst::Call {
            dst,
            callee,
            args,
            site,
        } => OpKind::Call {
            dst: *dst,
            callee: *callee,
            args: args.clone().into_boxed_slice(),
            site: *site,
        },
        Inst::CallMethod {
            dst,
            obj,
            method,
            args,
            site,
        } => match statics.method_targets[method.index()] {
            // The arity check moves to prepare time too; a mismatch (which
            // would trap for every receiver) keeps the dynamic form.
            Some(callee) if module.function(callee).arity() == args.len() + 1 => {
                OpKind::CallMethodStatic {
                    dst: *dst,
                    obj: *obj,
                    callee,
                    args: args.clone().into_boxed_slice(),
                    site: *site,
                }
            }
            _ => OpKind::CallMethod {
                dst: *dst,
                obj: *obj,
                method: *method,
                args: args.clone().into_boxed_slice(),
                site: *site,
            },
        },
        Inst::Print { src } => OpKind::Print { src: *src },
        Inst::Spawn { dst, callee, args } => OpKind::Spawn {
            dst: *dst,
            callee: *callee,
            args: args.clone().into_boxed_slice(),
        },
        Inst::Join { thread } => OpKind::Join { thread: *thread },
        Inst::Yield => OpKind::Yield,
        Inst::Busy { .. } => OpKind::Busy,
        Inst::Instr(op) => match op {
            InstrOp::CallEdge => OpKind::CallEdge,
            InstrOp::FieldAccess { obj, field, write } => OpKind::FieldAccessProf {
                obj: *obj,
                field: *field,
                write: *write,
            },
            InstrOp::BlockCount { block } => OpKind::BlockCount { block: *block },
            InstrOp::EdgeCount { from, to } => OpKind::EdgeCount {
                from: *from,
                to: *to,
            },
            InstrOp::ValueProfile { local, site } => OpKind::ValueProfile {
                local: *local,
                site: *site,
            },
            InstrOp::PathStart { value } => OpKind::PathStart {
                value: i64::from(*value),
            },
            InstrOp::PathIncr { delta } => OpKind::PathIncr {
                delta: i64::from(*delta),
            },
            InstrOp::PathEnd { site } => OpKind::PathEnd { site: *site },
        },
    };
    Op {
        cost: c,
        width: 1,
        kind,
    }
}

fn decode_term(
    from: BlockId,
    term: &Term,
    cost: &CostModel,
    back: &HashSet<(BlockId, BlockId)>,
    starts: &[u32],
) -> Op {
    let c = cost.term_cost(term);
    let target = |to: BlockId| starts[to.index()];
    let backedge = |to: BlockId| back.contains(&(from, to));
    let kind = match term {
        Term::Jump(t) => OpKind::Jump {
            target: target(*t),
            backedge: backedge(*t),
        },
        Term::Br { cond, t, f } => OpKind::Br {
            cond: *cond,
            t: target(*t),
            f: target(*f),
            t_backedge: backedge(*t),
            f_backedge: backedge(*f),
        },
        Term::Ret(val) => OpKind::Ret { val: *val },
        Term::Check { sample, cont } => OpKind::Check {
            sample: target(*sample),
            cont: target(*cont),
            sample_backedge: backedge(*sample),
            cont_backedge: backedge(*cont),
        },
    };
    Op {
        cost: c,
        width: 1,
        kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Module {
        isf_frontend::compile(src).expect("test program compiles")
    }

    #[test]
    fn arena_layout_matches_source() {
        let m = compile("fn main() { var i = 0; while (i < 3) { i = i + 1; } print(i); }");
        let p = PreparedModule::prepare(&m, &CostModel::default());
        let f = m.function(m.main());
        // One op per instruction plus one inlined terminator per block.
        let expected: usize = f.blocks().map(|(_, b)| b.insts().len() + 1).sum();
        assert_eq!(p.func(m.main()).ops.len(), expected);
        assert_eq!(p.func(m.main()).num_locals, f.num_locals());
    }

    #[test]
    fn loop_backedge_is_preclassified() {
        let m = compile("fn main() { var i = 0; while (i < 3) { i = i + 1; } }");
        let p = PreparedModule::prepare(&m, &CostModel::default());
        let flagged = p
            .func(m.main())
            .ops
            .iter()
            .filter(|op| {
                matches!(
                    op.kind,
                    OpKind::Jump { backedge: true, .. }
                        | OpKind::Br {
                            t_backedge: true,
                            ..
                        }
                        | OpKind::Br {
                            f_backedge: true,
                            ..
                        }
                )
            })
            .count();
        assert_eq!(flagged, 1, "exactly one backedge in a single while loop");
    }

    #[test]
    fn costs_are_prefolded() {
        let cost = CostModel::default();
        let m = compile("fn main() { print(2 * 3); }");
        let p = PreparedModule::prepare_with(&m, &cost, FuseMode::Off);
        let ops = &p.func(m.main()).ops;
        assert!(
            ops.iter()
                .any(|op| matches!(op.kind, OpKind::Bin { op: BinOp::Mul, .. })
                    && op.cost == cost.mul)
        );
        assert!(ops
            .iter()
            .any(|op| matches!(op.kind, OpKind::Print { .. }) && op.cost == cost.print));
        assert!(matches!(
            ops.last().map(|op| (&op.kind, op.cost)),
            Some((OpKind::Ret { .. }, c)) if c == cost.ret
        ));
    }

    #[test]
    fn const_bin_fuses_with_summed_cost() {
        let cost = CostModel::default();
        let m = compile("fn main() { print(2 * 3); }");
        let unfused = PreparedModule::prepare_with(&m, &cost, FuseMode::Off);
        let fused = PreparedModule::prepare_with(&m, &cost, FuseMode::Fuse);
        // Fusion is slot-preserving: same arena length, leaders widen.
        assert_eq!(
            fused.func(m.main()).ops.len(),
            unfused.func(m.main()).ops.len()
        );
        // `Const 3` + `Bin Mul` collapse into one BinImm charging both.
        let ops = &fused.func(m.main()).ops;
        assert!(ops.iter().any(|op| matches!(
            op.kind,
            OpKind::BinImm {
                op: BinOp::Mul,
                imm: Value::I64(3),
                ..
            }
        ) && op.cost == cost.alu + cost.mul
            && op.width == 2));
        assert!(ops.iter().any(|op| matches!(op.kind, OpKind::Gap)));
        assert!(fused.num_fused() > 0);
    }

    #[test]
    fn compare_and_branch_fuse_into_br_cmp() {
        let cost = CostModel::default();
        let m = compile("fn main() { var i = 0; while (i < 3) { i = i + 1; } }");
        let p = PreparedModule::prepare_with(&m, &cost, FuseMode::Fuse);
        // The loop header's `Const 3; Bin Lt; Br` triple becomes one
        // BrCmpImm: compare cost charged up front, branch cost in `extra`.
        let found = p.funcs.iter().flat_map(|f| f.ops.iter()).any(|op| {
            matches!(
                op.kind,
                OpKind::BrCmpImm {
                    op: BinOp::Lt,
                    extra,
                    ..
                } if extra == cost.branch
            ) && op.cost == cost.alu + cost.alu
                && op.width == 3
        });
        assert!(found, "loop header compare-and-branch should fuse");
    }

    #[test]
    fn const_index_array_ops_fuse() {
        let m =
            compile("fn main() { var a = array(4); var x = 9; a[1] = 5; a[2] = x; print(a[1]); }");
        let p = PreparedModule::prepare_with(&m, &CostModel::default(), FuseMode::Fuse);
        let ops = &p.func(m.main()).ops;
        assert!(
            ops.iter().any(|op| matches!(
                op.kind,
                OpKind::ArraySetImm2 {
                    idx: 1,
                    src: Value::I64(5),
                    ..
                }
            )),
            "literal-value constant-index store should fuse as a triple"
        );
        assert!(
            ops.iter()
                .any(|op| matches!(op.kind, OpKind::ArraySetImm { idx: 2, .. })),
            "variable-value constant-index store should fuse"
        );
        assert!(
            ops.iter()
                .any(|op| matches!(op.kind, OpKind::ArrayGetImm { idx: 1, .. })),
            "constant-index load should fuse"
        );
    }

    #[test]
    fn move_runs_fuse() {
        let m = compile(
            "fn main() { var a = 1; var b = 2; var c = 3; a = b; c = a; b = c; print(b); }",
        );
        let p = PreparedModule::prepare_with(&m, &CostModel::default(), FuseMode::Fuse);
        let ops = &p.func(m.main()).ops;
        assert!(
            ops.iter()
                .any(|op| matches!(op.kind, OpKind::MoveRun { ref moves } if moves.len() >= 2)),
            "consecutive moves should fuse into a MoveRun"
        );
    }

    #[test]
    fn fuse_off_produces_no_fused_ops() {
        let m = compile("fn main() { var i = 0; while (i < 3) { i = i + 1; } print(2 * 3); }");
        let p = PreparedModule::prepare_with(&m, &CostModel::default(), FuseMode::Off);
        assert_eq!(p.num_fused(), 0);
        for f in &p.funcs {
            for op in f.ops.iter() {
                assert_eq!(op.width, 1, "unfused ops all have width 1");
                assert!(!matches!(op.kind, OpKind::Gap));
            }
        }
    }

    #[test]
    fn uniform_field_layout_resolves_statically() {
        let m = compile(
            "class P { field x; method get() { return self.x; } }
             fn main() { var p = new P; p.x = 7; print(p.x); }",
        );
        let p = PreparedModule::prepare_with(&m, &CostModel::default(), FuseMode::Fuse);
        // A single class trivially has a uniform layout, so field accesses
        // resolve to static offsets and the method call to a direct target.
        let all_ops = || p.funcs.iter().flat_map(|f| f.ops.iter());
        assert!(all_ops().any(|op| matches!(
            op.kind,
            OpKind::SetFieldStatic { .. } | OpKind::ConstSetField { .. }
        )));
        assert!(all_ops().any(|op| matches!(op.kind, OpKind::GetFieldStatic { .. })));
        assert!(!all_ops().any(|op| matches!(op.kind, OpKind::GetField { .. })));
        let off = PreparedModule::prepare_with(&m, &CostModel::default(), FuseMode::Off);
        let off_ops = || off.funcs.iter().flat_map(|f| f.ops.iter());
        assert!(off_ops().any(|op| matches!(op.kind, OpKind::GetField { .. })));
        assert!(!off_ops().any(|op| matches!(op.kind, OpKind::GetFieldStatic { .. })));
    }

    #[test]
    fn branch_targets_never_point_at_gap_interiors() {
        let m = compile(
            "fn main() {
                 var i = 0;
                 while (i < 10) {
                     if (i < 5) { i = i + 2; } else { i = i + 1; }
                 }
                 print(i);
             }",
        );
        let p = PreparedModule::prepare_with(&m, &CostModel::default(), FuseMode::Fuse);
        for f in &p.funcs {
            let mut targets = Vec::new();
            for op in f.ops.iter() {
                match op.kind {
                    OpKind::Jump { target, .. } | OpKind::JumpInstr { target, .. } => {
                        targets.push(target)
                    }
                    OpKind::Br { t, f, .. }
                    | OpKind::BrCmp { t, f, .. }
                    | OpKind::BrCmpImm { t, f, .. }
                    | OpKind::GetFieldBrCmp { t, f, .. } => {
                        targets.push(t);
                        targets.push(f);
                    }
                    OpKind::Check { sample, cont, .. } => {
                        targets.push(sample);
                        targets.push(cont);
                    }
                    _ => {}
                }
            }
            for t in targets {
                assert!(
                    !matches!(f.ops[t as usize].kind, OpKind::Gap),
                    "control transfer lands on a gap slot"
                );
            }
        }
    }

    #[test]
    fn dispatch_tables_match_class_lookups() {
        let m = compile(
            "class Shape { field tag; method area() { return 0; } }
             class Square : Shape { field side; method area() { return self.side * self.side; } }
             fn main() { var s = new Square; s.side = 2; print(s.area()); }",
        );
        let p = PreparedModule::prepare(&m, &CostModel::default());
        for (id, class) in m.classes() {
            for s in 0..m.num_field_syms() {
                let sym = FieldSym::new(s as u32);
                assert_eq!(
                    p.field_offset(id, sym),
                    class.field_offset(sym).map(|o| o as u32)
                );
            }
            for s in 0..m.num_method_syms() {
                let sym = MethodSym::new(s as u32);
                assert_eq!(p.method_impl(id, sym), class.resolve_method(sym));
            }
        }
    }

    #[test]
    fn preparation_counter_increments() {
        let m = compile("fn main() { }");
        let before = preparations();
        let _p = PreparedModule::prepare(&m, &CostModel::default());
        assert_eq!(preparations(), before + 1);
    }
}
