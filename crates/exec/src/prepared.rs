//! Pre-decoded modules: the one-time `prepare` pass that flattens a
//! [`Module`] into the dense form the interpreter's hot loop executes.
//!
//! Preparation does, once per (module, cost model):
//!
//! * **Arena flattening.** Each function's blocks are laid out back to back
//!   in one contiguous [`Op`] vector, with the terminator inlined as the
//!   block's final op. The hot loop fetches `ops[ip]` — no block lookup,
//!   no separate instruction/terminator fetch.
//! * **Target pre-resolution.** Branch targets are absolute arena indices,
//!   not [`BlockId`]s resolved through the function on every transfer.
//! * **Cost pre-folding.** Every op carries its cycle cost, folded from
//!   the [`CostModel`] at prepare time; the hot loop never re-derives a
//!   cost from instruction shape.
//! * **Backedge pre-classification.** The per-function `loops::backedges`
//!   analysis runs once here and is baked into per-edge flags on each
//!   terminator, replacing the per-run analysis and per-transfer
//!   `HashSet<(BlockId, BlockId)>` probes of the naive interpreter.
//! * **Operand pre-resolution.** Constants become runtime [`Value`]s,
//!   `new` carries its class's field count, and Ball–Larus path constants
//!   are widened to `i64` up front.
//! * **Dense dispatch tables.** Field offsets and method implementations
//!   are resolved for every (class, symbol) pair into flat arrays, so a
//!   field access or a virtual call in the hot loop is one indexed load
//!   instead of a per-access hash-map probe through the class table.
//!
//! The pass is observable through [`preparations`], a process-wide counter
//! the harness asserts against to prove each experiment cell prepares its
//! module exactly once, however many times it re-runs it.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use isf_ir::{
    loops, BinOp, BlockId, CallSiteId, ClassId, Const, FieldSym, FuncId, Function, Inst, InstrOp,
    LocalId, MethodSym, Module, Term, UnOp,
};

use crate::cost::CostModel;
use crate::value::Value;

/// Process-wide count of [`PreparedModule::prepare`] calls, used by the
/// harness to assert preparation happens once per experiment cell.
static PREPARATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread preparation count. An experiment cell runs entirely on
    /// one thread, so this gives a race-free once-per-cell assertion even
    /// while other threads prepare their own cells concurrently.
    static THREAD_PREPARATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Number of `prepare` passes executed by this process so far.
pub fn preparations() -> u64 {
    PREPARATIONS.load(Ordering::Relaxed)
}

/// Number of `prepare` passes executed by the *calling thread*. Immune to
/// concurrent preparations on other threads, unlike [`preparations`].
pub fn thread_preparations() -> u64 {
    THREAD_PREPARATIONS.with(|c| c.get())
}

/// One decoded operation: its pre-folded cycle cost plus the decoded form.
#[derive(Clone, Debug)]
pub(crate) struct Op {
    /// Cycles charged when this op executes (the check's sample-switch
    /// surcharge is the one cost still applied conditionally at runtime).
    pub(crate) cost: u64,
    pub(crate) kind: OpKind,
}

/// The decoded instruction set the hot loop dispatches on. Instructions
/// and terminators share one enum so a block is a flat run of ops ending
/// in a control transfer.
#[derive(Clone, Debug)]
pub(crate) enum OpKind {
    /// `dst = value`, with the constant already converted to a [`Value`].
    Const {
        dst: LocalId,
        value: Value,
    },
    Move {
        dst: LocalId,
        src: LocalId,
    },
    Un {
        op: UnOp,
        dst: LocalId,
        src: LocalId,
    },
    Bin {
        op: BinOp,
        dst: LocalId,
        lhs: LocalId,
        rhs: LocalId,
    },
    /// Allocation with the field count pre-resolved from the class table.
    New {
        dst: LocalId,
        class: ClassId,
        num_fields: usize,
    },
    GetField {
        dst: LocalId,
        obj: LocalId,
        field: FieldSym,
    },
    SetField {
        obj: LocalId,
        field: FieldSym,
        src: LocalId,
    },
    NewArray {
        dst: LocalId,
        len: LocalId,
    },
    ArrayGet {
        dst: LocalId,
        arr: LocalId,
        idx: LocalId,
    },
    ArraySet {
        arr: LocalId,
        idx: LocalId,
        src: LocalId,
    },
    ArrayLen {
        dst: LocalId,
        arr: LocalId,
    },
    Call {
        dst: Option<LocalId>,
        callee: FuncId,
        args: Box<[LocalId]>,
        site: CallSiteId,
    },
    CallMethod {
        dst: Option<LocalId>,
        obj: LocalId,
        method: MethodSym,
        args: Box<[LocalId]>,
        site: CallSiteId,
    },
    Print {
        src: LocalId,
    },
    Spawn {
        dst: LocalId,
        callee: FuncId,
        args: Box<[LocalId]>,
    },
    Join {
        thread: LocalId,
    },
    Yield,
    /// The cost field carries the whole effect.
    Busy,
    // Instrumentation operations, decoded from `Inst::Instr`.
    CallEdge,
    FieldAccessProf {
        obj: LocalId,
        field: FieldSym,
        write: bool,
    },
    BlockCount {
        block: BlockId,
    },
    EdgeCount {
        from: BlockId,
        to: BlockId,
    },
    ValueProfile {
        local: LocalId,
        site: u32,
    },
    PathStart {
        value: i64,
    },
    PathIncr {
        delta: i64,
    },
    PathEnd {
        site: u32,
    },
    // Terminators, with targets as absolute arena indices and backedge
    // membership pre-classified per edge.
    Jump {
        target: u32,
        backedge: bool,
    },
    Br {
        cond: LocalId,
        t: u32,
        f: u32,
        t_backedge: bool,
        f_backedge: bool,
    },
    Ret {
        val: Option<LocalId>,
    },
    Check {
        sample: u32,
        cont: u32,
        sample_backedge: bool,
        cont_backedge: bool,
    },
}

/// One function flattened into a contiguous op arena. The entry point is
/// always arena index 0 (block 0 is laid out first).
#[derive(Clone, Debug)]
pub(crate) struct PreparedFunction {
    pub(crate) ops: Vec<Op>,
    pub(crate) num_locals: usize,
    pub(crate) arity: usize,
}

/// A module flattened for execution: the decoded op arenas plus the owned
/// source [`Module`] (still needed for runtime name/class resolution) and
/// the [`CostModel`] the costs were folded from.
///
/// Build once with [`PreparedModule::prepare`], then execute any number of
/// times with [`crate::run_prepared`] — Table 4, for example, runs the same
/// instrumented program at six sampling intervals, amortizing one
/// preparation over all of them.
#[derive(Clone, Debug)]
pub struct PreparedModule {
    module: Module,
    cost: CostModel,
    funcs: Vec<PreparedFunction>,
    /// Field slot per (class, field symbol), row-major by class.
    field_offsets: Box<[Option<u32>]>,
    num_field_syms: usize,
    /// Implementing function per (class, method symbol), row-major by
    /// class.
    method_impls: Box<[Option<FuncId>]>,
    num_method_syms: usize,
}

impl PreparedModule {
    /// Flattens `module` under `cost`. This is the only place the
    /// per-function backedge analysis runs.
    pub fn prepare(module: &Module, cost: &CostModel) -> Self {
        PREPARATIONS.fetch_add(1, Ordering::Relaxed);
        THREAD_PREPARATIONS.with(|c| c.set(c.get() + 1));
        let funcs = module
            .functions()
            .map(|(_, f)| prepare_function(module, f, cost))
            .collect();
        let num_field_syms = module.num_field_syms();
        let num_method_syms = module.num_method_syms();
        let num_classes = module.num_classes();
        let mut field_offsets = vec![None; num_classes * num_field_syms];
        let mut method_impls = vec![None; num_classes * num_method_syms];
        for (id, class) in module.classes() {
            for s in 0..num_field_syms {
                field_offsets[id.index() * num_field_syms + s] = class
                    .field_offset(FieldSym::new(s as u32))
                    .map(|o| o as u32);
            }
            for s in 0..num_method_syms {
                method_impls[id.index() * num_method_syms + s] =
                    class.resolve_method(MethodSym::new(s as u32));
            }
        }
        PreparedModule {
            module: module.clone(),
            cost: *cost,
            funcs,
            field_offsets: field_offsets.into_boxed_slice(),
            num_field_syms,
            method_impls: method_impls.into_boxed_slice(),
            num_method_syms,
        }
    }

    /// The source module (for name, class and method resolution).
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The cost model the op costs were folded from.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Total decoded ops across all functions.
    pub fn num_ops(&self) -> usize {
        self.funcs.iter().map(|f| f.ops.len()).sum()
    }

    #[inline]
    pub(crate) fn func(&self, id: FuncId) -> &PreparedFunction {
        &self.funcs[id.index()]
    }

    /// Pre-resolved field slot of `field` on `class`.
    #[inline]
    pub(crate) fn field_offset(&self, class: ClassId, field: FieldSym) -> Option<u32> {
        self.field_offsets[class.index() * self.num_field_syms + field.index()]
    }

    /// Pre-resolved implementation of `method` on `class`.
    #[inline]
    pub(crate) fn method_impl(&self, class: ClassId, method: MethodSym) -> Option<FuncId> {
        self.method_impls[class.index() * self.num_method_syms + method.index()]
    }
}

fn prepare_function(module: &Module, f: &Function, cost: &CostModel) -> PreparedFunction {
    let back: HashSet<(BlockId, BlockId)> = loops::backedges(f).into_iter().collect();
    // First pass: arena offset of each block (insts + inlined terminator).
    let mut starts = Vec::with_capacity(f.num_blocks());
    let mut offset = 0u32;
    for (_, b) in f.blocks() {
        starts.push(offset);
        offset += b.insts().len() as u32 + 1;
    }
    // Second pass: decode.
    let mut ops = Vec::with_capacity(offset as usize);
    for (id, b) in f.blocks() {
        for inst in b.insts() {
            ops.push(decode_inst(module, inst, cost));
        }
        ops.push(decode_term(id, b.term(), cost, &back, &starts));
    }
    PreparedFunction {
        ops,
        num_locals: f.num_locals(),
        arity: f.arity(),
    }
}

fn decode_inst(module: &Module, inst: &Inst, cost: &CostModel) -> Op {
    let c = cost.inst_cost(inst);
    let kind = match inst {
        Inst::Const { dst, value } => OpKind::Const {
            dst: *dst,
            value: match value {
                Const::I64(n) => Value::I64(*n),
                Const::Bool(b) => Value::Bool(*b),
                Const::Null => Value::Null,
            },
        },
        Inst::Move { dst, src } => OpKind::Move {
            dst: *dst,
            src: *src,
        },
        Inst::Un { op, dst, src } => OpKind::Un {
            op: *op,
            dst: *dst,
            src: *src,
        },
        Inst::Bin { op, dst, lhs, rhs } => OpKind::Bin {
            op: *op,
            dst: *dst,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::New { dst, class } => OpKind::New {
            dst: *dst,
            class: *class,
            num_fields: module.class(*class).num_fields(),
        },
        Inst::GetField { dst, obj, field } => OpKind::GetField {
            dst: *dst,
            obj: *obj,
            field: *field,
        },
        Inst::SetField { obj, field, src } => OpKind::SetField {
            obj: *obj,
            field: *field,
            src: *src,
        },
        Inst::NewArray { dst, len } => OpKind::NewArray {
            dst: *dst,
            len: *len,
        },
        Inst::ArrayGet { dst, arr, idx } => OpKind::ArrayGet {
            dst: *dst,
            arr: *arr,
            idx: *idx,
        },
        Inst::ArraySet { arr, idx, src } => OpKind::ArraySet {
            arr: *arr,
            idx: *idx,
            src: *src,
        },
        Inst::ArrayLen { dst, arr } => OpKind::ArrayLen {
            dst: *dst,
            arr: *arr,
        },
        Inst::Call {
            dst,
            callee,
            args,
            site,
        } => OpKind::Call {
            dst: *dst,
            callee: *callee,
            args: args.clone().into_boxed_slice(),
            site: *site,
        },
        Inst::CallMethod {
            dst,
            obj,
            method,
            args,
            site,
        } => OpKind::CallMethod {
            dst: *dst,
            obj: *obj,
            method: *method,
            args: args.clone().into_boxed_slice(),
            site: *site,
        },
        Inst::Print { src } => OpKind::Print { src: *src },
        Inst::Spawn { dst, callee, args } => OpKind::Spawn {
            dst: *dst,
            callee: *callee,
            args: args.clone().into_boxed_slice(),
        },
        Inst::Join { thread } => OpKind::Join { thread: *thread },
        Inst::Yield => OpKind::Yield,
        Inst::Busy { .. } => OpKind::Busy,
        Inst::Instr(op) => match op {
            InstrOp::CallEdge => OpKind::CallEdge,
            InstrOp::FieldAccess { obj, field, write } => OpKind::FieldAccessProf {
                obj: *obj,
                field: *field,
                write: *write,
            },
            InstrOp::BlockCount { block } => OpKind::BlockCount { block: *block },
            InstrOp::EdgeCount { from, to } => OpKind::EdgeCount {
                from: *from,
                to: *to,
            },
            InstrOp::ValueProfile { local, site } => OpKind::ValueProfile {
                local: *local,
                site: *site,
            },
            InstrOp::PathStart { value } => OpKind::PathStart {
                value: i64::from(*value),
            },
            InstrOp::PathIncr { delta } => OpKind::PathIncr {
                delta: i64::from(*delta),
            },
            InstrOp::PathEnd { site } => OpKind::PathEnd { site: *site },
        },
    };
    Op { cost: c, kind }
}

fn decode_term(
    from: BlockId,
    term: &Term,
    cost: &CostModel,
    back: &HashSet<(BlockId, BlockId)>,
    starts: &[u32],
) -> Op {
    let c = cost.term_cost(term);
    let target = |to: BlockId| starts[to.index()];
    let backedge = |to: BlockId| back.contains(&(from, to));
    let kind = match term {
        Term::Jump(t) => OpKind::Jump {
            target: target(*t),
            backedge: backedge(*t),
        },
        Term::Br { cond, t, f } => OpKind::Br {
            cond: *cond,
            t: target(*t),
            f: target(*f),
            t_backedge: backedge(*t),
            f_backedge: backedge(*f),
        },
        Term::Ret(val) => OpKind::Ret { val: *val },
        Term::Check { sample, cont } => OpKind::Check {
            sample: target(*sample),
            cont: target(*cont),
            sample_backedge: backedge(*sample),
            cont_backedge: backedge(*cont),
        },
    };
    Op { cost: c, kind }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Module {
        isf_frontend::compile(src).expect("test program compiles")
    }

    #[test]
    fn arena_layout_matches_source() {
        let m = compile("fn main() { var i = 0; while (i < 3) { i = i + 1; } print(i); }");
        let p = PreparedModule::prepare(&m, &CostModel::default());
        let f = m.function(m.main());
        // One op per instruction plus one inlined terminator per block.
        let expected: usize = f.blocks().map(|(_, b)| b.insts().len() + 1).sum();
        assert_eq!(p.func(m.main()).ops.len(), expected);
        assert_eq!(p.func(m.main()).num_locals, f.num_locals());
    }

    #[test]
    fn loop_backedge_is_preclassified() {
        let m = compile("fn main() { var i = 0; while (i < 3) { i = i + 1; } }");
        let p = PreparedModule::prepare(&m, &CostModel::default());
        let flagged = p
            .func(m.main())
            .ops
            .iter()
            .filter(|op| {
                matches!(
                    op.kind,
                    OpKind::Jump { backedge: true, .. }
                        | OpKind::Br {
                            t_backedge: true,
                            ..
                        }
                        | OpKind::Br {
                            f_backedge: true,
                            ..
                        }
                )
            })
            .count();
        assert_eq!(flagged, 1, "exactly one backedge in a single while loop");
    }

    #[test]
    fn costs_are_prefolded() {
        let cost = CostModel::default();
        let m = compile("fn main() { print(2 * 3); }");
        let p = PreparedModule::prepare(&m, &cost);
        let ops = &p.func(m.main()).ops;
        assert!(
            ops.iter()
                .any(|op| matches!(op.kind, OpKind::Bin { op: BinOp::Mul, .. })
                    && op.cost == cost.mul)
        );
        assert!(ops
            .iter()
            .any(|op| matches!(op.kind, OpKind::Print { .. }) && op.cost == cost.print));
        assert!(matches!(
            ops.last().map(|op| (&op.kind, op.cost)),
            Some((OpKind::Ret { .. }, c)) if c == cost.ret
        ));
    }

    #[test]
    fn dispatch_tables_match_class_lookups() {
        let m = compile(
            "class Shape { field tag; method area() { return 0; } }
             class Square : Shape { field side; method area() { return self.side * self.side; } }
             fn main() { var s = new Square; s.side = 2; print(s.area()); }",
        );
        let p = PreparedModule::prepare(&m, &CostModel::default());
        for (id, class) in m.classes() {
            for s in 0..m.num_field_syms() {
                let sym = FieldSym::new(s as u32);
                assert_eq!(
                    p.field_offset(id, sym),
                    class.field_offset(sym).map(|o| o as u32)
                );
            }
            for s in 0..m.num_method_syms() {
                let sym = MethodSym::new(s as u32);
                assert_eq!(p.method_impl(id, sym), class.resolve_method(sym));
            }
        }
    }

    #[test]
    fn preparation_counter_increments() {
        let m = compile("fn main() { }");
        let before = preparations();
        let _p = PreparedModule::prepare(&m, &CostModel::default());
        assert_eq!(preparations(), before + 1);
    }
}
