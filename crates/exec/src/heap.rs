//! The VM heap: objects and integer arrays.

use isf_ir::ClassId;

use crate::error::TrapKind;
use crate::value::Value;

/// An allocated object: its runtime class and one slot per (flattened)
/// field.
#[derive(Clone, Debug)]
pub struct Object {
    /// The runtime class.
    pub class: ClassId,
    /// Field slots, indexed by the class layout's offsets.
    pub fields: Vec<Value>,
}

/// A simple bump-allocating heap. Nothing is ever freed — benchmark runs
/// are short-lived, matching the paper's methodology of timing whole
/// program executions.
///
/// The heap can carry a word budget ([`Heap::with_limit`]): every
/// allocation is charged one header word plus one word per field or
/// element, and an allocation that would exceed the budget traps with
/// [`TrapKind::HeapExhausted`] *before* reserving any memory, so a
/// pathological program cannot take the host down.
#[derive(Clone, Debug, Default)]
pub struct Heap {
    objects: Vec<Object>,
    arrays: Vec<Vec<i64>>,
    words: u64,
    limit_words: Option<u64>,
}

impl Heap {
    /// Creates an empty heap with no word budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty heap that traps with [`TrapKind::HeapExhausted`]
    /// once more than `limit_words` words have been allocated (`None`
    /// means unlimited).
    pub fn with_limit(limit_words: Option<u64>) -> Self {
        Heap {
            limit_words,
            ..Self::default()
        }
    }

    /// Total words allocated so far (one header word per allocation plus
    /// one word per field or element).
    pub fn words_allocated(&self) -> u64 {
        self.words
    }

    /// Charges `words` against the budget, trapping before any memory is
    /// reserved when the charge would exceed it.
    fn charge(&mut self, words: u64) -> Result<(), TrapKind> {
        let next = self.words.saturating_add(words);
        if let Some(limit) = self.limit_words {
            if next > limit {
                return Err(TrapKind::HeapExhausted { limit_words: limit });
            }
        }
        self.words = next;
        Ok(())
    }

    /// Allocates an object of `class` with `num_fields` zeroed slots.
    ///
    /// # Errors
    ///
    /// Traps if the allocation would exceed the heap word budget.
    pub fn alloc_object(&mut self, class: ClassId, num_fields: usize) -> Result<Value, TrapKind> {
        self.charge(num_fields as u64 + 1)?;
        let handle = self.objects.len() as u32;
        self.objects.push(Object {
            class,
            fields: vec![Value::I64(0); num_fields],
        });
        Ok(Value::Obj(handle))
    }

    /// Allocates a zero-filled integer array.
    ///
    /// # Errors
    ///
    /// Traps if `len` is negative or the allocation would exceed the heap
    /// word budget.
    pub fn alloc_array(&mut self, len: i64) -> Result<Value, TrapKind> {
        if len < 0 {
            return Err(TrapKind::NegativeArrayLength(len));
        }
        self.charge(len as u64 + 1)?;
        let handle = self.arrays.len() as u32;
        self.arrays.push(vec![0; len as usize]);
        Ok(Value::Arr(handle))
    }

    /// Resolves an object handle.
    ///
    /// # Errors
    ///
    /// Traps on `null` or a non-object value.
    pub fn object(&self, v: Value) -> Result<&Object, TrapKind> {
        match v {
            Value::Obj(h) => Ok(&self.objects[h as usize]),
            Value::Null => Err(TrapKind::NullDereference),
            other => Err(TrapKind::TypeError {
                expected: "object",
                found: other.kind_name(),
            }),
        }
    }

    /// Resolves an object handle mutably.
    ///
    /// # Errors
    ///
    /// Traps on `null` or a non-object value.
    pub fn object_mut(&mut self, v: Value) -> Result<&mut Object, TrapKind> {
        match v {
            Value::Obj(h) => Ok(&mut self.objects[h as usize]),
            Value::Null => Err(TrapKind::NullDereference),
            other => Err(TrapKind::TypeError {
                expected: "object",
                found: other.kind_name(),
            }),
        }
    }

    /// Reads `arr[idx]`.
    ///
    /// # Errors
    ///
    /// Traps on `null`, non-arrays and out-of-bounds indices.
    pub fn array_get(&self, arr: Value, idx: i64) -> Result<i64, TrapKind> {
        let a = self.array(arr)?;
        usize::try_from(idx)
            .ok()
            .and_then(|i| a.get(i))
            .copied()
            .ok_or(TrapKind::IndexOutOfBounds {
                index: idx,
                len: a.len(),
            })
    }

    /// Writes `arr[idx] = value`.
    ///
    /// # Errors
    ///
    /// Traps on `null`, non-arrays and out-of-bounds indices.
    pub fn array_set(&mut self, arr: Value, idx: i64, value: i64) -> Result<(), TrapKind> {
        let a = self.array_mut(arr)?;
        let len = a.len();
        let slot = usize::try_from(idx)
            .ok()
            .and_then(|i| a.get_mut(i))
            .ok_or(TrapKind::IndexOutOfBounds { index: idx, len })?;
        *slot = value;
        Ok(())
    }

    /// Returns the length of an array value.
    ///
    /// # Errors
    ///
    /// Traps on `null` and non-arrays.
    pub fn array_len(&self, arr: Value) -> Result<i64, TrapKind> {
        Ok(self.array(arr)?.len() as i64)
    }

    fn array(&self, v: Value) -> Result<&Vec<i64>, TrapKind> {
        match v {
            Value::Arr(h) => Ok(&self.arrays[h as usize]),
            Value::Null => Err(TrapKind::NullDereference),
            other => Err(TrapKind::TypeError {
                expected: "array",
                found: other.kind_name(),
            }),
        }
    }

    fn array_mut(&mut self, v: Value) -> Result<&mut Vec<i64>, TrapKind> {
        match v {
            Value::Arr(h) => Ok(&mut self.arrays[h as usize]),
            Value::Null => Err(TrapKind::NullDereference),
            other => Err(TrapKind::TypeError {
                expected: "array",
                found: other.kind_name(),
            }),
        }
    }

    /// Number of live objects (for tests and stats).
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Number of live arrays (for tests and stats).
    pub fn num_arrays(&self) -> usize {
        self.arrays.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_roundtrip() {
        let mut h = Heap::new();
        let o = h.alloc_object(ClassId::new(0), 2).unwrap();
        h.object_mut(o).unwrap().fields[1] = Value::I64(9);
        assert_eq!(h.object(o).unwrap().fields[1], Value::I64(9));
        assert_eq!(h.object(o).unwrap().fields[0], Value::I64(0));
    }

    #[test]
    fn word_budget_traps_before_allocating() {
        let mut h = Heap::with_limit(Some(10));
        // 2 fields + header = 3 words; twice fits, a third object with a
        // large payload does not.
        h.alloc_object(ClassId::new(0), 2).unwrap();
        h.alloc_object(ClassId::new(0), 2).unwrap();
        assert_eq!(h.words_allocated(), 6);
        assert_eq!(
            h.alloc_array(9).unwrap_err(),
            TrapKind::HeapExhausted { limit_words: 10 }
        );
        // The failed allocation reserved nothing.
        assert_eq!(h.words_allocated(), 6);
        assert_eq!(h.num_arrays(), 0);
        // A fitting allocation still succeeds after a budget trap.
        h.alloc_array(3).unwrap();
        assert_eq!(h.words_allocated(), 10);
    }

    #[test]
    fn unlimited_heap_never_budget_traps() {
        let mut h = Heap::new();
        for _ in 0..100 {
            h.alloc_object(ClassId::new(0), 8).unwrap();
        }
        assert_eq!(h.words_allocated(), 900);
    }

    #[test]
    fn array_bounds_checked() {
        let mut h = Heap::new();
        let a = h.alloc_array(3).unwrap();
        h.array_set(a, 2, 7).unwrap();
        assert_eq!(h.array_get(a, 2).unwrap(), 7);
        assert!(matches!(
            h.array_get(a, 3),
            Err(TrapKind::IndexOutOfBounds { index: 3, len: 3 })
        ));
        assert!(matches!(
            h.array_get(a, -1),
            Err(TrapKind::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn negative_length_traps() {
        let mut h = Heap::new();
        assert_eq!(
            h.alloc_array(-2).unwrap_err(),
            TrapKind::NegativeArrayLength(-2)
        );
    }

    #[test]
    fn null_and_kind_errors() {
        let h = Heap::new();
        assert_eq!(
            h.object(Value::Null).unwrap_err(),
            TrapKind::NullDereference
        );
        assert!(matches!(
            h.array_get(Value::I64(0), 0),
            Err(TrapKind::TypeError { .. })
        ));
    }
}
